//! Quickstart: build a paper-style module test environment, assemble one
//! of its tests with the generated abstraction layer, run it on the
//! golden model, and look at what was produced.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use advm::build::{assemble_cell, run_cell};
use advm::presets::{default_config, page_env};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A PAGE environment with two Figure 6-style tests. The abstraction
    // layer (Globals.inc + Base_Functions.asm) is generated for the
    // SC88-A derivative on the golden reference model.
    let env = page_env(default_config(), 2);

    println!("environment: {env}");
    println!("\n--- TESTPLAN.TXT ---\n{}", env.testplan().render());
    println!("--- first lines of the generated Globals.inc ---");
    for line in env.globals_text().lines().take(12) {
        println!("  {line}");
    }

    // Assemble one test cell and show a slice of the listing.
    let program = assemble_cell(&env, "TEST_PAGE_SELECT_01")?;
    println!("\n--- listing around _main ---");
    let listing = program.render_listing();
    let main_pos = listing.find("_main").unwrap_or(0);
    for line in listing[main_pos..].lines().take(10) {
        println!("  {line}");
    }

    // Run it.
    let result = run_cell(&env, "TEST_PAGE_SELECT_01")?;
    println!("\nrun result: {result}");
    assert!(result.passed());
    println!("quickstart OK");
    Ok(())
}
