//! Platform sweep: run the full catalogued system across all six
//! platforms of the paper's section 1 and print the pass matrix, then
//! inject a hardware bug into the RTL simulation and watch the shared
//! suite localise it.
//!
//! ```sh
//! cargo run --example platform_sweep
//! ```

use advm::presets::{default_config, standard_system};
use advm::regression::{run_regression, RegressionConfig};
use advm_sim::PlatformFault;
use advm_soc::PlatformId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let envs = standard_system(default_config());

    println!("running {} environments on 6 platforms...\n", envs.len());
    let report = run_regression(&envs, &RegressionConfig::full())?;
    println!("{}", report.matrix());
    println!(
        "{} / {} runs passed ({:.0}%)\n",
        report.passed(),
        report.total(),
        100.0 * report.pass_rate()
    );

    println!("injecting a page-readback bug into the RTL platform...\n");
    let config =
        RegressionConfig::full().with_fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne);
    let faulty = run_regression(&envs, &config)?;
    for (test, divergence) in faulty.divergences() {
        println!("divergence in {test}:\n{divergence}");
    }
    Ok(())
}
