//! Platform sweep: run the full catalogued system across all six
//! platforms of the paper's section 1 and print the pass matrix, then
//! inject a hardware bug into the RTL simulation and watch the shared
//! suite localise it.
//!
//! ```sh
//! cargo run --example platform_sweep
//! ```

use advm::campaign::Campaign;
use advm::presets::{default_config, standard_system};
use advm_sim::PlatformFault;
use advm_soc::PlatformId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let envs = standard_system(default_config());

    println!("running {} environments on 6 platforms...\n", envs.len());
    let report = Campaign::new().envs(envs.iter().cloned()).run()?;
    println!("{}", report.matrix());
    println!(
        "{} / {} runs passed ({:.0}%), {} assemblies deduplicated by the build cache\n",
        report.passed(),
        report.total(),
        100.0 * report.pass_rate(),
        report.cache_hits(),
    );

    println!("injecting a page-readback bug into the RTL platform...\n");
    let faulty = Campaign::new()
        .envs(envs)
        .fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne)
        .run()?;
    for (test, divergence) in faulty.divergences() {
        println!("divergence in {test}:\n{divergence}");
    }
    Ok(())
}
