//! Constrained-random `Globals.inc` generation — the paper's §2 future
//! work, upgraded to the closed loop: a scenario engine draws a batch of
//! seeded instances, page coverage is measured, and a second
//! coverage-directed batch chases exactly the pages the first one
//! missed.
//!
//! ```sh
//! cargo run --example random_globals
//! ```

use advm_gen::{
    ConstrainedRandom, CoverageDirected, CoverageFeedback, GlobalsConstraints, PageCoverage,
    ScenarioEngine,
};
use advm_soc::{DerivativeId, PlatformId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let constraints = GlobalsConstraints::new(DerivativeId::Sc88C, PlatformId::GoldenModel)
        .with_test_page_count(4)
        .with_page_range(0..=47)
        .with_forbidden_pages(vec![0, 1]) // system pages stay out of bounds
        .with_knob("RANDOM_BAUD_DIV", 1..=255);

    // Round 1: a uniform constrained-random batch.
    let plan = ScenarioEngine::new(7)
        .source(ConstrainedRandom::new(constraints.clone()))
        .batch(12)
        .plan()?;
    let first = &plan.scenarios()[0];
    println!(
        "--- {} (seed {}), test-target slice ---",
        first.name(),
        first.seed()
    );
    for line in first
        .globals()
        .text()
        .lines()
        .filter(|l| l.starts_with("TEST") || l.starts_with("RANDOM"))
    {
        println!("  {line}");
    }

    let space = constraints.legal_pages().len();
    let mut coverage = PageCoverage::new(&constraints);
    for scenario in plan.scenarios() {
        coverage.record(scenario.globals());
    }
    println!(
        "\nround 1 (constrained-random): {} scenarios -> {}/{space} pages ({:.0}%)",
        plan.len(),
        coverage.pages_hit(),
        100.0 * coverage.ratio()
    );

    // Round 2+: coverage-directed batches drain the unseen pages.
    let mut round = 2;
    while !coverage.complete() && round < 10 {
        let feedback = CoverageFeedback::new().with_pages_seen(coverage.seen().iter().copied());
        let refined = ScenarioEngine::new(7 + round as u64)
            .source(CoverageDirected::new(constraints.clone(), feedback))
            .batch(4)
            .plan()?;
        for scenario in refined.scenarios() {
            coverage.record(scenario.globals());
        }
        println!(
            "round {round} (coverage-directed):  {} scenarios -> {}/{space} pages ({:.0}%)",
            refined.len(),
            coverage.pages_hit(),
            100.0 * coverage.ratio()
        );
        round += 1;
    }
    if coverage.complete() {
        println!("full coverage reached");
    }
    Ok(())
}
