//! Constrained-random `Globals.inc` generation — the paper's §2 future
//! work. Draws seeded instances under constraints, prints one instance,
//! and reports page-space coverage as instances accumulate.
//!
//! ```sh
//! cargo run --example random_globals
//! ```

use advm_gen::{generate, GlobalsConstraints, PageCoverage};
use advm_soc::{DerivativeId, PlatformId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let constraints = GlobalsConstraints::new(DerivativeId::Sc88C, PlatformId::GoldenModel)
        .with_test_page_count(4)
        .with_page_range(0..=47)
        .with_forbidden_pages(vec![0, 1]) // system pages stay out of bounds
        .with_knob("RANDOM_BAUD_DIV", 1..=255);

    let instance = generate(&constraints, 7)?;
    println!("--- instance (seed 7), test-target slice ---");
    for line in instance
        .text()
        .lines()
        .filter(|l| l.starts_with("TEST") || l.starts_with("RANDOM"))
    {
        println!("  {line}");
    }

    let mut coverage = PageCoverage::new(&constraints);
    println!(
        "\nseeds -> coverage of the {}-page legal space:",
        constraints.legal_pages().len()
    );
    for seed in 0..200u64 {
        coverage.record(&generate(&constraints, seed)?);
        if (seed + 1) % 25 == 0 || coverage.complete() {
            println!(
                "  after {:3} instances: {:3} pages, {:.0}%",
                seed + 1,
                coverage.pages_hit(),
                100.0 * coverage.ratio()
            );
            if coverage.complete() {
                println!("  full coverage reached");
                break;
            }
        }
    }
    Ok(())
}
