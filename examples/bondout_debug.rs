//! Debugging a failing test on the bondout device — the platform the
//! paper describes as "enhanced to include extra hardware debugging
//! capabilities".
//!
//! A deliberately broken test (it checks the wrong page) fails; the
//! bondout execution trace shows the retired instruction stream around
//! the failure, while product silicon offers nothing but the verdict.
//!
//! ```sh
//! cargo run --example bondout_debug
//! ```

use advm::build::build_cell;
use advm::env::{ModuleTestEnv, TestCell};
use advm::presets::default_config;
use advm_sim::Platform;
use advm_soc::{Derivative, PlatformId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = ModuleTestEnv::new(
        "PAGE",
        default_config(),
        vec![TestCell::new(
            "TEST_BUGGY",
            "selects page 5 but checks for page 6 (a test bug)",
            "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #5
    CALL Base_Select_Page
    DBG #0xAA                  ; marker: selection done
    LOAD ArgA, #6              ; BUG: wrong expectation
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    DBG #0xFF                  ; marker: about to report failure
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        )],
    );
    let image = build_cell(&env, "TEST_BUGGY")?;
    let derivative = Derivative::sc88a();

    // Product silicon: verdict only.
    let mut silicon = Platform::new(PlatformId::ProductSilicon, &derivative);
    silicon.enable_trace(32); // ignored: no debug port
    silicon.load_image(&image);
    let silicon_result = silicon.run();
    println!("product silicon says: {silicon_result}");
    assert!(silicon.trace().is_none());

    // Bondout: verdict plus trace and markers.
    let mut bondout = Platform::new(PlatformId::Bondout, &derivative);
    bondout.enable_trace(16);
    bondout.load_image(&image);
    let bondout_result = bondout.run();
    println!("\nbondout says:         {bondout_result}");
    println!("debug markers hit:    {:02X?}", bondout_result.dbg_markers);
    println!("\nlast retired instructions (bondout trace):");
    print!(
        "{}",
        bondout
            .trace()
            .expect("bondout has a debug port")
            .disassembly()
    );

    assert!(!bondout_result.passed());
    assert_eq!(bondout_result.dbg_markers, vec![0xAA, 0xFF]);
    println!("\nthe trace walks straight into Base_Report_Fail — test bug found");
    Ok(())
}
