//! Derivative porting walk-through: take a module environment written
//! for SC88-A and re-target it to each catalogued derivative, printing
//! the change-set every time — then prove the untouched tests still
//! pass.
//!
//! ```sh
//! cargo run --example derivative_port
//! ```

use advm::build::run_cell;
use advm::env::EnvConfig;
use advm::porting::{port_env, test_files_touched};
use advm::presets::{default_config, page_env};
use advm_soc::{DerivativeId, PlatformId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = page_env(default_config(), 3);
    println!("origin: {env}\n");

    for target in [
        DerivativeId::Sc88B,
        DerivativeId::Sc88C,
        DerivativeId::Sc88D,
    ] {
        let derivative = advm_soc::Derivative::from_id(target);
        println!("== port to {target} ==");
        for change in derivative.changes() {
            println!("  hardware change: {change}");
        }
        let outcome = port_env(&env, EnvConfig::new(target, PlatformId::GoldenModel));
        println!("  change-set: {}", outcome.changes);
        println!(
            "  test files touched: {}",
            test_files_touched(&outcome.changes)
        );

        for cell in outcome.env.cells() {
            let result = run_cell(&outcome.env, cell.id())?;
            println!("  {}: {}", cell.id(), result);
            assert!(result.passed(), "ported test must pass");
        }
        println!();
    }
    println!("all derivatives ported with zero test edits");
    Ok(())
}
