//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros under the same paths as the real crate, so
//! `use serde::{Deserialize, Serialize};` + `#[derive(Serialize, Deserialize)]`
//! compile unchanged. No data format is implemented; see `vendor/README.md`.

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// emits no impl, and nothing in the workspace requires the bound).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirror of `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
