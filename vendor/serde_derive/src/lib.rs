//! Offline no-op stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! forward compatibility but never serializes anything, so these derives
//! accept the input (including `#[serde(...)]` helper attributes) and emit
//! no code. See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
