//! Offline stub of `rand`.
//!
//! Implements the `rand` 0.8 API surface the workspace uses — `Rng`,
//! `SeedableRng`, `rngs::StdRng`, `gen_range` over half-open and inclusive
//! integer ranges — over a SplitMix64 core. Draws are uniform-by-modulo:
//! statistically biased for ranges approaching `2^64`, which is irrelevant
//! for the small constraint spaces the workspace draws from, and fully
//! deterministic per seed, which is what reproducible test generation needs.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 raw bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Generates a value uniformly distributed in `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable RNG construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Concrete RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: a SplitMix64 generator. Not cryptographically
    /// secure (the real `StdRng` is ChaCha12); deterministic and fast,
    /// which is all the workspace requires.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..=999), b.gen_range(0u32..=999));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&w));
            let s = rng.gen_range(-3i16..=3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(9u32..=9), 9);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
