//! Offline stub of `proptest`.
//!
//! A real — if minimal — property-testing engine under the `proptest` crate
//! name and module layout:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, `boxed`;
//!   strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`strategy::Union`] (via [`prop_oneof!`]) and
//!   [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support, plus
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assert_ne!`];
//! * a deterministic runner ([`test_runner`]): case seeds derive from the
//!   test's source file and name, failing seeds persist into
//!   `proptest-regressions/<file>.txt` and replay first on later runs.
//!
//! Differences from real proptest, by design: no shrinking (the failing
//! input prints whole), no forking, and the value space of `any::<T>()` is
//! uniform rather than edge-biased.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest suite starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Combines strategies producing the same value type, choosing one
/// uniformly at random per generated case.
///
/// Weighted arms (`weight => strategy`) from real proptest are not
/// supported — every arm is equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// case on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::std::assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        ::std::assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        ::std::assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        ::std::assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        ::std::assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        ::std::assert_ne!($left, $right, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs (after replaying any persisted failure seeds).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Build the (possibly expensive) strategies once per test,
                // not once per generated case; the bindings' strategies
                // combine into one tuple strategy, generated and
                // destructured together.
                let __proptest_strategy = ($(($strategy),)+);
                $crate::test_runner::run_property_test(
                    $config,
                    ::std::file!(),
                    ::std::stringify!($name),
                    |__proptest_rng: &mut $crate::test_runner::TestRng| {
                        let ($($arg,)+) = $crate::strategy::Strategy::generate(
                            &__proptest_strategy,
                            __proptest_rng,
                        );
                        $body
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
