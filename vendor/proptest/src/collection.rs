//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of values from `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_respects_bounds() {
        let mut rng = TestRng::from_seed(6);
        let strat = vec(0u8..10, 1..40usize);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            lens.insert(v.len());
        }
        assert!(lens.len() > 10, "length should vary: {lens:?}");
    }

    #[test]
    fn exact_size() {
        let mut rng = TestRng::from_seed(7);
        assert_eq!(vec(0u8..5, 3usize).generate(&mut rng).len(), 3);
    }
}
