//! Deterministic property-test execution with failure-seed persistence.

use std::fs;
use std::io::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (mirrors the real constructor).
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that, overridable per run
        // with PROPTEST_CASES.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// The RNG strategies draw from: SplitMix64, seeded per case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a case seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }
}

/// FNV-1a, used to derive a per-test base seed from its identity so runs
/// are deterministic without any global state.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Where failing seeds for the suite at `source_file` persist.
///
/// `source_file` is the `file!()` of the `proptest!` invocation, relative to
/// the workspace root (e.g. `crates/isa/tests/encode_props.rs`); regressions
/// live next to the suite in a `proptest-regressions` directory, like real
/// proptest: `crates/isa/tests/proptest-regressions/encode_props.txt`.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let src = Path::new(source_file);
    let stem = src.file_stem()?;
    let dir = src.parent()?.join("proptest-regressions");
    Some(dir.join(Path::new(stem).with_extension("txt")))
}

/// Resolves `source_file` (workspace-root-relative) against the filesystem.
///
/// Test binaries run with the *package* root as cwd, while `file!()` paths
/// are relative to the *workspace* root, so walk up until the path exists.
fn resolve_from_cwd(rel: &Path) -> PathBuf {
    let mut base = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if base.join(rel).exists() || base.join("Cargo.lock").exists() {
            return base.join(rel);
        }
        if !base.pop() {
            return rel.to_path_buf();
        }
    }
}

/// Persisted seeds for one suite: lines of `seed = <u64>` (other lines are
/// comments).
fn read_persisted_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| line.trim().strip_prefix("seed ="))
        .filter_map(|rest| rest.split('#').next()?.trim().parse().ok())
        .collect()
}

fn persist_seed(path: &Path, test_name: &str, seed: u64) {
    if read_persisted_seeds(path).contains(&seed) {
        return;
    }
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(
                file,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated. (Stub format: `seed = <u64>` lines.)"
            )?;
        }
        writeln!(file, "seed = {seed} # {test_name}")?;
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!(
            "proptest: could not persist failing seed to {}: {e}",
            path.display()
        );
    }
}

/// Runs one property: replays persisted failure seeds, then
/// `config.cases` fresh cases with seeds derived deterministically from
/// the test identity. On failure the offending seed is persisted and the
/// panic is propagated so the harness reports the test as failed.
pub fn run_property_test<F>(config: ProptestConfig, source_file: &str, test_name: &str, body: F)
where
    F: Fn(&mut TestRng),
{
    let regressions = regression_path(source_file).map(|rel| resolve_from_cwd(&rel));
    let persisted = regressions
        .as_deref()
        .map(read_persisted_seeds)
        .unwrap_or_default();

    let base = fnv1a(source_file.as_bytes()) ^ fnv1a(test_name.as_bytes()).rotate_left(17);
    let fresh = (0..config.cases).map(|case| base.wrapping_add(u64::from(case)));

    for (origin, seed) in persisted
        .into_iter()
        .map(|s| ("persisted", s))
        .chain(fresh.map(|s| ("generated", s)))
    {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut rng = TestRng::from_seed(seed);
            body(&mut rng);
        }));
        if let Err(cause) = outcome {
            if origin == "generated" {
                if let Some(path) = &regressions {
                    persist_seed(path, test_name, seed);
                }
            }
            eprintln!(
                "proptest: property `{test_name}` ({source_file}) failed at {origin} seed \
                 {seed}; rerun replays it first"
            );
            panic::resume_unwind(cause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_lines_parse() {
        let dir = std::env::temp_dir().join("advm-proptest-stub-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("suite.txt");
        persist_seed(&path, "prop_x", 42);
        persist_seed(&path, "prop_x", 42); // dedup
        persist_seed(&path, "prop_y", 7);
        assert_eq!(read_persisted_seeds(&path), vec![42, 7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn runner_executes_requested_cases() {
        use std::cell::Cell;
        let count = Cell::new(0u32);
        run_property_test(
            ProptestConfig::with_cases(10),
            "vendor/x.rs",
            "counts",
            |_rng| {
                count.set(count.get() + 1);
            },
        );
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn regression_path_mirrors_real_proptest() {
        assert_eq!(
            regression_path("crates/isa/tests/encode_props.rs").unwrap(),
            PathBuf::from("crates/isa/tests/proptest-regressions/encode_props.txt")
        );
    }
}
