//! The `any::<T>()` entry point.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns a strategy generating any value of `T`, uniformly.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for primitive integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_signed_values() {
        let mut rng = TestRng::from_seed(5);
        let strat = any::<i16>();
        let (mut neg, mut pos) = (false, false);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos, "any::<i16>() never changed sign");
    }
}
