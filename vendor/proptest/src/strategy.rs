//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Discards generated values failing the predicate, retrying (up to an
    /// internal limit) until one passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter exhausted 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice between same-typed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over `arms`. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.0.len() as u64) as usize;
        self.0[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u8..=32).generate(&mut rng);
            assert!((1..=32).contains(&w));
            let s = (-5i16..=5).generate(&mut rng);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(2);
        let strat = (0u8..4).prop_flat_map(|pos| (Just(pos), 0u8..=pos));
        for _ in 0..200 {
            let (pos, below) = strat.generate(&mut rng);
            assert!(below <= pos);
        }
        let doubled = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let strat = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::from_seed(4);
        let evens = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }
}
