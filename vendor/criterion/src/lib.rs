//! Offline stub of `criterion`.
//!
//! Runs each benchmark for a fixed number of timed samples and prints the
//! mean wall-clock time per iteration (plus throughput when configured).
//! No warm-up modelling, outlier statistics, plots or saved baselines —
//! enough to smoke-run `cargo bench` and spot order-of-magnitude
//! regressions by eye.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples per benchmark unless overridden by
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Per-iteration time floor: iterations are batched until one sample takes
/// at least this long, so sub-microsecond bodies still measure sanely.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(1);

/// The benchmark manager passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors the real builder method; CLI args are ignored by the stub.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benchmarks one closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, DEFAULT_SAMPLE_SIZE, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix, throughput and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks one closure under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.throughput, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks one closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units the measured time is divided by when reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, batching iterations so each timed sample is long
    /// enough for the clock to resolve.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: how many iterations does one sample need?
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || batch >= 1 << 20 {
                self.samples.push(elapsed / batch as u32);
                break;
            }
            batch *= 4;
        }
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, mut body: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    body(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64()),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64()),
    });
    println!(
        "{name:<50} {:>12.1} ns/iter{}",
        mean.as_nanos() as f64,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            std::hint::black_box(count)
        });
        assert_eq!(b.samples.len(), 3);
        assert!(count >= 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(1), &5u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        c.bench_function("stub/one", |b| b.iter(|| 1 + 1));
    }
}
