//! Offline stub of `thiserror`.
//!
//! Re-exports a subset `#[derive(Error)]`: `#[error("...")]` format
//! attributes on structs and enums with unit, tuple or named fields;
//! `{field}` / `{0}` (optionally with format specs, e.g. `{0:#x}`)
//! interpolation; `#[source]` and `#[from]` fields (the latter also
//! generating a `From` impl). Not supported: generics,
//! `#[error(transparent)]`, extra format arguments after the literal, and
//! `#[backtrace]`. The tests below are the authoritative list of
//! supported shapes.

pub use thiserror_impl::Error;

#[cfg(test)]
mod tests {
    use crate::Error;
    use std::error::Error as _;

    #[derive(Debug, Error)]
    #[error("unit failure")]
    struct Unit;

    #[derive(Debug, Error)]
    #[error("named failure in {file} at line {line}")]
    struct Named {
        file: String,
        line: u32,
    }

    #[derive(Debug, Error)]
    #[error("tuple failure: {0} (code {1:#x})")]
    struct Tuple(String, u32);

    #[derive(Debug, Error)]
    enum Many {
        #[error("io-ish problem: {0}")]
        Io(#[from] std::fmt::Error),
        #[error("bad page {page} on {platform}")]
        BadPage { page: u32, platform: String },
        #[error("wrapped: {msg}")]
        Wrapped {
            msg: String,
            #[source]
            cause: Unit,
        },
        #[error("nothing to add")]
        Empty,
    }

    // Fields whose *types* contain top-level commas or `->`: the derive's
    // comma splitter must not cut fields apart inside generic arguments
    // or after fn-pointer arrows.
    #[derive(Debug, Error)]
    #[error("{count} stale entries")]
    struct GenericFields {
        count: usize,
        stale: std::collections::HashMap<String, Vec<(u32, u32)>>,
        callback: fn(u32) -> u32,
    }

    #[test]
    fn generic_and_fn_pointer_field_types_survive_splitting() {
        let err = GenericFields {
            count: 2,
            stale: std::collections::HashMap::new(),
            callback: |v| v,
        };
        assert_eq!(err.to_string(), "2 stale entries");
        assert!(err.source().is_none());
    }

    #[test]
    fn displays_render() {
        assert_eq!(Unit.to_string(), "unit failure");
        assert_eq!(
            Named {
                file: "a.rs".into(),
                line: 7
            }
            .to_string(),
            "named failure in a.rs at line 7"
        );
        assert_eq!(
            Tuple("oops".into(), 255).to_string(),
            "tuple failure: oops (code 0xff)"
        );
        assert_eq!(
            Many::BadPage {
                page: 3,
                platform: "rtl".into()
            }
            .to_string(),
            "bad page 3 on rtl"
        );
        assert_eq!(Many::Empty.to_string(), "nothing to add");
    }

    #[test]
    fn from_and_source_work() {
        let err: Many = std::fmt::Error.into();
        assert_eq!(
            err.to_string(),
            "io-ish problem: an error occurred when formatting an argument"
        );
        assert!(err.source().is_some());

        let wrapped = Many::Wrapped {
            msg: "m".into(),
            cause: Unit,
        };
        assert_eq!(wrapped.source().unwrap().to_string(), "unit failure");
        assert!(Many::Empty.source().is_none());
    }
}
