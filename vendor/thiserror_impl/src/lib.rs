//! Subset `#[derive(Error)]` implemented directly over `proc_macro`
//! token trees (no `syn`/`quote` — the build environment is offline).
//!
//! Supported input shapes are documented and tested in the `thiserror`
//! facade crate; anything outside the subset fails with a
//! `compile_error!` naming the restriction.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Subset stand-in for `thiserror::Error`.
#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(code) => code.parse().expect("generated code parses"),
        Err(msg) => format!("::std::compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// One parsed field.
struct Field {
    /// `Some` for named fields.
    name: Option<String>,
    /// Rendered type tokens.
    ty: String,
    has_from: bool,
    has_source: bool,
}

/// One parsed variant (an entire struct is modelled as a single variant).
struct Variant {
    /// `None` for a struct.
    name: Option<String>,
    /// The `#[error("...")]` literal, quotes included.
    format: String,
    named: bool,
    fields: Vec<Field>,
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let outer_attrs = take_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            pos += 1;
            tokens[pos - 1].to_string()
        }
        other => {
            return Err(format!(
                "derive(Error) stub: expected struct or enum, got {other:?}"
            ))
        }
    };
    let type_name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => {
            pos += 1;
            id.to_string()
        }
        other => {
            return Err(format!(
                "derive(Error) stub: expected type name, got {other:?}"
            ))
        }
    };
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("derive(Error) stub: generic error types are not supported".into());
    }

    let variants = if kind == "enum" {
        let Some(TokenTree::Group(body)) = tokens.get(pos) else {
            return Err("derive(Error) stub: expected enum body".into());
        };
        parse_enum_body(body.stream())?
    } else {
        vec![parse_struct_body(&outer_attrs, &tokens[pos..])?]
    };

    Ok(render(&type_name, kind == "enum", &variants))
}

/// Collects `#[...]` attribute groups starting at `*pos`.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Vec<TokenStream> {
    let mut attrs = Vec::new();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        match tokens.get(*pos + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                attrs.push(g.stream());
                *pos += 2;
            }
            _ => break,
        }
    }
    attrs
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Extracts the string literal from an `error("...")` attribute body.
fn error_literal(attrs: &[TokenStream]) -> Result<String, String> {
    for attr in attrs {
        let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
        match toks.first() {
            Some(TokenTree::Ident(id)) if id.to_string() == "error" => {}
            _ => continue,
        }
        let Some(TokenTree::Group(args)) = toks.get(1) else {
            return Err("derive(Error) stub: #[error] needs (\"...\")".into());
        };
        let arg_toks: Vec<TokenTree> = args.stream().into_iter().collect();
        match arg_toks.first() {
            Some(TokenTree::Literal(lit)) => {
                let text = lit.to_string();
                if !text.starts_with('"') {
                    return Err(
                        "derive(Error) stub: #[error] argument must be a string literal".into(),
                    );
                }
                if arg_toks.len() > 1 {
                    return Err(
                        "derive(Error) stub: extra arguments after the format literal are not \
                         supported; interpolate fields inline instead"
                            .into(),
                    );
                }
                return Ok(text);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "transparent" => {
                return Err("derive(Error) stub: #[error(transparent)] is not supported".into());
            }
            other => {
                return Err(format!(
                    "derive(Error) stub: bad #[error] argument {other:?}"
                ))
            }
        }
    }
    Err("derive(Error) stub: every variant/struct needs an #[error(\"...\")] attribute".into())
}

/// Splits a token stream at top-level commas.
///
/// `(...)`/`[...]`/`{...}` groups arrive as single token trees, but
/// generic arguments do not — commas inside `Vec<(String, u32)>`-style
/// types are flat in the stream — so angle-bracket depth is tracked
/// explicitly (ignoring `->`, where `>` closes nothing).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0u32;
    let mut prev_was_dash = false;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if !prev_was_dash => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    prev_was_dash = false;
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
            prev_was_dash = p.as_char() == '-';
        } else {
            prev_was_dash = false;
        }
        chunks.last_mut().expect("nonempty").push(tree);
    }
    if chunks.last().is_some_and(Vec::is_empty) {
        chunks.pop();
    }
    chunks
}

fn parse_field(chunk: &[TokenTree], named: bool) -> Result<Field, String> {
    let mut pos = 0;
    let attrs = take_attrs(chunk, &mut pos);
    let has = |want: &str| {
        attrs.iter().any(|a| {
            matches!(a.clone().into_iter().next(), Some(TokenTree::Ident(id)) if id.to_string() == want)
        })
    };
    skip_visibility(chunk, &mut pos);
    let name = if named {
        let Some(TokenTree::Ident(id)) = chunk.get(pos) else {
            return Err(format!(
                "derive(Error) stub: expected field name in {chunk:?}"
            ));
        };
        pos += 1;
        // Skip the `:`.
        pos += 1;
        Some(id.to_string())
    } else {
        None
    };
    let ty = TokenStream::from_iter(chunk[pos..].iter().cloned()).to_string();
    Ok(Field {
        name,
        ty,
        has_from: has("from"),
        has_source: has("source"),
    })
}

fn parse_fields(group: &TokenTree) -> Result<(bool, Vec<Field>), String> {
    match group {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            let fields = split_commas(g.stream())
                .iter()
                .map(|c| parse_field(c, true))
                .collect::<Result<_, _>>()?;
            Ok((true, fields))
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = split_commas(g.stream())
                .iter()
                .map(|c| parse_field(c, false))
                .collect::<Result<_, _>>()?;
            Ok((false, fields))
        }
        other => Err(format!("derive(Error) stub: unexpected fields {other:?}")),
    }
}

fn parse_enum_body(body: TokenStream) -> Result<Vec<Variant>, String> {
    split_commas(body)
        .iter()
        .map(|chunk| {
            let mut pos = 0;
            let attrs = take_attrs(chunk, &mut pos);
            let format = error_literal(&attrs)?;
            let Some(TokenTree::Ident(name)) = chunk.get(pos) else {
                return Err(format!(
                    "derive(Error) stub: expected variant name in {chunk:?}"
                ));
            };
            pos += 1;
            let (named, fields) = match chunk.get(pos) {
                None => (false, Vec::new()),
                Some(group) => parse_fields(group)?,
            };
            Ok(Variant {
                name: Some(name.to_string()),
                format,
                named,
                fields,
            })
        })
        .collect()
}

fn parse_struct_body(outer_attrs: &[TokenStream], rest: &[TokenTree]) -> Result<Variant, String> {
    let format = error_literal(outer_attrs)?;
    let (named, fields) = match rest.first() {
        None => (false, Vec::new()),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => (false, Vec::new()),
        Some(group) => parse_fields(group)?,
    };
    Ok(Variant {
        name: None,
        format,
        named,
        fields,
    })
}

/// Rewrites positional interpolations (`{0}`, `{1:#x}`) in a quoted format
/// literal to the tuple binding names (`{__f0}`, `{__f1:#x}`) so Rust's
/// inline captured-identifier formatting can resolve them.
fn rewrite_positional(literal: &str) -> String {
    let mut out = String::with_capacity(literal.len());
    let mut chars = literal.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '{' {
            if chars.peek() == Some(&'{') {
                out.push(chars.next().expect("peeked"));
                continue;
            }
            if chars.peek().is_some_and(char::is_ascii_digit) {
                out.push_str("__f");
            }
        }
    }
    out
}

fn binding_names(variant: &Variant) -> Vec<String> {
    variant
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| f.name.clone().unwrap_or_else(|| format!("__f{i}")))
        .collect()
}

/// Pattern like `{ a, b }` or `(__f0, __f1)`, or empty for unit shapes.
fn binding_pattern(variant: &Variant) -> String {
    let names = binding_names(variant);
    if variant.fields.is_empty() {
        String::new()
    } else if variant.named {
        format!("{{ {} }}", names.join(", "))
    } else {
        format!("({})", names.join(", "))
    }
}

fn render(type_name: &str, is_enum: bool, variants: &[Variant]) -> String {
    let mut display_arms = String::new();
    let mut source_arms = String::new();
    let mut from_impls = String::new();

    for variant in variants {
        let path = match &variant.name {
            Some(v) => format!("{type_name}::{v}"),
            None => type_name.to_string(),
        };
        let pattern = binding_pattern(variant);
        let format = rewrite_positional(&variant.format);
        display_arms.push_str(&format!(
            "            {path} {pattern} => ::std::write!(f, {format}),\n"
        ));

        let names = binding_names(variant);
        let source_field = variant
            .fields
            .iter()
            .position(|f| f.has_source || f.has_from)
            .map(|i| names[i].clone());
        match source_field {
            Some(field) => {
                let pat = if variant.named {
                    format!("{{ {field}, .. }}")
                } else {
                    // Bind every tuple position; only `field` is used.
                    format!(
                        "({})",
                        names
                            .iter()
                            .map(|n| if *n == field { n.clone() } else { "_".into() })
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                source_arms.push_str(&format!(
                    "            {path} {pat} => ::std::option::Option::Some({field} as &(dyn ::std::error::Error + 'static)),\n"
                ));
            }
            None => {
                let pat = match variant.fields.is_empty() {
                    true => String::new(),
                    false if variant.named => "{ .. }".to_string(),
                    false => format!("({})", vec!["_"; variant.fields.len()].join(", ")),
                };
                source_arms.push_str(&format!(
                    "            {path} {pat} => ::std::option::Option::None,\n"
                ));
            }
        }

        if let Some(from_idx) = variant.fields.iter().position(|f| f.has_from) {
            let field = &variant.fields[from_idx];
            let construct = match (&variant.name, variant.named, &field.name) {
                (Some(v), true, Some(n)) => format!("{type_name}::{v} {{ {n}: value }}"),
                (Some(v), false, _) => format!("{type_name}::{v}(value)"),
                (None, true, Some(n)) => format!("{type_name} {{ {n}: value }}"),
                (None, false, _) => format!("{type_name}(value)"),
                _ => unreachable!("named field without a name"),
            };
            if variant.fields.len() != 1 {
                return format!(
                    "::std::compile_error!(\"derive(Error) stub: #[from] requires the variant to \
                     have exactly one field ({path})\");"
                );
            }
            from_impls.push_str(&format!(
                "impl ::std::convert::From<{ty}> for {type_name} {{\n    fn from(value: {ty}) -> Self {{ {construct} }}\n}}\n",
                ty = field.ty,
            ));
        }
    }

    let (display_body, source_body) = if is_enum || !variants[0].fields.is_empty() {
        (
            format!("match self {{\n{display_arms}        }}"),
            format!("match self {{\n{source_arms}        }}"),
        )
    } else {
        // Fieldless struct: a match would be `Type => ...` which is fine,
        // but render directly for readability of the expansion.
        (
            format!(
                "::std::write!(f, {})",
                rewrite_positional(&variants[0].format)
            ),
            "::std::option::Option::None".to_string(),
        )
    };

    format!(
        "#[allow(unused_variables, clippy::all)]\n\
         impl ::std::fmt::Display for {type_name} {{\n    \
             fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n        \
                 {display_body}\n    \
             }}\n\
         }}\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::std::error::Error for {type_name} {{\n    \
             fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {{\n        \
                 {source_body}\n    \
             }}\n\
         }}\n\
         {from_impls}"
    )
}
