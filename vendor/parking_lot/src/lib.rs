//! Offline stub of `parking_lot` backed by `std::sync`.
//!
//! Exposes the parking_lot API shape the workspace uses: `lock()` returns
//! the guard directly (no poisoning — a poisoned std lock is recovered via
//! `PoisonError::into_inner`, matching parking_lot's "poisoning does not
//! exist" semantics).

use std::sync;

/// Mutual exclusion primitive with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
