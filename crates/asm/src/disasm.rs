//! Disassembler: instruction words back to canonical assembler text.
//!
//! Used by the bondout/RTL trace facilities and by debugging output in the
//! regression runner. Undecodable words are rendered as `.WORD` data so a
//! disassembly listing is always complete.

use advm_isa::decode;

use crate::program::Image;

/// Disassembles one word at `addr`.
pub fn disassemble_word(addr: u32, word: u32) -> String {
    match decode(word) {
        Ok(insn) => format!("{addr:05X}: {word:08X}  {insn}"),
        Err(_) => format!("{addr:05X}: {word:08X}  .WORD 0x{word:X}"),
    }
}

/// Disassembles `count` words of an image starting at `start`.
pub fn disassemble_range(image: &Image, start: u32, count: u32) -> String {
    let mut out = String::new();
    for i in 0..count {
        let addr = start + 4 * i;
        out.push_str(&disassemble_word(addr, image.word(addr)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use advm_isa::{encode, DataReg, Insn};

    use super::*;

    #[test]
    fn decodable_word_renders_instruction() {
        let word = encode(&Insn::MovI {
            rd: DataReg::D3,
            imm: 0x42,
        });
        let text = disassemble_word(0x100, word);
        assert!(text.contains("MOVI d3"), "{text}");
        assert!(text.starts_with("00100:"));
    }

    #[test]
    fn junk_word_renders_as_data() {
        let text = disassemble_word(0x0, 0xFFFF_FFFF);
        assert!(text.contains(".WORD"), "{text}");
    }

    #[test]
    fn range_walks_words() {
        let mut image = Image::new();
        let mut program_bytes = Vec::new();
        for insn in [Insn::Nop, Insn::Ret] {
            program_bytes.extend_from_slice(&encode(&insn).to_le_bytes());
        }
        let program = crate::program::Program::new(
            vec![crate::program::Segment::new(0x200, program_bytes)],
            Default::default(),
            Default::default(),
            Vec::new(),
        );
        image.load_program(&program).unwrap();
        let text = disassemble_range(&image, 0x200, 2);
        assert!(text.contains("NOP"));
        assert!(text.contains("RETURN"));
    }
}
