//! Constant-expression parsing and evaluation.
//!
//! `Globals.inc` lines like `PAGE_ENABLE_MASK .EQU 1 << PAGE_ENABLE_POSITION`
//! and operands like `TEST_PAGE + 1` need a small expression language:
//! integers, symbols, unary `- ~`, binary `+ - * / % << >> & | ^`, and
//! parentheses, with conventional precedence.

use std::fmt;

use crate::diag::AsmError;
use crate::lexer::Token;
use crate::source::Loc;

/// A parsed constant expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Symbol reference, resolved at evaluation time.
    Sym(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
}

/// Binary operators in precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Remainder.
    Rem,
    /// Left shift.
    Shl,
    /// Logical right shift (on the 64-bit working value).
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Equality comparison (1 if equal, else 0).
    Eq,
    /// Inequality comparison.
    Ne,
    /// Signed less-than comparison.
    Lt,
    /// Signed greater-than comparison.
    Gt,
    /// Signed less-or-equal comparison.
    Le,
    /// Signed greater-or-equal comparison.
    Ge,
}

impl BinOp {
    fn precedence(self) -> u8 {
        match self {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 0,
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Shl | BinOp::Shr => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        }
    }

    fn from_token(token: &Token) -> Option<BinOp> {
        match token {
            Token::Punct('+') => Some(BinOp::Add),
            Token::Punct('-') => Some(BinOp::Sub),
            Token::Punct('*') => Some(BinOp::Mul),
            Token::Punct('/') => Some(BinOp::Div),
            Token::Punct('%') => Some(BinOp::Rem),
            Token::Punct('&') => Some(BinOp::And),
            Token::Punct('|') => Some(BinOp::Or),
            Token::Punct('^') => Some(BinOp::Xor),
            Token::Shl => Some(BinOp::Shl),
            Token::Shr => Some(BinOp::Shr),
            Token::EqEq => Some(BinOp::Eq),
            Token::NotEq => Some(BinOp::Ne),
            Token::Lt => Some(BinOp::Lt),
            Token::Gt => Some(BinOp::Gt),
            Token::Le => Some(BinOp::Le),
            Token::Ge => Some(BinOp::Ge),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Sym(s) => f.write_str(s),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "~({e})"),
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Gt => ">",
                    BinOp::Le => "<=",
                    BinOp::Ge => ">=",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

/// Parses an expression from a token slice, returning the expression and
/// the number of tokens consumed.
///
/// # Errors
///
/// Returns a located error on malformed expressions.
pub fn parse(tokens: &[Token], loc: &Loc) -> Result<(Expr, usize), AsmError> {
    let mut parser = Parser {
        tokens,
        pos: 0,
        loc,
    };
    let expr = parser.parse_binary(0)?;
    Ok((expr, parser.pos))
}

/// Parses an expression that must consume the entire token slice.
///
/// # Errors
///
/// Returns a located error on malformed or trailing input.
pub fn parse_all(tokens: &[Token], loc: &Loc) -> Result<Expr, AsmError> {
    let (expr, used) = parse(tokens, loc)?;
    if used != tokens.len() {
        return Err(AsmError::at(
            loc.clone(),
            format!("unexpected `{}` after expression", tokens[used]),
        ));
    }
    Ok(expr)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    loc: &'a Loc,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError::at(self.loc.clone(), message)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, AsmError> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.peek().and_then(BinOp::from_token) {
            if op.precedence() < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_binary(op.precedence() + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, AsmError> {
        match self.peek() {
            Some(Token::Punct('-')) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.parse_unary()?)))
            }
            Some(Token::Punct('~')) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::Not, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, AsmError> {
        match self.peek() {
            Some(Token::Number(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Expr::Sym(s))
            }
            Some(Token::Punct('(')) => {
                self.pos += 1;
                let inner = self.parse_binary(0)?;
                match self.peek() {
                    Some(Token::Punct(')')) => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    _ => Err(self.err("expected `)`")),
                }
            }
            Some(other) => Err(self.err(format!("expected expression, found `{other}`"))),
            None => Err(self.err("expected expression, found end of line")),
        }
    }
}

/// Evaluates an expression against a symbol resolver.
///
/// # Errors
///
/// Returns a located error for unknown symbols or division by zero.
pub fn eval<F>(expr: &Expr, loc: &Loc, resolve: &F) -> Result<i64, AsmError>
where
    F: Fn(&str) -> Option<i64>,
{
    match expr {
        Expr::Num(n) => Ok(*n),
        Expr::Sym(name) => resolve(name)
            .ok_or_else(|| AsmError::at(loc.clone(), format!("undefined symbol `{name}`"))),
        Expr::Unary(UnaryOp::Neg, e) => Ok(eval(e, loc, resolve)?.wrapping_neg()),
        Expr::Unary(UnaryOp::Not, e) => Ok(!eval(e, loc, resolve)?),
        Expr::Binary(op, a, b) => {
            let a = eval(a, loc, resolve)?;
            let b = eval(b, loc, resolve)?;
            match op {
                BinOp::Add => Ok(a.wrapping_add(b)),
                BinOp::Sub => Ok(a.wrapping_sub(b)),
                BinOp::Mul => Ok(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        Err(AsmError::at(loc.clone(), "division by zero in expression"))
                    } else {
                        Ok(a.wrapping_div(b))
                    }
                }
                BinOp::Rem => {
                    if b == 0 {
                        Err(AsmError::at(loc.clone(), "remainder by zero in expression"))
                    } else {
                        Ok(a.wrapping_rem(b))
                    }
                }
                BinOp::Shl => Ok(a.wrapping_shl(b as u32)),
                BinOp::Shr => Ok(((a as u64).wrapping_shr(b as u32)) as i64),
                BinOp::And => Ok(a & b),
                BinOp::Or => Ok(a | b),
                BinOp::Xor => Ok(a ^ b),
                BinOp::Eq => Ok(i64::from(a == b)),
                BinOp::Ne => Ok(i64::from(a != b)),
                BinOp::Lt => Ok(i64::from(a < b)),
                BinOp::Gt => Ok(i64::from(a > b)),
                BinOp::Le => Ok(i64::from(a <= b)),
                BinOp::Ge => Ok(i64::from(a >= b)),
            }
        }
    }
}

/// Collects the free symbols referenced by an expression.
pub fn free_symbols(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Num(_) => {}
        Expr::Sym(s) => {
            if !out.iter().any(|x| x == s) {
                out.push(s.clone());
            }
        }
        Expr::Unary(_, e) => free_symbols(e, out),
        Expr::Binary(_, a, b) => {
            free_symbols(a, out);
            free_symbols(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn loc() -> Loc {
        Loc::new("test", 1)
    }

    fn eval_str(text: &str, resolve: impl Fn(&str) -> Option<i64>) -> Result<i64, AsmError> {
        let tokens = tokenize(text, &loc()).unwrap();
        let expr = parse_all(&tokens, &loc())?;
        eval(&expr, &loc(), &resolve)
    }

    fn eval_const(text: &str) -> i64 {
        eval_str(text, |_| None).unwrap()
    }

    #[test]
    fn precedence() {
        assert_eq!(eval_const("2 + 3 * 4"), 14);
        assert_eq!(eval_const("(2 + 3) * 4"), 20);
        assert_eq!(
            eval_const("1 << 4 + 1"),
            1 << 5,
            "shift binds looser than +"
        );
        assert_eq!(eval_const("0xF0 | 0x0F & 0x3"), 0xF0 | (0x0F & 0x3));
    }

    #[test]
    fn unary_operators() {
        assert_eq!(eval_const("-5 + 10"), 5);
        assert_eq!(eval_const("~0 & 0xFF"), 0xFF);
        assert_eq!(eval_const("--3"), 3);
    }

    #[test]
    fn symbols_resolve() {
        let v = eval_str("PAGE_FIELD_SIZE + 1", |s| {
            (s == "PAGE_FIELD_SIZE").then_some(5)
        })
        .unwrap();
        assert_eq!(v, 6);
    }

    #[test]
    fn unknown_symbol_errors() {
        let err = eval_str("MISSING + 1", |_| None).unwrap_err();
        assert!(err.to_string().contains("undefined symbol `MISSING`"));
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(eval_str("1 / 0", |_| None).is_err());
        assert!(eval_str("1 % 0", |_| None).is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        let tokens = tokenize("1 + 2 ]", &loc()).unwrap();
        assert!(parse_all(&tokens, &loc()).is_err());
    }

    #[test]
    fn partial_parse_reports_consumed() {
        let tokens = tokenize("1 + 2, 3", &loc()).unwrap();
        let (expr, used) = parse(&tokens, &loc()).unwrap();
        assert_eq!(used, 3);
        assert_eq!(eval(&expr, &loc(), &|_| None).unwrap(), 3);
    }

    #[test]
    fn free_symbol_collection() {
        let tokens = tokenize("A + B * A - 2", &loc()).unwrap();
        let expr = parse_all(&tokens, &loc()).unwrap();
        let mut syms = Vec::new();
        free_symbols(&expr, &mut syms);
        assert_eq!(syms, vec!["A".to_owned(), "B".to_owned()]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(eval_const("2 == 2"), 1);
        assert_eq!(eval_const("2 == 3"), 0);
        assert_eq!(eval_const("2 != 3"), 1);
        assert_eq!(eval_const("2 < 3"), 1);
        assert_eq!(eval_const("3 <= 3"), 1);
        assert_eq!(eval_const("2 > 3"), 0);
        assert_eq!(eval_const("3 >= 4"), 0);
        // Comparisons bind loosest: `1 + 1 == 2` is `(1+1) == 2`.
        assert_eq!(eval_const("1 + 1 == 2"), 1);
        // The base-functions idiom.
        let v = eval_str("ES_VERSION == 2", |s| (s == "ES_VERSION").then_some(2)).unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn globals_mask_expression() {
        // The idiom used by generated globals files.
        let v = eval_str("1 << PAGE_ENABLE_POSITION", |s| {
            (s == "PAGE_ENABLE_POSITION").then_some(8)
        })
        .unwrap();
        assert_eq!(v, 0x100);
    }

    #[test]
    fn display_roundtrip_parses() {
        let tokens = tokenize("1 + SYM * 3 & ~0xF", &loc()).unwrap();
        let expr = parse_all(&tokens, &loc()).unwrap();
        let text = expr.to_string();
        let tokens2 = tokenize(&text, &loc()).unwrap();
        let expr2 = parse_all(&tokens2, &loc()).unwrap();
        let r = |s: &str| (s == "SYM").then_some(7i64);
        assert_eq!(
            eval(&expr, &loc(), &r).unwrap(),
            eval(&expr2, &loc(), &r).unwrap()
        );
    }
}
