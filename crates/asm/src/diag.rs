//! Assembler diagnostics.

use std::fmt;

use crate::source::Loc;

/// An assembler error with an optional source location.
///
/// The assembler stops at the first error; the error message carries the
/// `file:line` of the offending source so test-environment owners can fix
/// their cells quickly (the methodology leans on fast, clear feedback when
/// the abstraction layer changes underneath a test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    loc: Option<Loc>,
    message: String,
}

impl AsmError {
    /// An error tied to a source line.
    pub fn at(loc: Loc, message: impl Into<String>) -> Self {
        Self {
            loc: Some(loc),
            message: message.into(),
        }
    }

    /// An error with no specific location (e.g. a missing entry file).
    pub fn general(message: impl Into<String>) -> Self {
        Self {
            loc: None,
            message: message.into(),
        }
    }

    /// The source location, if known.
    pub fn loc(&self) -> Option<&Loc> {
        self.loc.as_ref()
    }

    /// The error message without the location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.loc {
            Some(loc) => write!(f, "{loc}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn located_error_displays_position() {
        let err = AsmError::at(Loc::new("t.asm", 3), "unknown mnemonic `FROB`");
        assert_eq!(err.to_string(), "t.asm:3: unknown mnemonic `FROB`");
        assert_eq!(err.loc().unwrap().line, 3);
    }

    #[test]
    fn general_error_has_no_location() {
        let err = AsmError::general("entry file `x.asm` not found");
        assert!(err.loc().is_none());
        assert_eq!(err.to_string(), "entry file `x.asm` not found");
    }
}
