//! Source management: a virtual file system for assembler inputs.
//!
//! The ADVM test environment is a tree of small files — test cells,
//! `Globals.inc`, `Base_Functions.asm` — that include each other. The
//! methodology engine builds those trees in memory, so the assembler
//! resolves `.INCLUDE` against a [`SourceSet`] rather than the OS
//! filesystem. (Loading a `SourceSet` from disk is a one-liner for users
//! who want real files.)

use std::collections::BTreeMap;
use std::fmt;

/// An in-memory collection of named assembler source files.
///
/// ```
/// use advm_asm::SourceSet;
///
/// let mut sources = SourceSet::new();
/// sources.insert("test.asm", "_main:\n    HALT #0\n");
/// assert!(sources.get("test.asm").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceSet {
    files: BTreeMap<String, String>,
}

impl SourceSet {
    /// An empty source set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a file.
    pub fn insert(&mut self, name: impl Into<String>, text: impl Into<String>) {
        self.files.insert(name.into(), text.into());
    }

    /// Builder-style [`SourceSet::insert`].
    pub fn with(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.insert(name, text);
        self
    }

    /// Looks up a file's text.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(String::as_str)
    }

    /// Iterates over `(name, text)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total line count across all files (used by effort metrics).
    pub fn total_lines(&self) -> usize {
        self.files.values().map(|t| t.lines().count()).sum()
    }
}

impl<N: Into<String>, T: Into<String>> FromIterator<(N, T)> for SourceSet {
    fn from_iter<I: IntoIterator<Item = (N, T)>>(iter: I) -> Self {
        let mut set = SourceSet::new();
        for (n, t) in iter {
            set.insert(n, t);
        }
        set
    }
}

impl<N: Into<String>, T: Into<String>> Extend<(N, T)> for SourceSet {
    fn extend<I: IntoIterator<Item = (N, T)>>(&mut self, iter: I) {
        for (n, t) in iter {
            self.insert(n, t);
        }
    }
}

/// A source location: file name plus 1-based line number.
///
/// The file name is reference-counted: locations are minted for every
/// preprocessed line and cloned into every parsed statement, so a
/// `Loc` clone must not allocate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Loc {
    /// File name within the [`SourceSet`].
    pub file: std::sync::Arc<str>,
    /// 1-based line number.
    pub line: u32,
}

impl Loc {
    /// Creates a location.
    pub fn new(file: impl Into<std::sync::Arc<str>>, line: u32) -> Self {
        Self {
            file: file.into(),
            line,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let set = SourceSet::new().with("a.asm", "NOP");
        assert_eq!(set.get("a.asm"), Some("NOP"));
        assert_eq!(set.get("b.asm"), None);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let set: SourceSet = vec![("a", "x"), ("b", "y\nz")].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_lines(), 3);
    }

    #[test]
    fn insert_replaces() {
        let mut set = SourceSet::new();
        set.insert("a", "old");
        set.insert("a", "new");
        assert_eq!(set.get("a"), Some("new"));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn loc_displays_file_and_line() {
        assert_eq!(Loc::new("t.asm", 12).to_string(), "t.asm:12");
    }
}
