//! The two-pass assembler: logical lines → [`Program`].
//!
//! Pass 1 sizes every statement and assigns label addresses; pass 2
//! evaluates operand expressions against the full symbol table (labels
//! plus `.EQU` constants) and encodes instructions.
//!
//! Beyond the raw ISA mnemonics, the assembler accepts the
//! pseudo-instructions the paper's listings use:
//!
//! | pseudo | expansion |
//! |--------|-----------|
//! | `LOAD dX, value` / `LOAD dX, #value` | `MOVI` + `MOVHI` pair (always two words) |
//! | `LOAD aX, value` | `LEA` |
//! | `LOAD dX, [aY+off]` / `[abs]` | `LD` / `LDABS` |
//! | `STORE [aY+off], dX` / `[abs], dX` | `ST` / `STABS` |
//! | `CALL aX` / `CALL target` | `CALL` register / absolute form |
//! | `RETURN` | `RET` |
//! | `ADD/AND/OR/XOR dX, dY, #imm` | immediate ALU forms |
//! | `SUB dX, dY, #imm` | `ADDI` with the negated immediate |
//! | `JEQ/JNE/JLT/JGE/JGT/JLE/JCS/JCC target` | conditional jumps |

use std::collections::BTreeMap;

use advm_isa::{encode, AddrReg, BitSrc, Cond, DataReg, Insn, RESET_PC};

use crate::diag::AsmError;
use crate::expr::{self, Expr};
use crate::lexer::Token;
use crate::preprocess::{LogicalLine, Preprocessed};
use crate::program::{ListingEntry, Program, Segment};
use crate::source::{Loc, SourceSet};

/// Default origin when a unit has no leading `.ORG`: the reset PC.
pub const DEFAULT_ORG: u32 = RESET_PC;

/// Assembles preprocessed lines into a program.
///
/// # Errors
///
/// Returns the first assembly error: unknown mnemonics, malformed or
/// out-of-range operands, duplicate labels, or unresolvable expressions.
pub fn assemble_preprocessed(pre: &Preprocessed) -> Result<Program, AsmError> {
    ParsedUnit::from_preprocessed(pre)?.encode()
}

/// A preprocessed and statement-parsed source unit, ready to encode.
///
/// Splitting [`assemble`](crate::assemble) into a parse phase and an
/// [`encode`](ParsedUnit::encode) phase lets a batch front-end (e.g. a
/// campaign's build pool) run the per-unit parse work concurrently across
/// units and keep only the cheap link step serial. `parse` followed by
/// `encode` is byte-identical to `assemble`.
pub struct ParsedUnit {
    stmts: Vec<PStmt>,
    equs: BTreeMap<String, i64>,
    /// Whether `encode` builds the per-statement listing. The lean mode
    /// skips listing text entirely; segments, labels and constants — and
    /// therefore every emitted byte and every diagnostic — are identical.
    listing: bool,
}

impl ParsedUnit {
    /// Preprocesses and parses `entry` (resolving `.INCLUDE` against
    /// `sources`) without encoding.
    ///
    /// # Errors
    ///
    /// Returns the first preprocessing or statement-parse error.
    pub fn parse(entry: &str, sources: &SourceSet) -> Result<Self, AsmError> {
        Self::build(entry, sources, true)
    }

    /// Like [`ParsedUnit::parse`], but [`encode`](ParsedUnit::encode)
    /// will skip the human-readable listing. Use for build pipelines
    /// that only link the program: the emitted image and all errors are
    /// identical, only `Program::listing` comes back empty (and the
    /// parse skips reconstructing per-statement source text).
    pub fn parse_lean(entry: &str, sources: &SourceSet) -> Result<Self, AsmError> {
        Self::build(entry, sources, false)
    }

    fn build(entry: &str, sources: &SourceSet, listing: bool) -> Result<Self, AsmError> {
        let pre = crate::preprocess(entry, sources)?;
        Ok(Self {
            stmts: parse_statements(&pre.lines, listing)?,
            equs: pre.equs.iter().cloned().collect(),
            listing,
        })
    }

    /// Parses already-preprocessed lines without encoding.
    ///
    /// # Errors
    ///
    /// Returns the first statement-parse error.
    pub fn from_preprocessed(pre: &Preprocessed) -> Result<Self, AsmError> {
        Ok(Self {
            stmts: parse_statements(&pre.lines, true)?,
            equs: pre.equs.iter().cloned().collect(),
            listing: true,
        })
    }

    /// Runs the two encoding passes (addresses/labels, then emission)
    /// over the parsed statements.
    ///
    /// # Errors
    ///
    /// Returns the first assembly error: unknown mnemonics, malformed or
    /// out-of-range operands, duplicate labels, or unresolvable
    /// expressions.
    pub fn encode(&self) -> Result<Program, AsmError> {
        encode_unit(&self.stmts, &self.equs, self.listing)
    }
}

fn encode_unit(
    stmts: &[PStmt],
    equs: &BTreeMap<String, i64>,
    with_listing: bool,
) -> Result<Program, AsmError> {
    // Pass 1: addresses and labels.
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut addr = DEFAULT_ORG;
    let mut addrs = Vec::with_capacity(stmts.len());
    for pstmt in stmts {
        addrs.push(addr);
        match &pstmt.stmt {
            Stmt::Label(name) => {
                if equs.contains_key(name) {
                    return Err(AsmError::at(
                        pstmt.loc.clone(),
                        format!("label `{name}` collides with an .EQU constant"),
                    ));
                }
                if labels.insert(name.clone(), addr).is_some() {
                    return Err(AsmError::at(
                        pstmt.loc.clone(),
                        format!("duplicate label `{name}`"),
                    ));
                }
            }
            Stmt::Org(e) => {
                let v = eval_early(e, &pstmt.loc, equs, &labels)?;
                addr = to_addr(v, &pstmt.loc)?;
            }
            Stmt::Word(list) => addr += 4 * list.len() as u32,
            Stmt::Byte(list) => addr += list.len() as u32,
            Stmt::Space(e) => {
                let v = eval_early(e, &pstmt.loc, equs, &labels)?;
                if !(0..=0x10_0000).contains(&v) {
                    return Err(AsmError::at(
                        pstmt.loc.clone(),
                        format!(".SPACE size {v} out of range"),
                    ));
                }
                addr += v as u32;
            }
            Stmt::Align(e) => {
                let v = eval_early(e, &pstmt.loc, equs, &labels)?;
                if v <= 0 || (v & (v - 1)) != 0 {
                    return Err(AsmError::at(
                        pstmt.loc.clone(),
                        format!(".ALIGN requires a power of two, got {v}"),
                    ));
                }
                let align = v as u32;
                addr = addr.div_ceil(align) * align;
            }
            Stmt::Insn { mnemonic, operands } => {
                addr += insn_size_bytes(mnemonic, operands);
            }
        }
    }

    // Pass 2: emit.
    let resolve = |name: &str| -> Option<i64> {
        equs.get(name)
            .copied()
            .or_else(|| labels.get(name).map(|a| i64::from(*a)))
    };
    let mut segments: Vec<Segment> = Vec::new();
    let mut listing: Vec<ListingEntry> = Vec::new();
    let mut seg_base = DEFAULT_ORG;
    let mut seg_bytes: Vec<u8> = Vec::new();
    let flush = |seg_base: &mut u32,
                 seg_bytes: &mut Vec<u8>,
                 next_base: u32,
                 segments: &mut Vec<Segment>| {
        if !seg_bytes.is_empty() {
            segments.push(Segment::new(*seg_base, std::mem::take(seg_bytes)));
        }
        *seg_base = next_base;
    };

    for (pstmt, &stmt_addr) in stmts.iter().zip(&addrs) {
        let loc = &pstmt.loc;
        let mut words: Vec<u32> = Vec::new();
        match &pstmt.stmt {
            Stmt::Label(_) => {}
            Stmt::Org(_) => {
                // `addrs` holds the address *before* the .ORG takes
                // effect; compute the new base the same way pass 1 did.
                let e = match &pstmt.stmt {
                    Stmt::Org(e) => e,
                    _ => unreachable!(),
                };
                let v = eval_early(e, loc, equs, &labels)?;
                let new_base = to_addr(v, loc)?;
                flush(&mut seg_base, &mut seg_bytes, new_base, &mut segments);
            }
            Stmt::Word(list) => {
                for e in list {
                    let v = expr::eval(e, loc, &resolve)?;
                    words.push(v as u32);
                    seg_bytes.extend_from_slice(&(v as u32).to_le_bytes());
                }
            }
            Stmt::Byte(list) => {
                for e in list {
                    let v = expr::eval(e, loc, &resolve)?;
                    if !(-128..=255).contains(&v) {
                        return Err(AsmError::at(
                            loc.clone(),
                            format!("byte value {v} out of range"),
                        ));
                    }
                    seg_bytes.push(v as u8);
                }
            }
            Stmt::Space(e) => {
                let v = eval_early(e, loc, equs, &labels)?;
                seg_bytes.extend(std::iter::repeat_n(0u8, v as usize));
            }
            Stmt::Align(e) => {
                let v = eval_early(e, loc, equs, &labels)? as u32;
                let target = stmt_addr.div_ceil(v) * v;
                seg_bytes.extend(std::iter::repeat_n(0u8, (target - stmt_addr) as usize));
            }
            Stmt::Insn { mnemonic, operands } => {
                let insns = lower(mnemonic, operands, stmt_addr, loc, &resolve)?;
                debug_assert_eq!(
                    insns.len() as u32 * 4,
                    insn_size_bytes(mnemonic, operands),
                    "pass1/pass2 size mismatch for {mnemonic}"
                );
                for insn in insns {
                    insn.validate()
                        .map_err(|e| AsmError::at(loc.clone(), e.to_string()))?;
                    let word = encode(&insn);
                    words.push(word);
                    seg_bytes.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
        if with_listing {
            listing.push(ListingEntry {
                addr: match &pstmt.stmt {
                    Stmt::Org(_) => None,
                    _ => Some(stmt_addr),
                },
                words,
                text: pstmt.text.clone(),
                source: loc.to_string(),
            });
        }
    }
    if !seg_bytes.is_empty() {
        segments.push(Segment::new(seg_base, seg_bytes));
    }

    Ok(Program::new(segments, labels, equs.clone(), listing))
}

/// Evaluates an expression that must be resolvable *at its point of use*
/// (`.ORG`, `.SPACE`, `.ALIGN`): constants and already-defined labels.
fn eval_early(
    e: &Expr,
    loc: &Loc,
    equs: &BTreeMap<String, i64>,
    labels: &BTreeMap<String, u32>,
) -> Result<i64, AsmError> {
    expr::eval(e, loc, &|name| {
        equs.get(name)
            .copied()
            .or_else(|| labels.get(name).map(|a| i64::from(*a)))
    })
}

fn to_addr(v: i64, loc: &Loc) -> Result<u32, AsmError> {
    if !(0..=i64::from(advm_isa::ADDR_MASK)).contains(&v) {
        return Err(AsmError::at(
            loc.clone(),
            format!("address {v:#x} out of range"),
        ));
    }
    Ok(v as u32)
}

// ---------------------------------------------------------------------------
// Statement parsing
// ---------------------------------------------------------------------------

/// A parsed operand.
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Data(DataReg),
    Addr(AddrReg),
    /// `#expr` immediate.
    Imm(Expr),
    /// Bare expression (symbol value / jump target).
    Bare(Expr),
    /// `[base + offset]` or `[expr]`.
    Mem(MemRef),
}

#[derive(Debug, Clone, PartialEq)]
enum MemRef {
    Based { base: AddrReg, offset: Expr },
    Abs(Expr),
}

#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    Label(String),
    Org(Expr),
    Word(Vec<Expr>),
    Byte(Vec<Expr>),
    Space(Expr),
    Align(Expr),
    Insn {
        mnemonic: String,
        operands: Vec<Operand>,
    },
}

#[derive(Debug, Clone)]
struct PStmt {
    stmt: Stmt,
    loc: Loc,
    text: String,
}

fn parse_statements(lines: &[LogicalLine], with_text: bool) -> Result<Vec<PStmt>, AsmError> {
    let mut stmts = Vec::new();
    for line in lines {
        // Source text is only consumed by the listing; skip the
        // reconstruction entirely on lean (listing-free) parses.
        let text = if with_text {
            line.tokens
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        } else {
            String::new()
        };
        let mut tokens: &[Token] = &line.tokens;
        // Leading label(s).
        while tokens.len() >= 2 {
            if let (Token::Ident(name), true) = (&tokens[0], tokens[1].is_punct(':')) {
                stmts.push(PStmt {
                    stmt: Stmt::Label(name.clone()),
                    loc: line.loc.clone(),
                    text: if with_text {
                        format!("{name}:")
                    } else {
                        String::new()
                    },
                });
                tokens = &tokens[2..];
            } else {
                break;
            }
        }
        if tokens.is_empty() {
            continue;
        }
        let stmt = parse_statement(tokens, &line.loc)?;
        stmts.push(PStmt {
            stmt,
            loc: line.loc.clone(),
            text,
        });
    }
    Ok(stmts)
}

fn parse_statement(tokens: &[Token], loc: &Loc) -> Result<Stmt, AsmError> {
    match &tokens[0] {
        Token::Directive(d) => {
            let rest = &tokens[1..];
            match d.as_str() {
                ".ORG" => Ok(Stmt::Org(expr::parse_all(rest, loc)?)),
                ".WORD" => Ok(Stmt::Word(parse_expr_list(rest, loc)?)),
                ".BYTE" => Ok(Stmt::Byte(parse_expr_list(rest, loc)?)),
                ".SPACE" => Ok(Stmt::Space(expr::parse_all(rest, loc)?)),
                ".ALIGN" => Ok(Stmt::Align(expr::parse_all(rest, loc)?)),
                other => Err(AsmError::at(
                    loc.clone(),
                    format!("unknown directive `{other}`"),
                )),
            }
        }
        Token::Ident(mnemonic) => {
            let operands = split_operands(&tokens[1..])
                .into_iter()
                .map(|op_tokens| parse_operand(&op_tokens, loc))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Stmt::Insn {
                mnemonic: mnemonic.to_ascii_uppercase(),
                operands,
            })
        }
        other => Err(AsmError::at(loc.clone(), format!("unexpected `{other}`"))),
    }
}

fn parse_expr_list(tokens: &[Token], loc: &Loc) -> Result<Vec<Expr>, AsmError> {
    split_operands(tokens)
        .into_iter()
        .map(|part| expr::parse_all(&part, loc))
        .collect()
}

/// Splits tokens at top-level commas.
fn split_operands(tokens: &[Token]) -> Vec<Vec<Token>> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        match t {
            Token::Punct('[') | Token::Punct('(') => {
                depth += 1;
                current.push(t.clone());
            }
            Token::Punct(']') | Token::Punct(')') => {
                depth -= 1;
                current.push(t.clone());
            }
            Token::Punct(',') if depth == 0 => parts.push(std::mem::take(&mut current)),
            _ => current.push(t.clone()),
        }
    }
    parts.push(current);
    parts
}

fn parse_operand(tokens: &[Token], loc: &Loc) -> Result<Operand, AsmError> {
    if tokens.is_empty() {
        return Err(AsmError::at(loc.clone(), "empty operand"));
    }
    // `#expr` immediate.
    if tokens[0].is_punct('#') {
        return Ok(Operand::Imm(expr::parse_all(&tokens[1..], loc)?));
    }
    // `[ ... ]` memory reference.
    if tokens[0].is_punct('[') {
        if !tokens.last().is_some_and(|t| t.is_punct(']')) {
            return Err(AsmError::at(loc.clone(), "unterminated memory operand"));
        }
        let inner = &tokens[1..tokens.len() - 1];
        if inner.is_empty() {
            return Err(AsmError::at(loc.clone(), "empty memory operand"));
        }
        if let Token::Ident(name) = &inner[0] {
            if let Ok(base) = name.parse::<AddrReg>() {
                if inner.len() == 1 {
                    return Ok(Operand::Mem(MemRef::Based {
                        base,
                        offset: Expr::Num(0),
                    }));
                }
                // `[aX + expr]` or `[aX - expr]`.
                let sign = match &inner[1] {
                    Token::Punct('+') => 1,
                    Token::Punct('-') => -1,
                    other => {
                        return Err(AsmError::at(
                            loc.clone(),
                            format!("expected `+` or `-` after base register, found `{other}`"),
                        ))
                    }
                };
                let offset = expr::parse_all(&inner[2..], loc)?;
                let offset = if sign < 0 {
                    Expr::Unary(expr::UnaryOp::Neg, Box::new(offset))
                } else {
                    offset
                };
                return Ok(Operand::Mem(MemRef::Based { base, offset }));
            }
            if name.parse::<DataReg>().is_ok() {
                return Err(AsmError::at(
                    loc.clone(),
                    format!("data register `{name}` cannot be a memory base"),
                ));
            }
        }
        return Ok(Operand::Mem(MemRef::Abs(expr::parse_all(inner, loc)?)));
    }
    // Single identifier that names a register.
    if tokens.len() == 1 {
        if let Token::Ident(name) = &tokens[0] {
            if let Ok(reg) = name.parse::<DataReg>() {
                return Ok(Operand::Data(reg));
            }
            if let Ok(reg) = name.parse::<AddrReg>() {
                return Ok(Operand::Addr(reg));
            }
        }
    }
    Ok(Operand::Bare(expr::parse_all(tokens, loc)?))
}

// ---------------------------------------------------------------------------
// Sizing and lowering
// ---------------------------------------------------------------------------

/// Size in bytes of an instruction statement (pass 1).
fn insn_size_bytes(mnemonic: &str, operands: &[Operand]) -> u32 {
    if mnemonic == "LOAD" {
        if let (Some(Operand::Data(_)), Some(Operand::Imm(_) | Operand::Bare(_))) =
            (operands.first(), operands.get(1))
        {
            return 8; // MOVI + MOVHI
        }
    }
    4
}

struct Ctx<'a> {
    loc: &'a Loc,
    resolve: &'a dyn Fn(&str) -> Option<i64>,
}

impl Ctx<'_> {
    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError::at(self.loc.clone(), message)
    }

    fn value(&self, op: &Operand, what: &str) -> Result<i64, AsmError> {
        match op {
            Operand::Imm(e) | Operand::Bare(e) => expr::eval(e, self.loc, &self.resolve),
            other => Err(self.err(format!("{what}: expected a value, found {}", kind(other)))),
        }
    }

    fn data(&self, op: &Operand, what: &str) -> Result<DataReg, AsmError> {
        match op {
            Operand::Data(r) => Ok(*r),
            other => Err(self.err(format!(
                "{what}: expected a data register, found {}",
                kind(other)
            ))),
        }
    }

    fn addr_reg(&self, op: &Operand, what: &str) -> Result<AddrReg, AsmError> {
        match op {
            Operand::Addr(r) => Ok(*r),
            other => Err(self.err(format!(
                "{what}: expected an address register, found {}",
                kind(other)
            ))),
        }
    }

    fn imm16_any(&self, op: &Operand, what: &str) -> Result<u16, AsmError> {
        let v = self.value(op, what)?;
        if !(-32768..=65535).contains(&v) {
            return Err(self.err(format!("{what}: immediate {v} does not fit 16 bits")));
        }
        Ok(v as u16)
    }

    fn imm16_signed(&self, op: &Operand, what: &str) -> Result<i16, AsmError> {
        let v = self.value(op, what)?;
        i16::try_from(v)
            .map_err(|_| self.err(format!("{what}: immediate {v} does not fit signed 16 bits")))
    }

    fn imm8(&self, op: &Operand, what: &str) -> Result<u8, AsmError> {
        let v = self.value(op, what)?;
        u8::try_from(v).map_err(|_| self.err(format!("{what}: value {v} does not fit 8 bits")))
    }

    fn imm5(&self, op: &Operand, what: &str) -> Result<u8, AsmError> {
        let v = self.value(op, what)?;
        if !(0..=31).contains(&v) {
            return Err(self.err(format!("{what}: value {v} not in 0..=31")));
        }
        Ok(v as u8)
    }

    fn target(&self, op: &Operand, what: &str) -> Result<u32, AsmError> {
        let v = self.value(op, what)?;
        to_addr(v, self.loc)
    }

    fn offset(&self, e: &Expr) -> Result<i16, AsmError> {
        let v = expr::eval(e, self.loc, &self.resolve)?;
        i16::try_from(v)
            .map_err(|_| self.err(format!("memory offset {v} does not fit signed 16 bits")))
    }
}

fn kind(op: &Operand) -> &'static str {
    match op {
        Operand::Data(_) => "a data register",
        Operand::Addr(_) => "an address register",
        Operand::Imm(_) => "an immediate",
        Operand::Bare(_) => "an expression",
        Operand::Mem(_) => "a memory operand",
    }
}

fn expect_operands(
    ctx: &Ctx<'_>,
    mnemonic: &str,
    operands: &[Operand],
    n: usize,
) -> Result<(), AsmError> {
    if operands.len() != n {
        return Err(ctx.err(format!(
            "{mnemonic} expects {n} operand(s), got {}",
            operands.len()
        )));
    }
    Ok(())
}

/// Lowers one instruction statement to machine instructions.
fn lower(
    mnemonic: &str,
    ops: &[Operand],
    _addr: u32,
    loc: &Loc,
    resolve: &dyn Fn(&str) -> Option<i64>,
) -> Result<Vec<Insn>, AsmError> {
    let ctx = Ctx { loc, resolve };
    let one = |i: Insn| Ok(vec![i]);
    match mnemonic {
        "NOP" => {
            expect_operands(&ctx, mnemonic, ops, 0)?;
            one(Insn::Nop)
        }
        "HALT" => {
            let code = if ops.is_empty() {
                0
            } else {
                ctx.imm8(&ops[0], "HALT code")?
            };
            one(Insn::Halt { code })
        }
        "TRAP" => {
            expect_operands(&ctx, mnemonic, ops, 1)?;
            one(Insn::Trap {
                vector: ctx.imm8(&ops[0], "TRAP vector")?,
            })
        }
        "DBG" => {
            let tag = if ops.is_empty() {
                0
            } else {
                ctx.imm8(&ops[0], "DBG tag")?
            };
            one(Insn::Dbg { tag })
        }
        "MOVI" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::MovI {
                rd: ctx.data(&ops[0], "MOVI destination")?,
                imm: ctx.imm16_any(&ops[1], "MOVI immediate")?,
            })
        }
        "MOVHI" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::MovHi {
                rd: ctx.data(&ops[0], "MOVHI destination")?,
                imm: ctx.imm16_any(&ops[1], "MOVHI immediate")?,
            })
        }
        "MOV" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            match (&ops[0], &ops[1]) {
                (Operand::Data(rd), Operand::Data(ra)) => one(Insn::Mov { rd: *rd, ra: *ra }),
                (Operand::Data(rd), Operand::Addr(ab)) => one(Insn::MovDa { rd: *rd, ab: *ab }),
                (Operand::Addr(ad), Operand::Data(rb)) => one(Insn::MovAd { ad: *ad, rb: *rb }),
                (Operand::Addr(ad), Operand::Addr(ab)) => one(Insn::MovAa { ad: *ad, ab: *ab }),
                _ => Err(ctx.err("MOV operands must both be registers")),
            }
        }
        "MOVDA" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::MovDa {
                rd: ctx.data(&ops[0], "MOVDA destination")?,
                ab: ctx.addr_reg(&ops[1], "MOVDA source")?,
            })
        }
        "MOVAD" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::MovAd {
                ad: ctx.addr_reg(&ops[0], "MOVAD destination")?,
                rb: ctx.data(&ops[1], "MOVAD source")?,
            })
        }
        "MOVAA" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::MovAa {
                ad: ctx.addr_reg(&ops[0], "MOVAA destination")?,
                ab: ctx.addr_reg(&ops[1], "MOVAA source")?,
            })
        }
        "LEA" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::Lea {
                ad: ctx.addr_reg(&ops[0], "LEA destination")?,
                addr: ctx.target(&ops[1], "LEA address")?,
            })
        }
        "LOAD" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            match (&ops[0], &ops[1]) {
                (Operand::Data(rd), Operand::Imm(_) | Operand::Bare(_)) => {
                    let v = ctx.value(&ops[1], "LOAD value")?;
                    if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                        return Err(ctx.err(format!("LOAD value {v} does not fit 32 bits")));
                    }
                    let v = v as u32;
                    Ok(vec![
                        Insn::MovI {
                            rd: *rd,
                            imm: (v & 0xFFFF) as u16,
                        },
                        Insn::MovHi {
                            rd: *rd,
                            imm: (v >> 16) as u16,
                        },
                    ])
                }
                (Operand::Addr(ad), Operand::Imm(_) | Operand::Bare(_)) => one(Insn::Lea {
                    ad: *ad,
                    addr: ctx.target(&ops[1], "LOAD address")?,
                }),
                (Operand::Data(rd), Operand::Mem(MemRef::Based { base, offset })) => {
                    one(Insn::Ld {
                        rd: *rd,
                        ab: *base,
                        off: ctx.offset(offset)?,
                    })
                }
                (Operand::Data(rd), Operand::Mem(MemRef::Abs(e))) => one(Insn::LdAbs {
                    rd: *rd,
                    addr: to_addr(expr::eval(e, loc, &resolve)?, loc)?,
                }),
                _ => Err(ctx.err("unsupported LOAD operand combination")),
            }
        }
        "LOADB" | "LDB" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            match (&ops[0], &ops[1]) {
                (Operand::Data(rd), Operand::Mem(MemRef::Based { base, offset })) => {
                    one(Insn::LdB {
                        rd: *rd,
                        ab: *base,
                        off: ctx.offset(offset)?,
                    })
                }
                _ => Err(ctx.err(format!("{mnemonic} expects `dX, [aY+off]`"))),
            }
        }
        "LD" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            match (&ops[0], &ops[1]) {
                (Operand::Data(rd), Operand::Mem(MemRef::Based { base, offset })) => {
                    one(Insn::Ld {
                        rd: *rd,
                        ab: *base,
                        off: ctx.offset(offset)?,
                    })
                }
                _ => Err(ctx.err("LD expects `dX, [aY+off]`")),
            }
        }
        "LDABS" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            match (&ops[0], &ops[1]) {
                (Operand::Data(rd), Operand::Mem(MemRef::Abs(e))) => one(Insn::LdAbs {
                    rd: *rd,
                    addr: to_addr(expr::eval(e, loc, &resolve)?, loc)?,
                }),
                _ => Err(ctx.err("LDABS expects `dX, [address]`")),
            }
        }
        "STORE" | "ST" | "STOREB" | "STB" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            let byte = mnemonic == "STOREB" || mnemonic == "STB";
            match (&ops[0], &ops[1]) {
                (Operand::Mem(MemRef::Based { base, offset }), Operand::Data(rs)) => {
                    let off = ctx.offset(offset)?;
                    if byte {
                        one(Insn::StB {
                            ab: *base,
                            off,
                            rs: *rs,
                        })
                    } else {
                        one(Insn::St {
                            ab: *base,
                            off,
                            rs: *rs,
                        })
                    }
                }
                (Operand::Mem(MemRef::Abs(e)), Operand::Data(rs)) if !byte => one(Insn::StAbs {
                    addr: to_addr(expr::eval(e, loc, &resolve)?, loc)?,
                    rs: *rs,
                }),
                _ => Err(ctx.err(format!("{mnemonic} expects `[address], dX`"))),
            }
        }
        "STABS" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            match (&ops[0], &ops[1]) {
                (Operand::Mem(MemRef::Abs(e)), Operand::Data(rs)) => one(Insn::StAbs {
                    addr: to_addr(expr::eval(e, loc, &resolve)?, loc)?,
                    rs: *rs,
                }),
                _ => Err(ctx.err("STABS expects `[address], dX`")),
            }
        }
        "ADD" | "SUB" | "MUL" | "AND" | "OR" | "XOR" | "SHL" | "SHR" => {
            expect_operands(&ctx, mnemonic, ops, 3)?;
            let rd = ctx.data(&ops[0], "destination")?;
            let ra = ctx.data(&ops[1], "first source")?;
            match &ops[2] {
                Operand::Data(rb) => {
                    let rb = *rb;
                    one(match mnemonic {
                        "ADD" => Insn::Add { rd, ra, rb },
                        "SUB" => Insn::Sub { rd, ra, rb },
                        "MUL" => Insn::Mul { rd, ra, rb },
                        "AND" => Insn::And { rd, ra, rb },
                        "OR" => Insn::Or { rd, ra, rb },
                        "XOR" => Insn::Xor { rd, ra, rb },
                        "SHL" => Insn::Shl { rd, ra, rb },
                        _ => Insn::Shr { rd, ra, rb },
                    })
                }
                imm @ (Operand::Imm(_) | Operand::Bare(_)) => match mnemonic {
                    "ADD" => one(Insn::AddI {
                        rd,
                        ra,
                        imm: ctx.imm16_signed(imm, "ADD immediate")?,
                    }),
                    "SUB" => {
                        let v = ctx.value(imm, "SUB immediate")?;
                        let neg = -v;
                        let imm = i16::try_from(neg).map_err(|_| {
                            ctx.err(format!("SUB immediate {v} does not fit signed 16 bits"))
                        })?;
                        one(Insn::AddI { rd, ra, imm })
                    }
                    "AND" => one(Insn::AndI {
                        rd,
                        ra,
                        imm: ctx.imm16_any(imm, "AND immediate")?,
                    }),
                    "OR" => one(Insn::OrI {
                        rd,
                        ra,
                        imm: ctx.imm16_any(imm, "OR immediate")?,
                    }),
                    "XOR" => one(Insn::XorI {
                        rd,
                        ra,
                        imm: ctx.imm16_any(imm, "XOR immediate")?,
                    }),
                    "SHL" => one(Insn::ShlI {
                        rd,
                        ra,
                        sh: ctx.imm5(imm, "SHL amount")?,
                    }),
                    "SHR" => one(Insn::ShrI {
                        rd,
                        ra,
                        sh: ctx.imm5(imm, "SHR amount")?,
                    }),
                    _ => Err(ctx.err(format!("{mnemonic} has no immediate form"))),
                },
                other => Err(ctx.err(format!(
                    "{mnemonic}: expected a register or immediate, found {}",
                    kind(other)
                ))),
            }
        }
        "ADDI" => {
            expect_operands(&ctx, mnemonic, ops, 3)?;
            one(Insn::AddI {
                rd: ctx.data(&ops[0], "ADDI destination")?,
                ra: ctx.data(&ops[1], "ADDI source")?,
                imm: ctx.imm16_signed(&ops[2], "ADDI immediate")?,
            })
        }
        "ANDI" | "ORI" | "XORI" => {
            expect_operands(&ctx, mnemonic, ops, 3)?;
            let rd = ctx.data(&ops[0], "destination")?;
            let ra = ctx.data(&ops[1], "source")?;
            let imm = ctx.imm16_any(&ops[2], "immediate")?;
            one(match mnemonic {
                "ANDI" => Insn::AndI { rd, ra, imm },
                "ORI" => Insn::OrI { rd, ra, imm },
                _ => Insn::XorI { rd, ra, imm },
            })
        }
        "SHLI" | "SHRI" | "SARI" | "SAR" => {
            expect_operands(&ctx, mnemonic, ops, 3)?;
            let rd = ctx.data(&ops[0], "destination")?;
            let ra = ctx.data(&ops[1], "source")?;
            let sh = ctx.imm5(&ops[2], "shift amount")?;
            one(match mnemonic {
                "SHLI" => Insn::ShlI { rd, ra, sh },
                "SHRI" => Insn::ShrI { rd, ra, sh },
                _ => Insn::SarI { rd, ra, sh },
            })
        }
        "NOT" | "NEG" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            let rd = ctx.data(&ops[0], "destination")?;
            let ra = ctx.data(&ops[1], "source")?;
            one(if mnemonic == "NOT" {
                Insn::Not { rd, ra }
            } else {
                Insn::Neg { rd, ra }
            })
        }
        "CMP" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            let ra = ctx.data(&ops[0], "CMP first operand")?;
            match &ops[1] {
                Operand::Data(rb) => one(Insn::Cmp { ra, rb: *rb }),
                imm @ (Operand::Imm(_) | Operand::Bare(_)) => one(Insn::CmpI {
                    ra,
                    imm: ctx.imm16_signed(imm, "CMP immediate")?,
                }),
                other => Err(ctx.err(format!("CMP second operand: {}", kind(other)))),
            }
        }
        "CMPI" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::CmpI {
                ra: ctx.data(&ops[0], "CMPI operand")?,
                imm: ctx.imm16_signed(&ops[1], "CMPI immediate")?,
            })
        }
        "INSERT" => {
            expect_operands(&ctx, mnemonic, ops, 5)?;
            let rd = ctx.data(&ops[0], "INSERT destination")?;
            let ra = ctx.data(&ops[1], "INSERT source")?;
            let src = match &ops[2] {
                Operand::Data(r) => BitSrc::Reg(*r),
                imm @ (Operand::Imm(_) | Operand::Bare(_)) => {
                    let v = ctx.value(imm, "INSERT value")?;
                    if !(0..=127).contains(&v) {
                        return Err(ctx.err(format!("INSERT immediate {v} does not fit 7 bits")));
                    }
                    BitSrc::Imm(v as u8)
                }
                other => return Err(ctx.err(format!("INSERT value: {}", kind(other)))),
            };
            let pos = ctx.imm5(&ops[3], "INSERT position")?;
            let width_v = ctx.value(&ops[4], "INSERT width")?;
            if !(1..=32).contains(&width_v) {
                return Err(ctx.err(format!("INSERT width {width_v} not in 1..=32")));
            }
            one(Insn::Insert {
                rd,
                ra,
                src,
                pos,
                width: width_v as u8,
            })
        }
        "EXTRACT" => {
            expect_operands(&ctx, mnemonic, ops, 4)?;
            let rd = ctx.data(&ops[0], "EXTRACT destination")?;
            let ra = ctx.data(&ops[1], "EXTRACT source")?;
            let pos = ctx.imm5(&ops[2], "EXTRACT position")?;
            let width_v = ctx.value(&ops[3], "EXTRACT width")?;
            if !(1..=32).contains(&width_v) {
                return Err(ctx.err(format!("EXTRACT width {width_v} not in 1..=32")));
            }
            one(Insn::Extract {
                rd,
                ra,
                pos,
                width: width_v as u8,
            })
        }
        "JMP" => {
            expect_operands(&ctx, mnemonic, ops, 1)?;
            one(Insn::Jmp {
                target: ctx.target(&ops[0], "JMP target")?,
            })
        }
        "CALL" => {
            expect_operands(&ctx, mnemonic, ops, 1)?;
            match &ops[0] {
                Operand::Addr(ab) => one(Insn::CallR { ab: *ab }),
                _ => one(Insn::Call {
                    target: ctx.target(&ops[0], "CALL target")?,
                }),
            }
        }
        "RETURN" | "RET" => {
            expect_operands(&ctx, mnemonic, ops, 0)?;
            one(Insn::Ret)
        }
        "RETI" => {
            expect_operands(&ctx, mnemonic, ops, 0)?;
            one(Insn::RetI)
        }
        "PUSH" => {
            expect_operands(&ctx, mnemonic, ops, 1)?;
            match &ops[0] {
                Operand::Data(rs) => one(Insn::Push { rs: *rs }),
                Operand::Addr(ab) => one(Insn::PushA { ab: *ab }),
                other => Err(ctx.err(format!("PUSH operand: {}", kind(other)))),
            }
        }
        "POP" => {
            expect_operands(&ctx, mnemonic, ops, 1)?;
            match &ops[0] {
                Operand::Data(rd) => one(Insn::Pop { rd: *rd }),
                Operand::Addr(ad) => one(Insn::PopA { ad: *ad }),
                other => Err(ctx.err(format!("POP operand: {}", kind(other)))),
            }
        }
        "PUSHA" => {
            expect_operands(&ctx, mnemonic, ops, 1)?;
            one(Insn::PushA {
                ab: ctx.addr_reg(&ops[0], "PUSHA operand")?,
            })
        }
        "POPA" => {
            expect_operands(&ctx, mnemonic, ops, 1)?;
            one(Insn::PopA {
                ad: ctx.addr_reg(&ops[0], "POPA operand")?,
            })
        }
        "EI" => {
            expect_operands(&ctx, mnemonic, ops, 0)?;
            one(Insn::Ei)
        }
        "DI" => {
            expect_operands(&ctx, mnemonic, ops, 0)?;
            one(Insn::Di)
        }
        "ADDA" => {
            expect_operands(&ctx, mnemonic, ops, 2)?;
            one(Insn::AddA {
                ad: ctx.addr_reg(&ops[0], "ADDA register")?,
                imm: ctx.imm16_signed(&ops[1], "ADDA increment")?,
            })
        }
        jcc if jcc.len() == 3 && jcc.starts_with('J') => {
            let cond: Cond = jcc[1..]
                .parse()
                .map_err(|_| ctx.err(format!("unknown mnemonic `{jcc}`")))?;
            expect_operands(&ctx, jcc, ops, 1)?;
            one(Insn::J {
                cond,
                target: ctx.target(&ops[0], "jump target")?,
            })
        }
        other => Err(ctx.err(format!("unknown mnemonic `{other}`"))),
    }
}
