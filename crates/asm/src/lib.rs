//! # advm-asm — a macro assembler and image builder for the SC88 ISA
//!
//! The ADVM paper's abstraction layer is *made of assembler facilities*:
//! `.INCLUDE Globals.inc` pulls derivative/platform configuration into
//! every test, `.EQU` names every hardwired value, `.DEFINE` aliases
//! registers (`CallAddr .DEFINE A12`), and conditional assembly adapts the
//! environment per target. This crate implements those facilities for
//! real, as a line-oriented two-pass macro assembler:
//!
//! 1. [`preprocess`] resolves includes, constants, aliases, macros and
//!    conditionals over an in-memory [`SourceSet`];
//! 2. [`assemble_preprocessed`] sizes, resolves and encodes statements
//!    into a [`Program`];
//! 3. [`Image`] merges programs (a test unit plus the embedded-software
//!    ROM) into one loadable memory image, rejecting overlaps.
//!
//! The top-level [`assemble`] runs the full pipeline.
//!
//! ```
//! use advm_asm::{assemble, SourceSet};
//!
//! # fn main() -> Result<(), advm_asm::AsmError> {
//! let sources = SourceSet::new()
//!     .with("Globals.inc", "TEST1_TARGET_PAGE .EQU 8\nPAGE_FIELD_SIZE .EQU 5\n")
//!     .with(
//!         "test.asm",
//!         "\
//! .INCLUDE Globals.inc
//! TEST_PAGE .EQU TEST1_TARGET_PAGE
//! _main:
//!     MOVI d14, #0
//!     INSERT d14, d14, TEST_PAGE, 0, PAGE_FIELD_SIZE
//!     HALT #0
//! ",
//!     );
//! let program = assemble("test.asm", &sources)?;
//! assert_eq!(program.label("_main"), Some(0x100));
//! assert_eq!(program.equ("TEST_PAGE"), Some(8));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod diag;
mod disasm;
mod expr;
mod lexer;
mod preprocess;
mod program;
mod source;

pub use assemble::{assemble_preprocessed, ParsedUnit, DEFAULT_ORG};
pub use diag::AsmError;
pub use disasm::{disassemble_range, disassemble_word};
pub use expr::{eval as eval_expr, free_symbols, parse_all as parse_expr, BinOp, Expr, UnaryOp};
pub use lexer::{tokenize, Token};
pub use preprocess::{preprocess, LogicalLine, Preprocessed};
pub use program::{Image, LinkError, ListingEntry, Program, Segment};
pub use source::{Loc, SourceSet};

/// Assembles `entry` (resolving `.INCLUDE` against `sources`) into a
/// [`Program`].
///
/// # Errors
///
/// Returns the first preprocessing or assembly error, located at its
/// source line.
pub fn assemble(entry: &str, sources: &SourceSet) -> Result<Program, AsmError> {
    let pre = preprocess(entry, sources)?;
    assemble_preprocessed(&pre)
}

/// Assembles a single standalone source text (no includes).
///
/// # Errors
///
/// Same as [`assemble`].
///
/// ```
/// use advm_asm::assemble_str;
///
/// # fn main() -> Result<(), advm_asm::AsmError> {
/// let program = assemble_str("_main:\n    HALT #0\n")?;
/// assert_eq!(program.size_bytes(), 4);
/// # Ok(())
/// # }
/// ```
pub fn assemble_str(text: &str) -> Result<Program, AsmError> {
    let sources = SourceSet::new().with("<input>", text);
    assemble("<input>", &sources)
}
