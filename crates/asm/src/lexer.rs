//! Line-oriented lexer for SC88 assembler source.
//!
//! The assembler is line-oriented, like the industrial assemblers the
//! paper's environment was built on: one statement per line, `;` starts a
//! comment, directives begin with `.`.

use std::fmt;

use crate::diag::AsmError;
use crate::source::Loc;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or mnemonic (`_main`, `INSERT`, `d14`).
    Ident(String),
    /// A directive name including the leading dot, upper-cased (`.EQU`).
    Directive(String),
    /// An integer literal (decimal, `0x`, `0b`, `0o` or `'c'`).
    Number(i64),
    /// A string literal (without quotes).
    Str(String),
    /// A single punctuation character: `# [ ] ( ) + - * / % , : & | ^ ~ =`.
    Punct(char),
    /// The two-character shift operator `<<`.
    Shl,
    /// The two-character shift operator `>>`.
    Shr,
    /// The comparison operator `==`.
    EqEq,
    /// The comparison operator `!=`.
    NotEq,
    /// The comparison operator `<`.
    Lt,
    /// The comparison operator `>`.
    Gt,
    /// The comparison operator `<=`.
    Le,
    /// The comparison operator `>=`.
    Ge,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        matches!(self, Token::Punct(c) if *c == ch)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => f.write_str(s),
            Token::Directive(s) => f.write_str(s),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Punct(c) => write!(f, "{c}"),
            Token::Shl => f.write_str("<<"),
            Token::Shr => f.write_str(">>"),
            Token::EqEq => f.write_str("=="),
            Token::NotEq => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::Gt => f.write_str(">"),
            Token::Le => f.write_str("<="),
            Token::Ge => f.write_str(">="),
        }
    }
}

fn is_ident_start(ch: char) -> bool {
    ch.is_ascii_alphabetic() || ch == '_'
}

fn is_ident_continue(ch: char) -> bool {
    ch.is_ascii_alphanumeric() || ch == '_'
}

/// Tokenizes one source line. Comments (`;` to end of line) are dropped.
///
/// # Errors
///
/// Returns an error (pointing at `loc`) for malformed numbers, unknown
/// characters or unterminated strings.
pub fn tokenize(line: &str, loc: &Loc) -> Result<Vec<Token>, AsmError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let ch = bytes[i];
        if ch == ';' {
            break; // comment
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        if ch == '.' && i + 1 < bytes.len() && is_ident_start(bytes[i + 1]) {
            let start = i;
            i += 1;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            tokens.push(Token::Directive(text.to_ascii_uppercase()));
            continue;
        }
        if is_ident_start(ch) {
            let start = i;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            tokens.push(Token::Ident(bytes[start..i].iter().collect()));
            continue;
        }
        if ch.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (is_ident_continue(bytes[i])) {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let value = parse_number(&text)
                .ok_or_else(|| AsmError::at(loc.clone(), format!("invalid number `{text}`")))?;
            tokens.push(Token::Number(value));
            continue;
        }
        if ch == '\'' {
            // Character literal: 'c' (no escapes beyond '\n', '\t', '\\').
            let (value, consumed) = parse_char_literal(&bytes[i..]).ok_or_else(|| {
                AsmError::at(loc.clone(), "unterminated or invalid character literal")
            })?;
            tokens.push(Token::Number(value));
            i += consumed;
            continue;
        }
        if ch == '"' {
            let mut j = i + 1;
            let mut text = String::new();
            while j < bytes.len() && bytes[j] != '"' {
                text.push(bytes[j]);
                j += 1;
            }
            if j >= bytes.len() {
                return Err(AsmError::at(loc.clone(), "unterminated string literal"));
            }
            tokens.push(Token::Str(text));
            i = j + 1;
            continue;
        }
        if ch == '<' {
            match bytes.get(i + 1) {
                Some('<') => {
                    tokens.push(Token::Shl);
                    i += 2;
                }
                Some('=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            continue;
        }
        if ch == '>' {
            match bytes.get(i + 1) {
                Some('>') => {
                    tokens.push(Token::Shr);
                    i += 2;
                }
                Some('=') => {
                    tokens.push(Token::Ge);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            continue;
        }
        if ch == '=' && bytes.get(i + 1) == Some(&'=') {
            tokens.push(Token::EqEq);
            i += 2;
            continue;
        }
        if ch == '!' && bytes.get(i + 1) == Some(&'=') {
            tokens.push(Token::NotEq);
            i += 2;
            continue;
        }
        if "#[]()+-*/%,:&|^~=".contains(ch) {
            tokens.push(Token::Punct(ch));
            i += 1;
            continue;
        }
        return Err(AsmError::at(
            loc.clone(),
            format!("unexpected character `{ch}`"),
        ));
    }
    Ok(tokens)
}

fn parse_number(text: &str) -> Option<i64> {
    let lower = text.to_ascii_lowercase();
    if let Some(hex) = lower.strip_prefix("0x") {
        return i64::from_str_radix(&hex.replace('_', ""), 16).ok();
    }
    if let Some(bin) = lower.strip_prefix("0b") {
        return i64::from_str_radix(&bin.replace('_', ""), 2).ok();
    }
    if let Some(oct) = lower.strip_prefix("0o") {
        return i64::from_str_radix(&oct.replace('_', ""), 8).ok();
    }
    lower.replace('_', "").parse().ok()
}

fn parse_char_literal(chars: &[char]) -> Option<(i64, usize)> {
    // chars[0] is the opening quote.
    match chars.get(1)? {
        '\\' => {
            let value = match chars.get(2)? {
                'n' => b'\n',
                't' => b'\t',
                '0' => 0,
                '\\' => b'\\',
                '\'' => b'\'',
                _ => return None,
            };
            if *chars.get(3)? != '\'' {
                return None;
            }
            Some((i64::from(value), 4))
        }
        ch => {
            if *chars.get(2)? != '\'' {
                return None;
            }
            Some((*ch as i64, 3))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(line: &str) -> Vec<Token> {
        tokenize(line, &Loc::new("test", 1)).unwrap()
    }

    #[test]
    fn lexes_paper_insert_line() {
        // The Figure 6 instruction, verbatim.
        let toks = lex("INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE");
        assert_eq!(toks[0], Token::Ident("INSERT".into()));
        assert_eq!(toks.iter().filter(|t| t.is_punct(',')).count(), 4);
        assert_eq!(toks.last().unwrap().ident(), Some("PAGE_FIELD_SIZE"));
    }

    #[test]
    fn lexes_equ_line() {
        let toks = lex("PAGE_FIELD_SIZE .EQU 5");
        assert_eq!(
            toks,
            vec![
                Token::Ident("PAGE_FIELD_SIZE".into()),
                Token::Directive(".EQU".into()),
                Token::Number(5),
            ]
        );
    }

    #[test]
    fn directive_case_insensitive() {
        assert_eq!(lex(".include x")[0], Token::Directive(".INCLUDE".into()));
        assert_eq!(lex(".Include x")[0], Token::Directive(".INCLUDE".into()));
    }

    #[test]
    fn number_bases() {
        assert_eq!(lex("0x1F"), vec![Token::Number(31)]);
        assert_eq!(lex("0b101"), vec![Token::Number(5)]);
        assert_eq!(lex("0o17"), vec![Token::Number(15)]);
        assert_eq!(lex("42"), vec![Token::Number(42)]);
        assert_eq!(lex("1_000"), vec![Token::Number(1000)]);
    }

    #[test]
    fn char_literals() {
        assert_eq!(lex("'A'"), vec![Token::Number(65)]);
        assert_eq!(lex("'\\n'"), vec![Token::Number(10)]);
    }

    #[test]
    fn comments_dropped() {
        assert_eq!(
            lex("NOP ; this is a comment"),
            vec![Token::Ident("NOP".into())]
        );
        assert!(lex(";; full line comment").is_empty());
    }

    #[test]
    fn memory_operand_punctuation() {
        let toks = lex("LOAD d1, [a2 + 4]");
        assert!(toks.iter().any(|t| t.is_punct('[')));
        assert!(toks.iter().any(|t| t.is_punct(']')));
        assert!(toks.iter().any(|t| t.is_punct('+')));
    }

    #[test]
    fn shift_operators() {
        assert_eq!(
            lex("1 << 5"),
            vec![Token::Number(1), Token::Shl, Token::Number(5)]
        );
        assert_eq!(
            lex("8 >> 2"),
            vec![Token::Number(8), Token::Shr, Token::Number(2)]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(lex("\"hello\""), vec![Token::Str("hello".into())]);
    }

    #[test]
    fn bad_number_rejected() {
        assert!(tokenize("0xZZ", &Loc::new("t", 1)).is_err());
        assert!(tokenize("12abc", &Loc::new("t", 1)).is_err());
    }

    #[test]
    fn unknown_character_rejected() {
        let err = tokenize("NOP @", &Loc::new("t", 7)).unwrap_err();
        assert!(err.to_string().contains("t:7"));
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(tokenize("\"oops", &Loc::new("t", 1)).is_err());
    }
}
