//! Assembled programs and loadable memory images.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A contiguous block of assembled bytes at a fixed base address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    base: u32,
    bytes: Vec<u8>,
}

impl Segment {
    /// Creates a segment.
    pub fn new(base: u32, bytes: Vec<u8>) -> Self {
        Self { base, bytes }
    }

    /// First byte address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// One past the last byte address.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }
}

/// The output of assembling one translation unit: segments, the label
/// table, the `.EQU` constants and a listing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    segments: Vec<Segment>,
    labels: BTreeMap<String, u32>,
    equs: BTreeMap<String, i64>,
    listing: Vec<ListingEntry>,
}

impl Program {
    pub(crate) fn new(
        segments: Vec<Segment>,
        labels: BTreeMap<String, u32>,
        equs: BTreeMap<String, i64>,
        listing: Vec<ListingEntry>,
    ) -> Self {
        Self {
            segments,
            labels,
            equs,
            listing,
        }
    }

    /// The program's segments in assembly order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Looks up a label's address.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// All labels.
    pub fn labels(&self) -> &BTreeMap<String, u32> {
        &self.labels
    }

    /// Looks up an `.EQU` constant.
    pub fn equ(&self, name: &str) -> Option<i64> {
        self.equs.get(name).copied()
    }

    /// The listing: one entry per emitting statement.
    pub fn listing(&self) -> &[ListingEntry] {
        &self.listing
    }

    /// Total emitted size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.bytes.len()).sum()
    }

    /// Renders a human-readable listing (`address: word  source`).
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        for entry in &self.listing {
            match (entry.addr, entry.words.as_slice()) {
                (Some(addr), []) => {
                    out.push_str(&format!("{addr:05X}:            {}\n", entry.text));
                }
                (Some(addr), words) => {
                    for (i, w) in words.iter().enumerate() {
                        if i == 0 {
                            out.push_str(&format!("{addr:05X}: {w:08X}  {}\n", entry.text));
                        } else {
                            out.push_str(&format!("{:05X}: {w:08X}\n", addr + 4 * i as u32));
                        }
                    }
                }
                (None, _) => out.push_str(&format!("                  {}\n", entry.text)),
            }
        }
        out
    }
}

/// One listing line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListingEntry {
    /// Address of the statement's first emitted byte (None for pure
    /// symbol definitions).
    pub addr: Option<u32>,
    /// Emitted instruction/data words.
    pub words: Vec<u32>,
    /// Source text (reconstructed from tokens).
    pub text: String,
    /// `file:line` of the source statement.
    pub source: String,
}

/// Error returned when merging programs into an [`Image`] detects
/// overlapping bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    addr: u32,
}

impl LinkError {
    /// The first overlapping byte address.
    pub fn addr(&self) -> u32 {
        self.addr
    }
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image overlap at address {:#07x}", self.addr)
    }
}

impl std::error::Error for LinkError {}

/// A sparse, loadable memory image built from one or more programs —
/// for ADVM, typically the test unit plus the embedded-software ROM.
///
/// Stored as sorted, disjoint, maximally-merged byte runs: linking and
/// loading are the campaign build hot path, and a run per contiguous
/// span keeps both O(segments) instead of O(bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    runs: Vec<Segment>,
}

impl Image {
    /// An empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a program's segments into the image.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] if any byte would overwrite one already
    /// loaded (two programs claiming the same memory is always a build
    /// mistake in the ADVM flow).
    pub fn load_program(&mut self, program: &Program) -> Result<(), LinkError> {
        for segment in program.segments() {
            if segment.bytes().is_empty() {
                continue;
            }
            self.insert_run(segment.base(), segment.bytes())?;
        }
        Ok(())
    }

    /// Inserts one contiguous run, merging with adjacent runs so equal
    /// byte maps always have equal run decompositions.
    fn insert_run(&mut self, base: u32, bytes: &[u8]) -> Result<(), LinkError> {
        let end = base + bytes.len() as u32;
        // First run that ends after the new run's base is the only
        // overlap candidate on the left; the run after the insertion
        // point is the candidate on the right.
        let idx = self.runs.partition_point(|r| r.end() <= base);
        if let Some(run) = self.runs.get(idx) {
            if run.base() < end {
                return Err(LinkError {
                    addr: base.max(run.base()),
                });
            }
        }
        let merge_left = idx > 0 && self.runs[idx - 1].end() == base;
        let merge_right = self.runs.get(idx).is_some_and(|r| r.base() == end);
        match (merge_left, merge_right) {
            (true, true) => {
                let right = self.runs.remove(idx);
                let left = &mut self.runs[idx - 1];
                left.bytes.extend_from_slice(bytes);
                left.bytes.extend_from_slice(right.bytes());
            }
            (true, false) => self.runs[idx - 1].bytes.extend_from_slice(bytes),
            (false, true) => {
                let run = &mut self.runs[idx];
                run.base = base;
                run.bytes.splice(0..0, bytes.iter().copied());
            }
            (false, false) => self.runs.insert(idx, Segment::new(base, bytes.to_vec())),
        }
        Ok(())
    }

    /// The run holding `addr`, if any.
    fn run_at(&self, addr: u32) -> Option<&Segment> {
        let idx = self.runs.partition_point(|r| r.end() <= addr);
        self.runs.get(idx).filter(|r| r.base() <= addr)
    }

    /// Reads one byte (0 where nothing was loaded).
    pub fn byte(&self, addr: u32) -> u8 {
        match self.run_at(addr) {
            Some(run) => run.bytes()[(addr - run.base()) as usize],
            None => 0,
        }
    }

    /// Reads a little-endian word.
    pub fn word(&self, addr: u32) -> u32 {
        if let Some(run) = self.run_at(addr) {
            let off = (addr - run.base()) as usize;
            if let Some(b) = run.bytes().get(off..off + 4) {
                return u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            }
        }
        u32::from_le_bytes([
            self.byte(addr),
            self.byte(addr + 1),
            self.byte(addr + 2),
            self.byte(addr + 3),
        ])
    }

    /// Iterates over loaded bytes in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.runs.iter().flat_map(|run| {
            run.bytes()
                .iter()
                .enumerate()
                .map(move |(i, b)| (run.base() + i as u32, *b))
        })
    }

    /// Iterates over the contiguous byte runs in address order.
    pub fn runs(&self) -> impl Iterator<Item = (u32, &[u8])> + '_ {
        self.runs.iter().map(|run| (run.base(), run.bytes()))
    }

    /// Number of loaded bytes.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|r| r.bytes().len()).sum()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(base: u32, bytes: Vec<u8>) -> Program {
        Program::new(
            vec![Segment::new(base, bytes)],
            BTreeMap::new(),
            BTreeMap::new(),
            Vec::new(),
        )
    }

    #[test]
    fn image_loads_and_reads_words() {
        let mut image = Image::new();
        image
            .load_program(&prog(0x100, vec![0x78, 0x56, 0x34, 0x12]))
            .unwrap();
        assert_eq!(image.word(0x100), 0x1234_5678);
        assert_eq!(image.byte(0x100), 0x78);
        assert_eq!(image.word(0x200), 0, "unloaded memory reads zero");
        assert_eq!(image.len(), 4);
    }

    #[test]
    fn overlap_detected() {
        let mut image = Image::new();
        image.load_program(&prog(0x100, vec![1, 2, 3, 4])).unwrap();
        let err = image.load_program(&prog(0x102, vec![9])).unwrap_err();
        assert_eq!(err.addr(), 0x102);
    }

    #[test]
    fn disjoint_programs_merge() {
        let mut image = Image::new();
        image.load_program(&prog(0x100, vec![1])).unwrap();
        image.load_program(&prog(0x3_0000, vec![2])).unwrap();
        assert_eq!(image.byte(0x100), 1);
        assert_eq!(image.byte(0x3_0000), 2);
    }

    #[test]
    fn segment_end() {
        let s = Segment::new(0x10, vec![0; 8]);
        assert_eq!(s.end(), 0x18);
    }
}
