//! The assembler preprocessor.
//!
//! This is the machinery the ADVM abstraction layer rides on:
//!
//! * `.INCLUDE Globals.inc` — pulls the abstraction layer into a test,
//! * `NAME .EQU expr` — assembly-time constants, evaluated eagerly so that
//!   conditional assembly can branch on them,
//! * `.DEFINE NAME tokens` — textual aliases (the paper's
//!   `.DEFINE CallAddr A12`),
//! * `.MACRO` / `.ENDM` — parameterised code templates for base functions,
//! * `.IF expr` / `.IFDEF` / `.IFNDEF` / `.ELSE` / `.ENDIF` — the
//!   mechanism by which one test adapts to derivative and platform
//!   (`.IF WDT_DISABLE == 0` style control comes from globals values),
//! * `.ERROR "msg"` — guard rails inside the abstraction layer.
//!
//! Identifiers beginning with `LOCAL_` inside a macro body are made unique
//! per expansion, so macros can define labels safely.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use crate::diag::AsmError;
use crate::expr;
use crate::lexer::{tokenize, Token};
use crate::source::{Loc, SourceSet};

/// Maximum `.INCLUDE` nesting depth.
const MAX_INCLUDE_DEPTH: usize = 32;
/// Maximum macro expansion nesting depth.
const MAX_MACRO_DEPTH: usize = 64;

/// One classified line of a tokenized source file (see [`tokenized`]).
enum CachedLine {
    /// Nothing but whitespace/comment.
    Empty,
    /// Text-level `.INCLUDE` line — handled from the raw text.
    Include,
    /// Tokens, exactly as `tokenize` would produce them.
    Tokens(Vec<Token>),
    /// The line does not lex; re-tokenize on demand for a located error.
    Bad,
}

struct TokenizedFile {
    lines: Vec<CachedLine>,
}

/// Upper bound on cached files; the map is cleared when it fills so a
/// pathological stream of unique sources cannot grow memory unboundedly.
const TOKEN_CACHE_CAP: usize = 512;

type TokenCache = HashMap<u64, Vec<(String, Arc<TokenizedFile>)>>;

fn token_cache() -> &'static Mutex<TokenCache> {
    static CACHE: OnceLock<Mutex<TokenCache>> = OnceLock::new();
    CACHE.get_or_init(Mutex::default)
}

/// Matches the text-level `.INCLUDE` detection in `process_file`
/// (case-insensitive prefix of the trimmed line).
fn is_include_line(raw: &str) -> bool {
    raw.trim()
        .as_bytes()
        .get(..8)
        .is_some_and(|p| p.eq_ignore_ascii_case(b".INCLUDE"))
}

fn tokenize_file(text: &str) -> TokenizedFile {
    let probe = Loc::new("<cache>", 0);
    let lines = text
        .lines()
        .map(|raw| {
            if is_include_line(raw) {
                return CachedLine::Include;
            }
            match tokenize(raw, &probe) {
                Ok(t) if t.is_empty() => CachedLine::Empty,
                Ok(t) => CachedLine::Tokens(t),
                Err(_) => CachedLine::Bad,
            }
        })
        .collect();
    TokenizedFile { lines }
}

/// Returns the tokenized form of `text`, caching by content so the files
/// shared across every campaign build unit (vector table, trap handlers,
/// base functions) are lexed once per process instead of once per unit.
fn tokenized(text: &str) -> Arc<TokenizedFile> {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    text.hash(&mut hasher);
    let key = hasher.finish();
    let mut cache = token_cache().lock().expect("token cache lock");
    if let Some(bucket) = cache.get(&key) {
        if let Some((_, file)) = bucket.iter().find(|(content, _)| content == text) {
            return Arc::clone(file);
        }
    }
    let file = Arc::new(tokenize_file(text));
    if cache.len() >= TOKEN_CACHE_CAP {
        cache.clear();
    }
    cache
        .entry(key)
        .or_default()
        .push((text.to_owned(), Arc::clone(&file)));
    file
}

/// One preprocessed logical line, ready for the assembler proper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalLine {
    /// The line's tokens (aliases substituted, macros expanded).
    pub tokens: Vec<Token>,
    /// Where the line came from (macro-expanded lines keep the body's
    /// location).
    pub loc: Loc,
}

/// The preprocessor's result.
#[derive(Debug, Clone, Default)]
pub struct Preprocessed {
    /// Assembler-visible lines in order.
    pub lines: Vec<LogicalLine>,
    /// `.EQU` constants in definition order.
    pub equs: Vec<(String, i64)>,
    /// Files pulled in by `.INCLUDE`, in first-include order (the
    /// violation checker in the methodology crate inspects this).
    pub includes: Vec<String>,
}

impl Preprocessed {
    /// Looks up an `.EQU` constant.
    pub fn equ(&self, name: &str) -> Option<i64> {
        self.equs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

struct Macro {
    params: Vec<String>,
    body: Vec<(Vec<Token>, Loc)>,
}

struct CondFrame {
    /// Whether the current branch emits lines.
    active: bool,
    /// Whether any branch of this conditional has been taken.
    taken: bool,
    /// Whether `.ELSE` has been seen.
    seen_else: bool,
}

struct Preprocessor<'a> {
    sources: &'a SourceSet,
    out: Preprocessed,
    equs: HashMap<String, i64>,
    aliases: HashMap<String, Vec<Token>>,
    macros: HashMap<String, Macro>,
    conds: Vec<CondFrame>,
    include_stack: Vec<String>,
    completed_includes: Vec<String>,
    expansions: u64,
}

/// Runs the preprocessor over `entry` (and everything it includes).
///
/// # Errors
///
/// Returns the first error encountered: missing include, malformed
/// directive, unbalanced conditionals, duplicate `.EQU`, macro problems or
/// a triggered `.ERROR`.
pub fn preprocess(entry: &str, sources: &SourceSet) -> Result<Preprocessed, AsmError> {
    let mut pp = Preprocessor {
        sources,
        out: Preprocessed::default(),
        equs: HashMap::new(),
        aliases: HashMap::new(),
        macros: HashMap::new(),
        conds: Vec::new(),
        include_stack: Vec::new(),
        completed_includes: Vec::new(),
        expansions: 0,
    };
    pp.process_file(entry, None)?;
    if let Some(_frame) = pp.conds.pop() {
        return Err(AsmError::general(format!(
            "unterminated conditional at end of `{entry}` (missing .ENDIF)"
        )));
    }
    Ok(pp.out)
}

impl Preprocessor<'_> {
    fn active(&self) -> bool {
        self.conds.iter().all(|c| c.active)
    }

    fn process_file(&mut self, name: &str, from: Option<&Loc>) -> Result<(), AsmError> {
        // Include-once semantics: a file that was fully processed earlier
        // is skipped, so `Globals.inc` can be included both by the unit
        // prologue and by each test (as the paper's listings do).
        if self.completed_includes.iter().any(|f| f == name) {
            if from.is_some() && self.active() {
                self.out.includes.push(name.to_owned());
            }
            return Ok(());
        }
        if self.include_stack.iter().any(|f| f == name) {
            let loc = from.cloned().unwrap_or_else(|| Loc::new(name, 0));
            return Err(AsmError::at(
                loc,
                format!("include cycle: `{name}` is already being processed"),
            ));
        }
        if self.include_stack.len() >= MAX_INCLUDE_DEPTH {
            let loc = from.cloned().unwrap_or_else(|| Loc::new(name, 0));
            return Err(AsmError::at(loc, "include depth limit exceeded"));
        }
        // Copy the reference so borrowed lines outlive `&mut self` calls.
        let sources = self.sources;
        let text = sources.get(name).ok_or_else(|| match from {
            Some(loc) => AsmError::at(loc.clone(), format!("include file `{name}` not found")),
            None => AsmError::general(format!("entry file `{name}` not found")),
        })?;
        // Track every include (even repeats) for environment analysis.
        if from.is_some() && self.active() {
            self.out.includes.push(name.to_owned());
        }
        self.include_stack.push(name.to_owned());
        let cached = tokenized(text);
        let lines: Vec<&str> = text.lines().collect();
        // One shared file-name allocation; per-line `Loc`s bump it.
        let file: std::sync::Arc<str> = std::sync::Arc::from(name);
        let mut i = 0usize;
        while i < lines.len() {
            let loc = Loc::new(file.clone(), (i + 1) as u32);
            let raw = lines[i];
            let line = &cached.lines[i];
            i += 1;

            let tokens = match line {
                // `.INCLUDE path` is handled at text level: bare paths
                // like `Globals.inc` would not survive tokenization.
                CachedLine::Include => {
                    if !self.active() {
                        continue;
                    }
                    let path = raw.trim()[".INCLUDE".len()..].trim();
                    let path = path.split(';').next().unwrap_or("").trim();
                    let path = path.trim_matches('"').trim();
                    if path.is_empty() {
                        return Err(AsmError::at(loc, ".INCLUDE requires a file name"));
                    }
                    self.process_file(path, Some(&loc))?;
                    continue;
                }
                CachedLine::Empty => continue,
                // Inside an inactive conditional branch, unlexable lines
                // are skipped: they may use another platform's syntax.
                CachedLine::Bad => {
                    if self.active() {
                        return Err(
                            tokenize(raw, &loc).expect_err("line classified Bad fails to lex")
                        );
                    }
                    continue;
                }
                CachedLine::Tokens(t) => t.clone(),
            };

            // Conditional directives are processed even when inactive so
            // nesting stays balanced.
            if let Some(Token::Directive(d)) = tokens.first() {
                match d.as_str() {
                    ".IF" | ".IFDEF" | ".IFNDEF" => {
                        let parent_active = self.active();
                        let cond = if parent_active {
                            self.eval_condition(d, &tokens[1..], &loc)?
                        } else {
                            false
                        };
                        self.conds.push(CondFrame {
                            active: parent_active && cond,
                            taken: cond,
                            seen_else: false,
                        });
                        continue;
                    }
                    ".ELSE" => {
                        let parent_active = self.conds.iter().rev().skip(1).all(|c| c.active);
                        let frame = self.conds.last_mut().ok_or_else(|| {
                            AsmError::at(loc.clone(), ".ELSE without matching .IF")
                        })?;
                        if frame.seen_else {
                            return Err(AsmError::at(loc, "duplicate .ELSE"));
                        }
                        frame.seen_else = true;
                        frame.active = parent_active && !frame.taken;
                        frame.taken = true;
                        continue;
                    }
                    ".ENDIF" => {
                        self.conds.pop().ok_or_else(|| {
                            AsmError::at(loc.clone(), ".ENDIF without matching .IF")
                        })?;
                        continue;
                    }
                    _ => {}
                }
            }

            if !self.active() {
                continue;
            }

            // Macro definition.
            if matches!(tokens.first(), Some(Token::Directive(d)) if d == ".MACRO") {
                let (name, params) = parse_macro_header(&tokens[1..], &loc)?;
                let mut body = Vec::new();
                let mut closed = false;
                while i < lines.len() {
                    let body_loc = Loc::new(file.clone(), (i + 1) as u32);
                    let body_tokens = match &cached.lines[i] {
                        CachedLine::Empty => Vec::new(),
                        CachedLine::Tokens(t) => t.clone(),
                        // `.INCLUDE`-shaped and unlexable body lines go
                        // through the lexer as before (for the body
                        // tokens or the located error, respectively).
                        _ => tokenize(lines[i], &body_loc)?,
                    };
                    i += 1;
                    if matches!(body_tokens.first(), Some(Token::Directive(d)) if d == ".ENDM") {
                        closed = true;
                        break;
                    }
                    if matches!(body_tokens.first(), Some(Token::Directive(d)) if d == ".MACRO") {
                        return Err(AsmError::at(
                            body_loc,
                            "nested .MACRO definitions are not supported",
                        ));
                    }
                    if !body_tokens.is_empty() {
                        body.push((body_tokens, body_loc));
                    }
                }
                if !closed {
                    return Err(AsmError::at(loc, format!("macro `{name}` has no .ENDM")));
                }
                if self
                    .macros
                    .insert(name.clone(), Macro { params, body })
                    .is_some()
                {
                    return Err(AsmError::at(loc, format!("macro `{name}` redefined")));
                }
                continue;
            }

            self.process_line(tokens, loc, 0)?;
        }
        self.include_stack.pop();
        self.completed_includes.push(name.to_owned());
        Ok(())
    }

    /// Handles one active logical line: alias substitution, `.EQU`,
    /// `.DEFINE`, `.ERROR`, macro expansion, or pass-through.
    fn process_line(&mut self, tokens: Vec<Token>, loc: Loc, depth: usize) -> Result<(), AsmError> {
        if depth > MAX_MACRO_DEPTH {
            return Err(AsmError::at(loc, "macro expansion depth limit exceeded"));
        }

        // `.DEFINE NAME tokens` — recorded before substitution so the name
        // itself is not rewritten.
        if matches!(tokens.first(), Some(Token::Directive(d)) if d == ".DEFINE") {
            let name = match tokens.get(1) {
                Some(Token::Ident(n)) => n.clone(),
                _ => return Err(AsmError::at(loc, ".DEFINE requires a name")),
            };
            if tokens.len() < 3 {
                return Err(AsmError::at(
                    loc,
                    format!(".DEFINE {name} requires a replacement"),
                ));
            }
            if self.equs.contains_key(&name) {
                return Err(AsmError::at(
                    loc,
                    format!("`{name}` is already defined as an .EQU constant"),
                ));
            }
            let replacement: Vec<Token> = tokens[2..].to_vec();
            self.aliases.insert(name, replacement);
            return Ok(());
        }

        // `NAME .EQU expr` — the name is taken from the *raw* tokens so a
        // `.DEFINE` alias cannot silently rewrite it; only the expression
        // side gets alias substitution.
        if tokens.len() >= 2 && matches!(&tokens[1], Token::Directive(d) if d == ".EQU") {
            let name = match &tokens[0] {
                Token::Ident(n) => n.clone(),
                other => {
                    return Err(AsmError::at(
                        loc,
                        format!(".EQU name expected, found `{other}`"),
                    ))
                }
            };
            let expr_tokens = self.substitute_aliases(tokens[2..].to_vec());
            // Generated abstraction layers are almost entirely
            // `NAME .EQU <number>` lines; skip expression parsing then.
            let value = match expr_tokens.as_slice() {
                [Token::Number(n)] => *n,
                _ => self.eval_expr(&expr_tokens, &loc)?,
            };
            if self.aliases.contains_key(&name) {
                return Err(AsmError::at(
                    loc,
                    format!("`{name}` is already defined as a .DEFINE alias"),
                ));
            }
            if let Some(old) = self.equs.insert(name.clone(), value) {
                return Err(AsmError::at(
                    loc,
                    format!("symbol `{name}` redefined by .EQU (was {old}, now {value})"),
                ));
            }
            self.out.equs.push((name, value));
            return Ok(());
        }

        let tokens = self.substitute_aliases(tokens);

        // `.ERROR "message"`.
        if matches!(tokens.first(), Some(Token::Directive(d)) if d == ".ERROR") {
            let message = match tokens.get(1) {
                Some(Token::Str(s)) => s.clone(),
                _ => "(no message)".to_owned(),
            };
            return Err(AsmError::at(loc, format!(".ERROR: {message}")));
        }

        // Macro invocation: `NAME args` or `label: NAME args`.
        let (label_prefix, rest) = split_label(&tokens);
        if let Some(Token::Ident(head)) = rest.first() {
            if self.macros.contains_key(head) {
                if let Some(label) = label_prefix {
                    self.out.lines.push(LogicalLine {
                        tokens: vec![Token::Ident(label.to_owned()), Token::Punct(':')],
                        loc: loc.clone(),
                    });
                }
                let head = head.clone();
                let args = split_args(&rest[1..]);
                self.expand_macro(&head, args, &loc, depth)?;
                return Ok(());
            }
        }

        self.out.lines.push(LogicalLine { tokens, loc });
        Ok(())
    }

    fn expand_macro(
        &mut self,
        name: &str,
        args: Vec<Vec<Token>>,
        call_loc: &Loc,
        depth: usize,
    ) -> Result<(), AsmError> {
        self.expansions += 1;
        let uniq = self.expansions;
        let mac = &self.macros[name];
        if args.len() != mac.params.len() {
            return Err(AsmError::at(
                call_loc.clone(),
                format!(
                    "macro `{name}` expects {} argument(s), got {}",
                    mac.params.len(),
                    args.len()
                ),
            ));
        }
        let bindings: HashMap<&str, &Vec<Token>> = mac
            .params
            .iter()
            .map(String::as_str)
            .zip(args.iter())
            .collect();
        let body: Vec<(Vec<Token>, Loc)> = mac
            .body
            .iter()
            .map(|(tokens, loc)| {
                let mut out = Vec::with_capacity(tokens.len());
                for t in tokens {
                    match t {
                        Token::Ident(id) if bindings.contains_key(id.as_str()) => {
                            out.extend(bindings[id.as_str()].iter().cloned());
                        }
                        Token::Ident(id) if id.starts_with("LOCAL_") => {
                            out.push(Token::Ident(format!("{id}__{uniq}")));
                        }
                        other => out.push(other.clone()),
                    }
                }
                (out, loc.clone())
            })
            .collect();
        for (tokens, loc) in body {
            self.process_line(tokens, loc, depth + 1)?;
        }
        Ok(())
    }

    fn substitute_aliases(&self, tokens: Vec<Token>) -> Vec<Token> {
        // Most lines reference no alias; skip the rebuild entirely then.
        if self.aliases.is_empty()
            || !tokens
                .iter()
                .any(|t| matches!(t, Token::Ident(id) if self.aliases.contains_key(id)))
        {
            return tokens;
        }
        let mut out = Vec::with_capacity(tokens.len());
        for t in tokens {
            match &t {
                Token::Ident(id) => match self.aliases.get(id) {
                    Some(replacement) => out.extend(replacement.iter().cloned()),
                    None => out.push(t),
                },
                _ => out.push(t),
            }
        }
        out
    }

    fn eval_expr(&self, tokens: &[Token], loc: &Loc) -> Result<i64, AsmError> {
        let expr = expr::parse_all(tokens, loc)?;
        expr::eval(&expr, loc, &|name| self.equs.get(name).copied())
    }

    fn eval_condition(
        &self,
        directive: &str,
        tokens: &[Token],
        loc: &Loc,
    ) -> Result<bool, AsmError> {
        match directive {
            ".IFDEF" | ".IFNDEF" => {
                let name = match tokens.first() {
                    Some(Token::Ident(n)) => n,
                    _ => {
                        return Err(AsmError::at(
                            loc.clone(),
                            format!("{directive} requires a symbol name"),
                        ))
                    }
                };
                let defined = self.equs.contains_key(name) || self.aliases.contains_key(name);
                Ok(if directive == ".IFDEF" {
                    defined
                } else {
                    !defined
                })
            }
            _ => Ok(self.eval_expr(tokens, loc)? != 0),
        }
    }
}

fn parse_macro_header(tokens: &[Token], loc: &Loc) -> Result<(String, Vec<String>), AsmError> {
    let name = match tokens.first() {
        Some(Token::Ident(n)) => n.clone(),
        _ => return Err(AsmError::at(loc.clone(), ".MACRO requires a name")),
    };
    let mut params = Vec::new();
    let mut rest = &tokens[1..];
    while !rest.is_empty() {
        match &rest[0] {
            Token::Ident(p) => params.push(p.clone()),
            other => {
                return Err(AsmError::at(
                    loc.clone(),
                    format!("macro parameter name expected, found `{other}`"),
                ))
            }
        }
        rest = &rest[1..];
        if let Some(first) = rest.first() {
            if first.is_punct(',') {
                rest = &rest[1..];
                continue;
            }
            return Err(AsmError::at(
                loc.clone(),
                "expected `,` between macro parameters",
            ));
        }
    }
    Ok((name, params))
}

/// Splits `label: rest` off a token line, if present.
fn split_label(tokens: &[Token]) -> (Option<&str>, &[Token]) {
    if tokens.len() >= 2 {
        if let (Token::Ident(name), true) = (&tokens[0], tokens[1].is_punct(':')) {
            return (Some(name), &tokens[2..]);
        }
    }
    (None, tokens)
}

/// Splits macro arguments at top-level commas (bracket/paren aware).
fn split_args(tokens: &[Token]) -> Vec<Vec<Token>> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut args = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        match t {
            Token::Punct('[') | Token::Punct('(') => {
                depth += 1;
                current.push(t.clone());
            }
            Token::Punct(']') | Token::Punct(')') => {
                depth -= 1;
                current.push(t.clone());
            }
            Token::Punct(',') if depth == 0 => {
                args.push(std::mem::take(&mut current));
            }
            _ => current.push(t.clone()),
        }
    }
    args.push(current);
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(entry: &str, files: &[(&str, &str)]) -> Result<Preprocessed, AsmError> {
        let sources: SourceSet = files.iter().copied().collect();
        preprocess(entry, &sources)
    }

    fn line_texts(pre: &Preprocessed) -> Vec<String> {
        pre.lines
            .iter()
            .map(|l| {
                l.tokens
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }

    #[test]
    fn include_pulls_globals() {
        let pre = run(
            "test.asm",
            &[
                (
                    "test.asm",
                    ".INCLUDE Globals.inc\nTEST_PAGE .EQU TEST1_TARGET_PAGE\n",
                ),
                ("Globals.inc", "TEST1_TARGET_PAGE .EQU 8\n"),
            ],
        )
        .unwrap();
        assert_eq!(pre.equ("TEST_PAGE"), Some(8));
        assert_eq!(pre.includes, vec!["Globals.inc".to_owned()]);
    }

    #[test]
    fn quoted_include_paths_work() {
        let pre = run(
            "t.asm",
            &[("t.asm", ".INCLUDE \"g.inc\"\n"), ("g.inc", "A .EQU 1\n")],
        )
        .unwrap();
        assert_eq!(pre.equ("A"), Some(1));
    }

    #[test]
    fn missing_include_is_located() {
        let err = run("t.asm", &[("t.asm", "\n.INCLUDE nope.inc\n")]).unwrap_err();
        assert_eq!(err.loc().unwrap().line, 2);
        assert!(err.to_string().contains("nope.inc"));
    }

    #[test]
    fn include_cycle_detected() {
        let err = run(
            "a.inc",
            &[("a.inc", ".INCLUDE b.inc\n"), ("b.inc", ".INCLUDE a.inc\n")],
        )
        .unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn repeated_include_is_skipped() {
        // Include-once: both the unit prologue and the test include
        // Globals.inc; the second include must not redefine the EQUs.
        let pre = run(
            "unit.asm",
            &[
                ("unit.asm", ".INCLUDE g.inc\n.INCLUDE test.asm\n"),
                ("test.asm", ".INCLUDE g.inc\nNOP\n"),
                ("g.inc", "A .EQU 1\n"),
            ],
        )
        .unwrap();
        assert_eq!(pre.equ("A"), Some(1));
        assert_eq!(line_texts(&pre), vec!["NOP"]);
        // Both include events are still recorded for environment analysis.
        assert_eq!(
            pre.includes,
            vec![
                "g.inc".to_owned(),
                "test.asm".to_owned(),
                "g.inc".to_owned()
            ]
        );
    }

    #[test]
    fn equ_chain_evaluates_eagerly() {
        let pre = run(
            "t.asm",
            &[("t.asm", "A .EQU 4\nB .EQU A * 2\nMASK .EQU 1 << B\n")],
        )
        .unwrap();
        assert_eq!(pre.equ("MASK"), Some(256));
    }

    #[test]
    fn equ_redefinition_rejected() {
        let err = run("t.asm", &[("t.asm", "A .EQU 1\nA .EQU 2\n")]).unwrap_err();
        assert!(err.to_string().contains("redefined"));
    }

    #[test]
    fn define_alias_substitutes() {
        // The paper's `.DEFINE CallAddr A12` idiom.
        let pre = run(
            "t.asm",
            &[("t.asm", ".DEFINE CallAddr a12\nLOAD CallAddr, TARGET\n")],
        )
        .unwrap();
        assert_eq!(line_texts(&pre), vec!["LOAD a12 , TARGET"]);
    }

    #[test]
    fn define_and_equ_namespaces_collide_loudly() {
        assert!(run("t.asm", &[("t.asm", "A .EQU 1\n.DEFINE A d0\n")]).is_err());
        assert!(run("t.asm", &[("t.asm", ".DEFINE A d0\nA .EQU 1\n")]).is_err());
    }

    #[test]
    fn conditional_if_else() {
        let pre = run(
            "t.asm",
            &[(
                "t.asm",
                "FLAG .EQU 1\n.IF FLAG\nNOP\n.ELSE\nHALT #1\n.ENDIF\n",
            )],
        )
        .unwrap();
        assert_eq!(line_texts(&pre), vec!["NOP"]);
    }

    #[test]
    fn conditional_else_branch() {
        let pre = run(
            "t.asm",
            &[(
                "t.asm",
                "FLAG .EQU 0\n.IF FLAG\nNOP\n.ELSE\nHALT #1\n.ENDIF\n",
            )],
        )
        .unwrap();
        assert_eq!(line_texts(&pre), vec!["HALT # 1"]);
    }

    #[test]
    fn nested_conditionals() {
        let src = "\
A .EQU 1
B .EQU 0
.IF A
.IF B
NOP
.ELSE
HALT #2
.ENDIF
.ELSE
NOP
NOP
.ENDIF
";
        let pre = run("t.asm", &[("t.asm", src)]).unwrap();
        assert_eq!(line_texts(&pre), vec!["HALT # 2"]);
    }

    #[test]
    fn ifdef_checks_definition() {
        let pre = run(
            "t.asm",
            &[(
                "t.asm",
                "A .EQU 0\n.IFDEF A\nNOP\n.ENDIF\n.IFNDEF B\nHALT #0\n.ENDIF\n",
            )],
        )
        .unwrap();
        // `.IFDEF A` is true even though A == 0.
        assert_eq!(line_texts(&pre), vec!["NOP", "HALT # 0"]);
    }

    #[test]
    fn unbalanced_conditional_rejected() {
        assert!(run("t.asm", &[("t.asm", ".IF 1\nNOP\n")]).is_err());
        assert!(run("t.asm", &[("t.asm", ".ENDIF\n")]).is_err());
        assert!(run("t.asm", &[("t.asm", ".ELSE\n")]).is_err());
    }

    #[test]
    fn inactive_branch_tolerates_unlexable_lines() {
        let pre = run(
            "t.asm",
            &[("t.asm", ".IF 0\n@@@ not ours @@@\n.ENDIF\nNOP\n")],
        )
        .unwrap();
        assert_eq!(line_texts(&pre), vec!["NOP"]);
    }

    #[test]
    fn macro_expansion_with_args() {
        let src = "\
.MACRO WRITE_REG addr, value
LOAD d15, value
STORE [addr], d15
.ENDM
WRITE_REG 0x100, #7
";
        let pre = run("t.asm", &[("t.asm", src)]).unwrap();
        assert_eq!(
            line_texts(&pre),
            vec!["LOAD d15 , # 7", "STORE [ 256 ] , d15"]
        );
    }

    #[test]
    fn macro_local_labels_are_unique() {
        let src = "\
.MACRO SPIN n
LOCAL_loop:
ADDI d0, d0, #-1
JNE LOCAL_loop
.ENDM
SPIN 1
SPIN 2
";
        let pre = run("t.asm", &[("t.asm", src)]).unwrap();
        let texts = line_texts(&pre);
        let labels: Vec<&String> = texts.iter().filter(|t| t.contains(':')).collect();
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1], "expansions must not share labels");
    }

    #[test]
    fn macro_argument_count_checked() {
        let src = ".MACRO M a, b\nNOP\n.ENDM\nM 1\n";
        let err = run("t.asm", &[("t.asm", src)]).unwrap_err();
        assert!(err.to_string().contains("expects 2 argument(s), got 1"));
    }

    #[test]
    fn macro_invocation_after_label() {
        let src = ".MACRO M\nNOP\n.ENDM\nstart: M\n";
        let pre = run("t.asm", &[("t.asm", src)]).unwrap();
        assert_eq!(line_texts(&pre), vec!["start :", "NOP"]);
    }

    #[test]
    fn nested_macro_invocation() {
        let src = "\
.MACRO INNER x
LOAD d0, x
.ENDM
.MACRO OUTER y
INNER y
.ENDM
OUTER #3
";
        let pre = run("t.asm", &[("t.asm", src)]).unwrap();
        assert_eq!(line_texts(&pre), vec!["LOAD d0 , # 3"]);
    }

    #[test]
    fn error_directive_fires() {
        let err = run(
            "t.asm",
            &[(
                "t.asm",
                ".IF 1\n.ERROR \"unsupported derivative\"\n.ENDIF\n",
            )],
        )
        .unwrap_err();
        assert!(err.to_string().contains("unsupported derivative"));
    }

    #[test]
    fn error_directive_skipped_when_inactive() {
        assert!(run(
            "t.asm",
            &[("t.asm", ".IF 0\n.ERROR \"nope\"\n.ENDIF\nNOP\n")]
        )
        .is_ok());
    }

    #[test]
    fn macro_args_with_brackets() {
        let src = "\
.MACRO LDW rd, mem
LOAD rd, mem
.ENDM
LDW d1, [a2 + 4]
";
        let pre = run("t.asm", &[("t.asm", src)]).unwrap();
        assert_eq!(line_texts(&pre), vec!["LOAD d1 , [ a2 + 4 ]"]);
    }
}
