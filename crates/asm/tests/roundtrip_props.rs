//! Property test: the canonical display syntax of every instruction
//! re-assembles to the identical encoding.
//!
//! `Insn` → `Display` → assembler → bytes → `decode` must be the
//! identity (for single-word instructions; `LOAD`-style pseudos are the
//! assembler's own sugar and are covered by its unit tests).

use advm_asm::assemble_str;
use advm_isa::{decode, AddrReg, BitSrc, Cond, DataReg, Insn};
use proptest::prelude::*;

fn arb_data_reg() -> impl Strategy<Value = DataReg> {
    (0u8..16).prop_map(|i| DataReg::from_index(i).expect("in range"))
}

fn arb_addr_reg() -> impl Strategy<Value = AddrReg> {
    (0u8..16).prop_map(|i| AddrReg::from_index(i).expect("in range"))
}

fn arb_target() -> impl Strategy<Value = u32> {
    (0u32..(1 << 18)).prop_map(|w| w << 2)
}

fn arb_bitfield() -> impl Strategy<Value = (u8, u8)> {
    (0u8..32).prop_flat_map(|pos| (Just(pos), 1u8..=(32 - pos)))
}

/// Instructions whose display form is directly assemblable.
fn arb_displayable_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        any::<u8>().prop_map(|code| Insn::Halt { code }),
        (0u8..32).prop_map(|vector| Insn::Trap { vector }),
        any::<u8>().prop_map(|tag| Insn::Dbg { tag }),
        (arb_data_reg(), any::<u16>()).prop_map(|(rd, imm)| Insn::MovI { rd, imm }),
        (arb_data_reg(), any::<u16>()).prop_map(|(rd, imm)| Insn::MovHi { rd, imm }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Mov { rd, ra }),
        (arb_data_reg(), arb_addr_reg()).prop_map(|(rd, ab)| Insn::MovDa { rd, ab }),
        (arb_addr_reg(), arb_data_reg()).prop_map(|(ad, rb)| Insn::MovAd { ad, rb }),
        (arb_addr_reg(), arb_addr_reg()).prop_map(|(ad, ab)| Insn::MovAa { ad, ab }),
        (arb_addr_reg(), 0u32..(1 << 20)).prop_map(|(ad, addr)| Insn::Lea { ad, addr }),
        (arb_data_reg(), arb_addr_reg(), any::<i16>()).prop_map(|(rd, ab, off)| Insn::Ld {
            rd,
            ab,
            off
        }),
        (arb_data_reg(), arb_addr_reg(), any::<i16>()).prop_map(|(rd, ab, off)| Insn::LdB {
            rd,
            ab,
            off
        }),
        (arb_addr_reg(), any::<i16>(), arb_data_reg()).prop_map(|(ab, off, rs)| Insn::St {
            ab,
            off,
            rs
        }),
        (arb_addr_reg(), any::<i16>(), arb_data_reg()).prop_map(|(ab, off, rs)| Insn::StB {
            ab,
            off,
            rs
        }),
        (arb_data_reg(), 0u32..(1 << 20)).prop_map(|(rd, addr)| Insn::LdAbs { rd, addr }),
        (0u32..(1 << 20), arb_data_reg()).prop_map(|(addr, rs)| Insn::StAbs { addr, rs }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Add {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::AddI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Sub {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Mul {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::AndI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::OrI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::XorI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::ShlI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::ShrI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::SarI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Not { rd, ra }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Neg { rd, ra }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(ra, rb)| Insn::Cmp { ra, rb }),
        (arb_data_reg(), any::<i16>()).prop_map(|(ra, imm)| Insn::CmpI { ra, imm }),
        (
            arb_data_reg(),
            arb_data_reg(),
            arb_data_reg(),
            arb_bitfield()
        )
            .prop_map(|(rd, ra, rs, (pos, width))| Insn::Insert {
                rd,
                ra,
                src: BitSrc::Reg(rs),
                pos,
                width
            }),
        (arb_data_reg(), arb_data_reg(), 0u8..128, arb_bitfield()).prop_map(
            |(rd, ra, imm, (pos, width))| Insn::Insert {
                rd,
                ra,
                src: BitSrc::Imm(imm),
                pos,
                width
            }
        ),
        (arb_data_reg(), arb_data_reg(), arb_bitfield())
            .prop_map(|(rd, ra, (pos, width))| Insn::Extract { rd, ra, pos, width }),
        arb_target().prop_map(|target| Insn::Jmp { target }),
        (0u8..8, arb_target()).prop_map(|(c, target)| Insn::J {
            cond: Cond::from_code(c).expect("in range"),
            target
        }),
        arb_target().prop_map(|target| Insn::Call { target }),
        arb_addr_reg().prop_map(|ab| Insn::CallR { ab }),
        Just(Insn::Ret),
        Just(Insn::RetI),
        arb_data_reg().prop_map(|rs| Insn::Push { rs }),
        arb_data_reg().prop_map(|rd| Insn::Pop { rd }),
        arb_addr_reg().prop_map(|ab| Insn::PushA { ab }),
        arb_addr_reg().prop_map(|ad| Insn::PopA { ad }),
        Just(Insn::Ei),
        Just(Insn::Di),
        (arb_addr_reg(), any::<i16>()).prop_map(|(ad, imm)| Insn::AddA { ad, imm }),
    ]
}

proptest! {
    // Pinned so CI case counts don't drift with proptest defaults.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// display → assemble → decode is the identity.
    #[test]
    fn display_reassembles_identically(insn in arb_displayable_insn()) {
        let text = format!("{insn}\n");
        let program = assemble_str(&text)
            .unwrap_or_else(|e| panic!("`{insn}` failed to assemble: {e}"));
        let seg = &program.segments()[0];
        prop_assert_eq!(seg.bytes().len(), 4, "`{}` must emit one word", insn);
        let word = u32::from_le_bytes(seg.bytes()[0..4].try_into().expect("4 bytes"));
        let back = decode(word).expect("assembled word decodes");
        prop_assert_eq!(back, insn);
    }

    /// Whole random programs round-trip line by line.
    #[test]
    fn programs_reassemble(insns in proptest::collection::vec(arb_displayable_insn(), 1..40)) {
        let text: String = insns.iter().map(|i| format!("{i}\n")).collect();
        let program = assemble_str(&text).expect("program assembles");
        let seg = &program.segments()[0];
        prop_assert_eq!(seg.bytes().len(), insns.len() * 4);
        for (i, chunk) in seg.bytes().chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            prop_assert_eq!(decode(word).expect("decodes"), insns[i]);
        }
    }
}
