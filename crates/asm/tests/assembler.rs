//! End-to-end assembler tests, including the paper's Figure 6 and
//! Figure 7 listings assembled verbatim.

use advm_asm::{assemble, assemble_str, Image, SourceSet};
use advm_isa::{decode, BitSrc, DataReg, Insn};

/// Decodes the words of the first segment.
fn decode_all(program: &advm_asm::Program) -> Vec<Insn> {
    let seg = &program.segments()[0];
    seg.bytes()
        .chunks_exact(4)
        .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])).expect("valid word"))
        .collect()
}

#[test]
fn figure6_test1_assembles_verbatim() {
    // The paper's Figure 6, test 1 — code and globals exactly as printed
    // (modulo our 32-entry include file being trimmed to what the listing
    // shows).
    let sources = SourceSet::new()
        .with(
            "Globals.inc",
            "\
;; Globals.inc
PAGE_FIELD_SIZE .EQU 5
PAGE_FIELD_START_POSITION .EQU 0
TEST1_TARGET_PAGE .EQU 8
TEST2_TARGET_PAGE .EQU 7
",
        )
        .with(
            "test1.asm",
            "\
;; Code for test 1
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST1_TARGET_PAGE
_main:
    MOVI d14, #0
    INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    HALT #0
",
        );
    let program = assemble("test1.asm", &sources).unwrap();
    let insns = decode_all(&program);
    assert_eq!(
        insns[1],
        Insn::Insert {
            rd: DataReg::D14,
            ra: DataReg::D14,
            src: BitSrc::Imm(8),
            pos: 0,
            width: 5,
        }
    );
}

#[test]
fn figure6_spec_change_absorbed_by_globals_only() {
    // Change PAGE_FIELD_START_POSITION from 0 to 1 in Globals.inc — the
    // test source is untouched, yet the encoded INSERT moves.
    let test = "\
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST1_TARGET_PAGE
_main:
    MOVI d14, #0
    INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    HALT #0
";
    let globals_a =
        "PAGE_FIELD_SIZE .EQU 5\nPAGE_FIELD_START_POSITION .EQU 0\nTEST1_TARGET_PAGE .EQU 8\n";
    let globals_b =
        "PAGE_FIELD_SIZE .EQU 6\nPAGE_FIELD_START_POSITION .EQU 1\nTEST1_TARGET_PAGE .EQU 8\n";

    let prog_a = assemble(
        "t.asm",
        &SourceSet::new()
            .with("t.asm", test)
            .with("Globals.inc", globals_a),
    )
    .unwrap();
    let prog_b = assemble(
        "t.asm",
        &SourceSet::new()
            .with("t.asm", test)
            .with("Globals.inc", globals_b),
    )
    .unwrap();

    let insert_a = decode_all(&prog_a)[1];
    let insert_b = decode_all(&prog_b)[1];
    assert_eq!(
        insert_a,
        Insn::Insert {
            rd: DataReg::D14,
            ra: DataReg::D14,
            src: BitSrc::Imm(8),
            pos: 0,
            width: 5
        }
    );
    assert_eq!(
        insert_b,
        Insn::Insert {
            rd: DataReg::D14,
            ra: DataReg::D14,
            src: BitSrc::Imm(8),
            pos: 1,
            width: 6
        }
    );
}

#[test]
fn figure7_wrapped_call_chain_assembles() {
    // Figure 7: test calls Base_Init_Register, which wraps
    // ES_Init_Register. `CallAddr` is a .DEFINE alias for a12.
    let sources = SourceSet::new()
        .with(
            "Globals.inc",
            ".DEFINE CallAddr a12\nES_INIT_REGISTER .EQU 0x30000\n",
        )
        .with(
            "Base_Functions.asm",
            "\
;; Base_Functions.asm
Base_Init_Register:
    LOAD CallAddr, ES_INIT_REGISTER
    CALL CallAddr
    RETURN
",
        )
        .with(
            "test1.asm",
            "\
;; Code for test 1
.INCLUDE Globals.inc
_main:
    LOAD CallAddr, Base_Init_Register
    CALL CallAddr
    RETURN
.INCLUDE Base_Functions.asm
",
        );
    let program = assemble("test1.asm", &sources).unwrap();
    let base_addr = program.label("Base_Init_Register").unwrap();
    let insns = decode_all(&program);
    // _main: LEA a12, Base_Init_Register ; CALL a12 ; RETURN
    assert_eq!(
        insns[0],
        Insn::Lea {
            ad: advm_isa::AddrReg::A12,
            addr: base_addr
        }
    );
    assert_eq!(
        insns[1],
        Insn::CallR {
            ab: advm_isa::AddrReg::A12
        }
    );
    assert_eq!(insns[2], Insn::Ret);
    // Base_Init_Register: LEA a12, 0x30000 ; CALL a12 ; RETURN
    assert_eq!(
        insns[3],
        Insn::Lea {
            ad: advm_isa::AddrReg::A12,
            addr: 0x30000
        }
    );
}

#[test]
fn forward_references_resolve() {
    let program = assemble_str(
        "\
_main:
    JMP done
    NOP
done:
    HALT #0
",
    )
    .unwrap();
    let done = program.label("done").unwrap();
    assert_eq!(done, 0x100 + 8);
    assert_eq!(decode_all(&program)[0], Insn::Jmp { target: done });
}

#[test]
fn load_immediate_emits_two_words() {
    let program = assemble_str("LOAD d1, #0xDEADBEEF\n").unwrap();
    let insns = decode_all(&program);
    assert_eq!(
        insns[0],
        Insn::MovI {
            rd: DataReg::D1,
            imm: 0xBEEF
        }
    );
    assert_eq!(
        insns[1],
        Insn::MovHi {
            rd: DataReg::D1,
            imm: 0xDEAD
        }
    );
}

#[test]
fn load_store_addressing_forms() {
    let program = assemble_str(
        "\
LOAD d1, [a2]
LOAD d1, [a2 + 8]
LOAD d1, [a2 - 4]
LOAD d1, [0xE0100]
STORE [a3], d2
STORE [0xE0100], d2
",
    )
    .unwrap();
    use advm_isa::AddrReg::{A2, A3};
    let insns = decode_all(&program);
    assert_eq!(
        insns[0],
        Insn::Ld {
            rd: DataReg::D1,
            ab: A2,
            off: 0
        }
    );
    assert_eq!(
        insns[1],
        Insn::Ld {
            rd: DataReg::D1,
            ab: A2,
            off: 8
        }
    );
    assert_eq!(
        insns[2],
        Insn::Ld {
            rd: DataReg::D1,
            ab: A2,
            off: -4
        }
    );
    assert_eq!(
        insns[3],
        Insn::LdAbs {
            rd: DataReg::D1,
            addr: 0xE0100
        }
    );
    assert_eq!(
        insns[4],
        Insn::St {
            ab: A3,
            off: 0,
            rs: DataReg::D2
        }
    );
    assert_eq!(
        insns[5],
        Insn::StAbs {
            addr: 0xE0100,
            rs: DataReg::D2
        }
    );
}

#[test]
fn alu_immediate_conveniences() {
    let program = assemble_str(
        "\
ADD d1, d2, #5
SUB d1, d2, #5
AND d1, d2, #0xFF
SHL d1, d2, #3
CMP d1, #9
",
    )
    .unwrap();
    let insns = decode_all(&program);
    assert_eq!(
        insns[0],
        Insn::AddI {
            rd: DataReg::D1,
            ra: DataReg::D2,
            imm: 5
        }
    );
    assert_eq!(
        insns[1],
        Insn::AddI {
            rd: DataReg::D1,
            ra: DataReg::D2,
            imm: -5
        }
    );
    assert_eq!(
        insns[2],
        Insn::AndI {
            rd: DataReg::D1,
            ra: DataReg::D2,
            imm: 0xFF
        }
    );
    assert_eq!(
        insns[3],
        Insn::ShlI {
            rd: DataReg::D1,
            ra: DataReg::D2,
            sh: 3
        }
    );
    assert_eq!(
        insns[4],
        Insn::CmpI {
            ra: DataReg::D1,
            imm: 9
        }
    );
}

#[test]
fn org_word_byte_align_layout() {
    let program = assemble_str(
        "\
.ORG 0x0
.WORD handler, 0xCAFEBABE
.ORG 0x200
.BYTE 1, 2, 3
.ALIGN 4
handler:
    HALT #0
",
    )
    .unwrap();
    let mut image = Image::new();
    image.load_program(&program).unwrap();
    let handler = program.label("handler").unwrap();
    assert_eq!(handler, 0x204, ".BYTE x3 then .ALIGN 4");
    assert_eq!(image.word(0x0), handler);
    assert_eq!(image.word(0x4), 0xCAFE_BABE);
    assert_eq!(image.byte(0x200), 1);
    assert_eq!(image.byte(0x202), 3);
}

#[test]
fn conditional_assembly_selects_platform_code() {
    let common = "\
.INCLUDE Globals.inc
_main:
.IF VERBOSE
    MOVI d0, #1
.ELSE
    MOVI d0, #2
.ENDIF
    HALT #0
";
    let verbose = assemble(
        "t.asm",
        &SourceSet::new()
            .with("t.asm", common)
            .with("Globals.inc", "VERBOSE .EQU 1\n"),
    )
    .unwrap();
    let quiet = assemble(
        "t.asm",
        &SourceSet::new()
            .with("t.asm", common)
            .with("Globals.inc", "VERBOSE .EQU 0\n"),
    )
    .unwrap();
    assert_eq!(
        decode_all(&verbose)[0],
        Insn::MovI {
            rd: DataReg::D0,
            imm: 1
        }
    );
    assert_eq!(
        decode_all(&quiet)[0],
        Insn::MovI {
            rd: DataReg::D0,
            imm: 2
        }
    );
}

#[test]
fn duplicate_label_rejected() {
    let err = assemble_str("x:\nNOP\nx:\nNOP\n").unwrap_err();
    assert!(err.to_string().contains("duplicate label"));
}

#[test]
fn label_equ_collision_rejected() {
    let err = assemble_str("X .EQU 1\nX:\nNOP\n").unwrap_err();
    assert!(err.to_string().contains("collides"));
}

#[test]
fn unknown_mnemonic_located() {
    let err = assemble_str("NOP\nFROB d1\n").unwrap_err();
    assert_eq!(err.loc().unwrap().line, 2);
    assert!(err.to_string().contains("FROB"));
}

#[test]
fn out_of_range_immediates_rejected() {
    assert!(assemble_str("MOVI d0, #0x10000\n").is_err());
    assert!(assemble_str("ADDI d0, d0, #40000\n").is_err());
    assert!(assemble_str("INSERT d0, d0, #200, 0, 8\n").is_err());
    assert!(assemble_str("INSERT d0, d0, #1, 30, 5\n").is_err());
    assert!(assemble_str("LEA a0, 0x100000\n").is_err());
}

#[test]
fn undefined_symbol_reported() {
    let err = assemble_str("JMP nowhere\n").unwrap_err();
    assert!(err.to_string().contains("undefined symbol `nowhere`"));
}

#[test]
fn listing_contains_addresses_and_words() {
    let program = assemble_str("_main:\n    NOP\n    HALT #3\n").unwrap();
    let listing = program.render_listing();
    assert!(listing.contains("00100:"), "{listing}");
    assert!(listing.contains("HALT"), "{listing}");
}

#[test]
fn misaligned_jump_target_rejected() {
    let err = assemble_str("JMP 0x102\n").unwrap_err();
    assert!(err.to_string().contains("aligned"), "{err}");
}

#[test]
fn registers_win_over_labels_in_operands() {
    // `d1` parses as a register even though a label of that name exists;
    // register names are reserved.
    let program = assemble_str("MOV d1, d2\nHALT #0\n").unwrap();
    assert_eq!(
        decode_all(&program)[0],
        Insn::Mov {
            rd: DataReg::D1,
            ra: DataReg::D2
        }
    );
}

#[test]
fn push_pop_variants() {
    let program = assemble_str("PUSH d3\nPOP d3\nPUSH a4\nPOP a4\n").unwrap();
    use advm_isa::AddrReg::A4;
    let insns = decode_all(&program);
    assert_eq!(insns[0], Insn::Push { rs: DataReg::D3 });
    assert_eq!(insns[1], Insn::Pop { rd: DataReg::D3 });
    assert_eq!(insns[2], Insn::PushA { ab: A4 });
    assert_eq!(insns[3], Insn::PopA { ad: A4 });
}

#[test]
fn extract_and_conditional_jumps() {
    let program = assemble_str(
        "\
_main:
    EXTRACT d1, d2, 4, 5
    CMP d1, #8
    JEQ ok
    JNE bad
ok:
    HALT #0
bad:
    HALT #1
",
    )
    .unwrap();
    let insns = decode_all(&program);
    assert_eq!(
        insns[0],
        Insn::Extract {
            rd: DataReg::D1,
            ra: DataReg::D2,
            pos: 4,
            width: 5
        }
    );
    let ok = program.label("ok").unwrap();
    let bad = program.label("bad").unwrap();
    assert_eq!(
        insns[2],
        Insn::J {
            cond: advm_isa::Cond::Eq,
            target: ok
        }
    );
    assert_eq!(
        insns[3],
        Insn::J {
            cond: advm_isa::Cond::Ne,
            target: bad
        }
    );
}

#[test]
fn parsed_unit_split_matches_assemble() {
    use advm_asm::ParsedUnit;
    let sources = SourceSet::new()
        .with("Globals.inc", "TARGET .EQU 8\n")
        .with(
            "test.asm",
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #TARGET
    CALL helper
    RETURN
helper:
    MOVI d2, #3
    RETURN
",
        );
    let whole = assemble("test.asm", &sources).unwrap();
    let split = ParsedUnit::parse("test.asm", &sources)
        .unwrap()
        .encode()
        .unwrap();
    assert_eq!(whole, split, "parse+encode must equal assemble exactly");

    // The lean mode drops only the listing: segments, labels and
    // constants are identical, so the linked image is too.
    let lean = ParsedUnit::parse_lean("test.asm", &sources)
        .unwrap()
        .encode()
        .unwrap();
    assert_eq!(lean.segments(), whole.segments());
    assert_eq!(lean.labels(), whole.labels());
    assert_eq!(lean.equ("TARGET"), whole.equ("TARGET"));
    assert!(lean.listing().is_empty());
    assert!(!whole.listing().is_empty());

    // Diagnostics are identical across the split and the lean mode.
    let bad = SourceSet::new().with("t.asm", "_main:\n    FROB d1\n");
    let direct = assemble("t.asm", &bad).unwrap_err();
    let lean_err = ParsedUnit::parse_lean("t.asm", &bad)
        .unwrap()
        .encode()
        .unwrap_err();
    assert_eq!(direct.to_string(), lean_err.to_string());
}
