//! Property-based tests for the SC88 encoder/decoder.
//!
//! Two invariants:
//! 1. every valid instruction round-trips `encode -> decode` exactly;
//! 2. every 32-bit word either fails to decode or round-trips
//!    `decode -> encode` back to itself (canonical encodings).

use advm_isa::{decode, encode, AddrReg, BitSrc, Cond, DataReg, Insn};
use proptest::prelude::*;

fn arb_data_reg() -> impl Strategy<Value = DataReg> {
    (0u8..16).prop_map(|i| DataReg::from_index(i).expect("index in range"))
}

fn arb_addr_reg() -> impl Strategy<Value = AddrReg> {
    (0u8..16).prop_map(|i| AddrReg::from_index(i).expect("index in range"))
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..8).prop_map(|c| Cond::from_code(c).expect("code in range"))
}

fn arb_addr20() -> impl Strategy<Value = u32> {
    0u32..(1 << 20)
}

/// Word-aligned 20-bit address, as required by control-flow targets.
fn arb_target() -> impl Strategy<Value = u32> {
    (0u32..(1 << 18)).prop_map(|w| w << 2)
}

fn arb_bitfield() -> impl Strategy<Value = (u8, u8)> {
    (0u8..32).prop_flat_map(|pos| (Just(pos), 1u8..=(32 - pos)))
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        any::<u8>().prop_map(|code| Insn::Halt { code }),
        (0u8..32).prop_map(|vector| Insn::Trap { vector }),
        any::<u8>().prop_map(|tag| Insn::Dbg { tag }),
        (arb_data_reg(), any::<u16>()).prop_map(|(rd, imm)| Insn::MovI { rd, imm }),
        (arb_data_reg(), any::<u16>()).prop_map(|(rd, imm)| Insn::MovHi { rd, imm }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Mov { rd, ra }),
        (arb_data_reg(), arb_addr_reg()).prop_map(|(rd, ab)| Insn::MovDa { rd, ab }),
        (arb_addr_reg(), arb_data_reg()).prop_map(|(ad, rb)| Insn::MovAd { ad, rb }),
        (arb_addr_reg(), arb_addr_reg()).prop_map(|(ad, ab)| Insn::MovAa { ad, ab }),
        (arb_addr_reg(), arb_addr20()).prop_map(|(ad, addr)| Insn::Lea { ad, addr }),
        (arb_data_reg(), arb_addr_reg(), any::<i16>()).prop_map(|(rd, ab, off)| Insn::Ld {
            rd,
            ab,
            off
        }),
        (arb_data_reg(), arb_addr_reg(), any::<i16>()).prop_map(|(rd, ab, off)| Insn::LdB {
            rd,
            ab,
            off
        }),
        (arb_addr_reg(), any::<i16>(), arb_data_reg()).prop_map(|(ab, off, rs)| Insn::St {
            ab,
            off,
            rs
        }),
        (arb_addr_reg(), any::<i16>(), arb_data_reg()).prop_map(|(ab, off, rs)| Insn::StB {
            ab,
            off,
            rs
        }),
        (arb_data_reg(), arb_addr20()).prop_map(|(rd, addr)| Insn::LdAbs { rd, addr }),
        (arb_addr20(), arb_data_reg()).prop_map(|(addr, rs)| Insn::StAbs { addr, rs }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Add {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::AddI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Sub {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Mul {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::And {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::AndI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Or {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::OrI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Xor {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Insn::XorI {
            rd,
            ra,
            imm
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Shl {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::ShlI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra, rb)| Insn::Shr {
            rd,
            ra,
            rb
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::ShrI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg(), 0u8..32).prop_map(|(rd, ra, sh)| Insn::SarI {
            rd,
            ra,
            sh
        }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Not { rd, ra }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(rd, ra)| Insn::Neg { rd, ra }),
        (arb_data_reg(), arb_data_reg()).prop_map(|(ra, rb)| Insn::Cmp { ra, rb }),
        (arb_data_reg(), any::<i16>()).prop_map(|(ra, imm)| Insn::CmpI { ra, imm }),
        (
            arb_data_reg(),
            arb_data_reg(),
            arb_data_reg(),
            arb_bitfield()
        )
            .prop_map(|(rd, ra, rs, (pos, width))| Insn::Insert {
                rd,
                ra,
                src: BitSrc::Reg(rs),
                pos,
                width
            }),
        (arb_data_reg(), arb_data_reg(), 0u8..128, arb_bitfield()).prop_map(
            |(rd, ra, imm, (pos, width))| Insn::Insert {
                rd,
                ra,
                src: BitSrc::Imm(imm),
                pos,
                width
            }
        ),
        (arb_data_reg(), arb_data_reg(), arb_bitfield())
            .prop_map(|(rd, ra, (pos, width))| Insn::Extract { rd, ra, pos, width }),
        arb_target().prop_map(|target| Insn::Jmp { target }),
        (arb_cond(), arb_target()).prop_map(|(cond, target)| Insn::J { cond, target }),
        arb_target().prop_map(|target| Insn::Call { target }),
        arb_addr_reg().prop_map(|ab| Insn::CallR { ab }),
        Just(Insn::Ret),
        Just(Insn::RetI),
        arb_data_reg().prop_map(|rs| Insn::Push { rs }),
        arb_data_reg().prop_map(|rd| Insn::Pop { rd }),
        arb_addr_reg().prop_map(|ab| Insn::PushA { ab }),
        arb_addr_reg().prop_map(|ad| Insn::PopA { ad }),
        Just(Insn::Ei),
        Just(Insn::Di),
        (arb_addr_reg(), any::<i16>()).prop_map(|(ad, imm)| Insn::AddA { ad, imm }),
    ]
}

proptest! {
    // Pinned so CI case counts don't drift with proptest defaults.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        prop_assert!(insn.validate().is_ok(), "generator produced invalid insn {insn:?}");
        let word = encode(&insn);
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, insn);
    }

    #[test]
    fn decode_encode_is_canonical(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            prop_assert!(insn.validate().is_ok(), "decoder produced invalid insn {insn:?}");
            prop_assert_eq!(encode(&insn), word, "decode produced non-canonical {:?}", insn);
        }
    }

    #[test]
    fn display_is_nonempty_and_starts_with_mnemonic(insn in arb_insn()) {
        let text = insn.to_string();
        prop_assert!(!text.is_empty());
        prop_assert!(text.starts_with(insn.mnemonic()),
            "display `{}` does not start with mnemonic `{}`", text, insn.mnemonic());
    }
}
