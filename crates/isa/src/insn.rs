//! The SC88 instruction set.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AddrReg, Cond, DataReg, ADDR_MASK};

/// The source operand of an [`Insn::Insert`] bit-field insertion.
///
/// The paper's Figure 6 listing inserts an immediate page number
/// (`TEST_PAGE .EQU TEST1_TARGET_PAGE` with `TEST1_TARGET_PAGE .EQU 8`),
/// so the immediate form carries up to 7 bits — wide enough for the
/// derivative that doubles the number of pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitSrc {
    /// Insert the value of a data register.
    Reg(DataReg),
    /// Insert a 7-bit immediate (0..=127).
    Imm(u8),
}

/// One SC88 instruction.
///
/// Every variant encodes to exactly one 32-bit word via
/// [`encode`](crate::encode); see the crate docs for the design rationale.
/// Pseudo-instructions accepted by the assembler (e.g. `LOAD d0, #imm32`)
/// expand to sequences of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Insn {
    /// No operation.
    Nop,
    /// Stop the platform, reporting `code` as the architectural exit code.
    Halt {
        /// Exit code made visible to the test bench.
        code: u8,
    },
    /// Software trap through vector `vector`.
    Trap {
        /// Trap vector index (0..=31).
        vector: u8,
    },
    /// Debug marker: emits `tag` to the platform trace. Architecturally a
    /// no-op, so it can never cause cross-platform divergence; only
    /// platforms with debug visibility (e.g. bondout) record it.
    Dbg {
        /// Arbitrary tag recorded in the trace.
        tag: u8,
    },

    /// `rd = zero_extend(imm)` — load a 16-bit immediate, clearing the high half.
    MovI {
        /// Destination data register.
        rd: DataReg,
        /// Immediate value placed in the low 16 bits.
        imm: u16,
    },
    /// `rd = (imm << 16) | (rd & 0xFFFF)` — set the high half, keep the low.
    MovHi {
        /// Destination data register.
        rd: DataReg,
        /// Immediate value placed in the high 16 bits.
        imm: u16,
    },
    /// `rd = ra` between data registers.
    Mov {
        /// Destination data register.
        rd: DataReg,
        /// Source data register.
        ra: DataReg,
    },
    /// `rd = ab` — read an address register into a data register.
    MovDa {
        /// Destination data register.
        rd: DataReg,
        /// Source address register.
        ab: AddrReg,
    },
    /// `ad = rb` — write a data register into an address register.
    MovAd {
        /// Destination address register.
        ad: AddrReg,
        /// Source data register.
        rb: DataReg,
    },
    /// `ad = ab` between address registers.
    MovAa {
        /// Destination address register.
        ad: AddrReg,
        /// Source address register.
        ab: AddrReg,
    },
    /// `ad = addr` — load an absolute 20-bit address (the `LOAD CallAddr,
    /// Base_Init_Register` form of the paper's Figure 7).
    Lea {
        /// Destination address register.
        ad: AddrReg,
        /// Absolute byte address (must fit in 20 bits).
        addr: u32,
    },

    /// `rd = mem32[ab + off]`.
    Ld {
        /// Destination data register.
        rd: DataReg,
        /// Base address register.
        ab: AddrReg,
        /// Signed byte offset.
        off: i16,
    },
    /// `rd = zero_extend(mem8[ab + off])`.
    LdB {
        /// Destination data register.
        rd: DataReg,
        /// Base address register.
        ab: AddrReg,
        /// Signed byte offset.
        off: i16,
    },
    /// `mem32[ab + off] = rs`.
    St {
        /// Base address register.
        ab: AddrReg,
        /// Signed byte offset.
        off: i16,
        /// Source data register.
        rs: DataReg,
    },
    /// `mem8[ab + off] = rs & 0xFF`.
    StB {
        /// Base address register.
        ab: AddrReg,
        /// Signed byte offset.
        off: i16,
        /// Source data register.
        rs: DataReg,
    },
    /// `rd = mem32[addr]` with an absolute 20-bit address.
    LdAbs {
        /// Destination data register.
        rd: DataReg,
        /// Absolute byte address.
        addr: u32,
    },
    /// `mem32[addr] = rs` with an absolute 20-bit address (the
    /// `STORE [ADDR], ValueForReg` form of the paper's Figure 7).
    StAbs {
        /// Absolute byte address.
        addr: u32,
        /// Source data register.
        rs: DataReg,
    },

    /// `rd = ra + rb`, updating `Z N C V`.
    Add {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Second operand.
        rb: DataReg,
    },
    /// `rd = ra + sign_extend(imm)`, updating `Z N C V`.
    AddI {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Signed immediate.
        imm: i16,
    },
    /// `rd = ra - rb`, updating `Z N C V`.
    Sub {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Second operand.
        rb: DataReg,
    },
    /// `rd = ra * rb` (low 32 bits), updating `Z N`.
    Mul {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Second operand.
        rb: DataReg,
    },
    /// `rd = ra & rb`, updating `Z N`.
    And {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Second operand.
        rb: DataReg,
    },
    /// `rd = ra & zero_extend(imm)`, updating `Z N`.
    AndI {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `rd = ra | rb`, updating `Z N`.
    Or {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Second operand.
        rb: DataReg,
    },
    /// `rd = ra | zero_extend(imm)`, updating `Z N`.
    OrI {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `rd = ra ^ rb`, updating `Z N`.
    Xor {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Second operand.
        rb: DataReg,
    },
    /// `rd = ra ^ zero_extend(imm)`, updating `Z N`.
    XorI {
        /// Destination data register.
        rd: DataReg,
        /// First operand.
        ra: DataReg,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `rd = ra << (rb & 31)`, updating `Z N`.
    Shl {
        /// Destination data register.
        rd: DataReg,
        /// Value to shift.
        ra: DataReg,
        /// Shift amount register.
        rb: DataReg,
    },
    /// `rd = ra << sh`, updating `Z N`.
    ShlI {
        /// Destination data register.
        rd: DataReg,
        /// Value to shift.
        ra: DataReg,
        /// Shift amount (0..=31).
        sh: u8,
    },
    /// `rd = ra >> (rb & 31)` (logical), updating `Z N`.
    Shr {
        /// Destination data register.
        rd: DataReg,
        /// Value to shift.
        ra: DataReg,
        /// Shift amount register.
        rb: DataReg,
    },
    /// `rd = ra >> sh` (logical), updating `Z N`.
    ShrI {
        /// Destination data register.
        rd: DataReg,
        /// Value to shift.
        ra: DataReg,
        /// Shift amount (0..=31).
        sh: u8,
    },
    /// `rd = ra >> sh` (arithmetic), updating `Z N`.
    SarI {
        /// Destination data register.
        rd: DataReg,
        /// Value to shift.
        ra: DataReg,
        /// Shift amount (0..=31).
        sh: u8,
    },
    /// `rd = !ra`, updating `Z N`.
    Not {
        /// Destination data register.
        rd: DataReg,
        /// Operand.
        ra: DataReg,
    },
    /// `rd = -ra` (two's complement), updating `Z N C V`.
    Neg {
        /// Destination data register.
        rd: DataReg,
        /// Operand.
        ra: DataReg,
    },
    /// Compare `ra - rb`, updating `Z N C V` only.
    Cmp {
        /// First operand.
        ra: DataReg,
        /// Second operand.
        rb: DataReg,
    },
    /// Compare `ra - sign_extend(imm)`, updating `Z N C V` only.
    CmpI {
        /// First operand.
        ra: DataReg,
        /// Signed immediate.
        imm: i16,
    },

    /// Bit-field insert: replace `width` bits of `ra` starting at `pos`
    /// with the low bits of `src`, writing the result to `rd`.
    ///
    /// This is the central instruction of the paper's Figure 6 example:
    /// the *position* and *width* come from the abstraction layer's
    /// `Globals.inc`, so a derivative that moves or widens the field is
    /// absorbed without touching the test.
    Insert {
        /// Destination data register.
        rd: DataReg,
        /// Register providing the untouched bits.
        ra: DataReg,
        /// Field value source (register or 7-bit immediate).
        src: BitSrc,
        /// Bit position of the field's least-significant bit (0..=31).
        pos: u8,
        /// Field width in bits (1..=32, `pos + width <= 32`).
        width: u8,
    },
    /// Bit-field extract: `rd = (ra >> pos) & ((1 << width) - 1)`.
    Extract {
        /// Destination data register.
        rd: DataReg,
        /// Source register.
        ra: DataReg,
        /// Bit position of the field's least-significant bit (0..=31).
        pos: u8,
        /// Field width in bits (1..=32, `pos + width <= 32`).
        width: u8,
    },

    /// Unconditional jump to an absolute address.
    Jmp {
        /// Absolute byte address of the target (word aligned).
        target: u32,
    },
    /// Conditional jump to an absolute address.
    J {
        /// Condition evaluated against the PSW.
        cond: Cond,
        /// Absolute byte address of the target (word aligned).
        target: u32,
    },
    /// Call: push the return address through `a10` (SP) and jump.
    Call {
        /// Absolute byte address of the callee (word aligned).
        target: u32,
    },
    /// Call through an address register (the `CALL CallAddr` form of the
    /// paper's Figure 7 listings).
    CallR {
        /// Register holding the callee address.
        ab: AddrReg,
    },
    /// Return: pop the return address through `a10` (SP).
    Ret,
    /// Return from trap/interrupt: pop PSW then return address.
    RetI,

    /// Push a data register onto the stack (`a10` decrements by 4).
    Push {
        /// Register to push.
        rs: DataReg,
    },
    /// Pop a data register from the stack (`a10` increments by 4).
    Pop {
        /// Register receiving the popped word.
        rd: DataReg,
    },
    /// Push an address register onto the stack.
    PushA {
        /// Register to push.
        ab: AddrReg,
    },
    /// Pop an address register from the stack.
    PopA {
        /// Register receiving the popped word.
        ad: AddrReg,
    },
    /// Enable maskable interrupts (sets `PSW.IE`).
    Ei,
    /// Disable maskable interrupts (clears `PSW.IE`).
    Di,
    /// `ad = ad + sign_extend(imm)` — pointer arithmetic on an address
    /// register. Flags are not affected.
    AddA {
        /// Address register updated in place.
        ad: AddrReg,
        /// Signed byte increment.
        imm: i16,
    },
}

/// Error returned by [`Insn::validate`] when an instruction carries an
/// operand outside its encodable range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateInsnError {
    insn: String,
    reason: String,
}

impl ValidateInsnError {
    fn new(insn: &Insn, reason: impl Into<String>) -> Self {
        Self {
            insn: format!("{insn:?}"),
            reason: reason.into(),
        }
    }

    /// Human-readable reason the instruction is invalid.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ValidateInsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction {}: {}", self.insn, self.reason)
    }
}

impl std::error::Error for ValidateInsnError {}

impl Insn {
    /// The canonical assembler mnemonic for this instruction.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Insn::Nop => "NOP",
            Insn::Halt { .. } => "HALT",
            Insn::Trap { .. } => "TRAP",
            Insn::Dbg { .. } => "DBG",
            Insn::MovI { .. } => "MOVI",
            Insn::MovHi { .. } => "MOVHI",
            Insn::Mov { .. } => "MOV",
            Insn::MovDa { .. } => "MOVDA",
            Insn::MovAd { .. } => "MOVAD",
            Insn::MovAa { .. } => "MOVAA",
            Insn::Lea { .. } => "LEA",
            Insn::Ld { .. } => "LD",
            Insn::LdB { .. } => "LDB",
            Insn::St { .. } => "ST",
            Insn::StB { .. } => "STB",
            Insn::LdAbs { .. } => "LDABS",
            Insn::StAbs { .. } => "STABS",
            Insn::Add { .. } => "ADD",
            Insn::AddI { .. } => "ADDI",
            Insn::Sub { .. } => "SUB",
            Insn::Mul { .. } => "MUL",
            Insn::And { .. } => "AND",
            Insn::AndI { .. } => "ANDI",
            Insn::Or { .. } => "OR",
            Insn::OrI { .. } => "ORI",
            Insn::Xor { .. } => "XOR",
            Insn::XorI { .. } => "XORI",
            Insn::Shl { .. } => "SHL",
            Insn::ShlI { .. } => "SHLI",
            Insn::Shr { .. } => "SHR",
            Insn::ShrI { .. } => "SHRI",
            Insn::SarI { .. } => "SARI",
            Insn::Not { .. } => "NOT",
            Insn::Neg { .. } => "NEG",
            Insn::Cmp { .. } => "CMP",
            Insn::CmpI { .. } => "CMPI",
            Insn::Insert { .. } => "INSERT",
            Insn::Extract { .. } => "EXTRACT",
            Insn::Jmp { .. } => "JMP",
            Insn::J { .. } => "J",
            Insn::Call { .. } => "CALL",
            Insn::CallR { .. } => "CALL",
            Insn::Ret => "RETURN",
            Insn::RetI => "RETI",
            Insn::Push { .. } => "PUSH",
            Insn::Pop { .. } => "POP",
            Insn::PushA { .. } => "PUSHA",
            Insn::PopA { .. } => "POPA",
            Insn::Ei => "EI",
            Insn::Di => "DI",
            Insn::AddA { .. } => "ADDA",
        }
    }

    /// Whether this instruction can change the program counter.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Insn::Jmp { .. }
                | Insn::J { .. }
                | Insn::Call { .. }
                | Insn::CallR { .. }
                | Insn::Ret
                | Insn::RetI
                | Insn::Trap { .. }
                | Insn::Halt { .. }
        )
    }

    /// Whether this instruction reads or writes memory (loads, stores and
    /// the implicit stack traffic of calls, pushes and pops).
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Insn::Ld { .. }
                | Insn::LdB { .. }
                | Insn::St { .. }
                | Insn::StB { .. }
                | Insn::LdAbs { .. }
                | Insn::StAbs { .. }
                | Insn::Push { .. }
                | Insn::Pop { .. }
                | Insn::PushA { .. }
                | Insn::PopA { .. }
                | Insn::Call { .. }
                | Insn::CallR { .. }
                | Insn::Ret
                | Insn::RetI
                | Insn::Trap { .. }
        )
    }

    /// Checks that every operand fits its encoding field.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateInsnError`] when an immediate, address, shift
    /// amount or bit-field range is not encodable. [`crate::encode`] panics
    /// on invalid instructions, so callers constructing instructions from
    /// untrusted input (e.g. the assembler) must validate first.
    pub fn validate(&self) -> Result<(), ValidateInsnError> {
        let check_addr = |addr: u32| {
            if addr & !ADDR_MASK != 0 {
                Err(ValidateInsnError::new(
                    self,
                    format!("address {addr:#x} exceeds 20 bits"),
                ))
            } else if !addr.is_multiple_of(4) && self.is_control_flow() {
                Err(ValidateInsnError::new(
                    self,
                    format!("target {addr:#x} is not word aligned"),
                ))
            } else {
                Ok(())
            }
        };
        let check_field = |pos: u8, width: u8| {
            if width == 0 || width > 32 {
                Err(ValidateInsnError::new(
                    self,
                    format!("field width {width} not in 1..=32"),
                ))
            } else if pos > 31 {
                Err(ValidateInsnError::new(
                    self,
                    format!("field position {pos} not in 0..=31"),
                ))
            } else if u32::from(pos) + u32::from(width) > 32 {
                Err(ValidateInsnError::new(
                    self,
                    format!("field pos {pos} + width {width} exceeds 32 bits"),
                ))
            } else {
                Ok(())
            }
        };
        match *self {
            Insn::Trap { vector } if vector >= crate::VECTOR_COUNT as u8 => Err(
                ValidateInsnError::new(self, format!("trap vector {vector} not in 0..32")),
            ),
            Insn::Lea { addr, .. } | Insn::LdAbs { addr, .. } | Insn::StAbs { addr, .. } => {
                if addr & !ADDR_MASK != 0 {
                    Err(ValidateInsnError::new(
                        self,
                        format!("address {addr:#x} exceeds 20 bits"),
                    ))
                } else {
                    Ok(())
                }
            }
            Insn::Jmp { target } | Insn::J { target, .. } | Insn::Call { target } => {
                check_addr(target)
            }
            Insn::ShlI { sh, .. } | Insn::ShrI { sh, .. } | Insn::SarI { sh, .. } if sh > 31 => {
                Err(ValidateInsnError::new(
                    self,
                    format!("shift amount {sh} not in 0..=31"),
                ))
            }
            Insn::Insert {
                src, pos, width, ..
            } => {
                if let BitSrc::Imm(imm) = src {
                    if imm > 0x7F {
                        return Err(ValidateInsnError::new(
                            self,
                            format!("insert immediate {imm} exceeds 7 bits"),
                        ));
                    }
                }
                check_field(pos, width)
            }
            Insn::Extract { pos, width, .. } => check_field(pos, width),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for Insn {
    /// Formats the instruction in canonical assembler syntax, e.g.
    /// `INSERT d14, d14, #8, 0, 5`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Nop => write!(f, "NOP"),
            Insn::Halt { code } => write!(f, "HALT #{code}"),
            Insn::Trap { vector } => write!(f, "TRAP #{vector}"),
            Insn::Dbg { tag } => write!(f, "DBG #{tag}"),
            Insn::MovI { rd, imm } => write!(f, "MOVI {rd}, #{imm:#x}"),
            Insn::MovHi { rd, imm } => write!(f, "MOVHI {rd}, #{imm:#x}"),
            Insn::Mov { rd, ra } => write!(f, "MOV {rd}, {ra}"),
            Insn::MovDa { rd, ab } => write!(f, "MOVDA {rd}, {ab}"),
            Insn::MovAd { ad, rb } => write!(f, "MOVAD {ad}, {rb}"),
            Insn::MovAa { ad, ab } => write!(f, "MOVAA {ad}, {ab}"),
            Insn::Lea { ad, addr } => write!(f, "LEA {ad}, {addr:#x}"),
            Insn::Ld { rd, ab, off } => write!(f, "LD {rd}, [{ab}{off:+}]"),
            Insn::LdB { rd, ab, off } => write!(f, "LDB {rd}, [{ab}{off:+}]"),
            Insn::St { ab, off, rs } => write!(f, "ST [{ab}{off:+}], {rs}"),
            Insn::StB { ab, off, rs } => write!(f, "STB [{ab}{off:+}], {rs}"),
            Insn::LdAbs { rd, addr } => write!(f, "LDABS {rd}, [{addr:#x}]"),
            Insn::StAbs { addr, rs } => write!(f, "STABS [{addr:#x}], {rs}"),
            Insn::Add { rd, ra, rb } => write!(f, "ADD {rd}, {ra}, {rb}"),
            Insn::AddI { rd, ra, imm } => write!(f, "ADDI {rd}, {ra}, #{imm}"),
            Insn::Sub { rd, ra, rb } => write!(f, "SUB {rd}, {ra}, {rb}"),
            Insn::Mul { rd, ra, rb } => write!(f, "MUL {rd}, {ra}, {rb}"),
            Insn::And { rd, ra, rb } => write!(f, "AND {rd}, {ra}, {rb}"),
            Insn::AndI { rd, ra, imm } => write!(f, "ANDI {rd}, {ra}, #{imm:#x}"),
            Insn::Or { rd, ra, rb } => write!(f, "OR {rd}, {ra}, {rb}"),
            Insn::OrI { rd, ra, imm } => write!(f, "ORI {rd}, {ra}, #{imm:#x}"),
            Insn::Xor { rd, ra, rb } => write!(f, "XOR {rd}, {ra}, {rb}"),
            Insn::XorI { rd, ra, imm } => write!(f, "XORI {rd}, {ra}, #{imm:#x}"),
            Insn::Shl { rd, ra, rb } => write!(f, "SHL {rd}, {ra}, {rb}"),
            Insn::ShlI { rd, ra, sh } => write!(f, "SHLI {rd}, {ra}, #{sh}"),
            Insn::Shr { rd, ra, rb } => write!(f, "SHR {rd}, {ra}, {rb}"),
            Insn::ShrI { rd, ra, sh } => write!(f, "SHRI {rd}, {ra}, #{sh}"),
            Insn::SarI { rd, ra, sh } => write!(f, "SARI {rd}, {ra}, #{sh}"),
            Insn::Not { rd, ra } => write!(f, "NOT {rd}, {ra}"),
            Insn::Neg { rd, ra } => write!(f, "NEG {rd}, {ra}"),
            Insn::Cmp { ra, rb } => write!(f, "CMP {ra}, {rb}"),
            Insn::CmpI { ra, imm } => write!(f, "CMPI {ra}, #{imm}"),
            Insn::Insert {
                rd,
                ra,
                src,
                pos,
                width,
            } => match src {
                BitSrc::Reg(r) => write!(f, "INSERT {rd}, {ra}, {r}, {pos}, {width}"),
                BitSrc::Imm(v) => write!(f, "INSERT {rd}, {ra}, #{v}, {pos}, {width}"),
            },
            Insn::Extract { rd, ra, pos, width } => {
                write!(f, "EXTRACT {rd}, {ra}, {pos}, {width}")
            }
            Insn::Jmp { target } => write!(f, "JMP {target:#x}"),
            Insn::J { cond, target } => write!(f, "J{cond} {target:#x}"),
            Insn::Call { target } => write!(f, "CALL {target:#x}"),
            Insn::CallR { ab } => write!(f, "CALL {ab}"),
            Insn::Ret => write!(f, "RETURN"),
            Insn::RetI => write!(f, "RETI"),
            Insn::Push { rs } => write!(f, "PUSH {rs}"),
            Insn::Pop { rd } => write!(f, "POP {rd}"),
            Insn::PushA { ab } => write!(f, "PUSHA {ab}"),
            Insn::PopA { ad } => write!(f, "POPA {ad}"),
            Insn::Ei => write!(f, "EI"),
            Insn::Di => write!(f, "DI"),
            Insn::AddA { ad, imm } => write!(f, "ADDA {ad}, #{imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_insert_is_valid() {
        // INSERT d14, d14, TEST_PAGE(=8), PAGE_FIELD_START_POSITION(=0),
        // PAGE_FIELD_SIZE(=5) — the exact Figure 6 instruction.
        let insn = Insn::Insert {
            rd: DataReg::D14,
            ra: DataReg::D14,
            src: BitSrc::Imm(8),
            pos: 0,
            width: 5,
        };
        assert!(insn.validate().is_ok());
        assert_eq!(insn.to_string(), "INSERT d14, d14, #8, 0, 5");
    }

    #[test]
    fn insert_field_overflow_rejected() {
        let insn = Insn::Insert {
            rd: DataReg::D0,
            ra: DataReg::D0,
            src: BitSrc::Imm(1),
            pos: 30,
            width: 5,
        };
        let err = insn.validate().unwrap_err();
        assert!(err.reason().contains("exceeds 32 bits"), "{err}");
    }

    #[test]
    fn insert_zero_width_rejected() {
        let insn = Insn::Insert {
            rd: DataReg::D0,
            ra: DataReg::D0,
            src: BitSrc::Imm(0),
            pos: 0,
            width: 0,
        };
        assert!(insn.validate().is_err());
    }

    #[test]
    fn insert_wide_immediate_rejected() {
        let insn = Insn::Insert {
            rd: DataReg::D0,
            ra: DataReg::D0,
            src: BitSrc::Imm(200),
            pos: 0,
            width: 8,
        };
        assert!(insn.validate().is_err());
    }

    #[test]
    fn full_width_insert_allowed() {
        let insn = Insn::Insert {
            rd: DataReg::D1,
            ra: DataReg::D2,
            src: BitSrc::Reg(DataReg::D3),
            pos: 0,
            width: 32,
        };
        assert!(insn.validate().is_ok());
    }

    #[test]
    fn address_range_enforced() {
        assert!(Insn::Lea {
            ad: AddrReg::A12,
            addr: 0xF_FFFC
        }
        .validate()
        .is_ok());
        assert!(Insn::Lea {
            ad: AddrReg::A12,
            addr: 0x10_0000
        }
        .validate()
        .is_err());
        assert!(Insn::Jmp { target: 0x10_0000 }.validate().is_err());
        assert!(
            Insn::Jmp { target: 0x102 }.validate().is_err(),
            "misaligned jump"
        );
        assert!(Insn::Jmp { target: 0x104 }.validate().is_ok());
    }

    #[test]
    fn trap_vector_range_enforced() {
        assert!(Insn::Trap { vector: 31 }.validate().is_ok());
        assert!(Insn::Trap { vector: 32 }.validate().is_err());
    }

    #[test]
    fn shift_range_enforced() {
        assert!(Insn::ShlI {
            rd: DataReg::D0,
            ra: DataReg::D0,
            sh: 31
        }
        .validate()
        .is_ok());
        assert!(Insn::ShlI {
            rd: DataReg::D0,
            ra: DataReg::D0,
            sh: 32
        }
        .validate()
        .is_err());
    }

    #[test]
    fn control_flow_classification() {
        assert!(Insn::Ret.is_control_flow());
        assert!(Insn::Call { target: 0 }.is_control_flow());
        assert!(!Insn::Add {
            rd: DataReg::D0,
            ra: DataReg::D0,
            rb: DataReg::D0
        }
        .is_control_flow());
    }

    #[test]
    fn memory_classification() {
        assert!(Insn::Push { rs: DataReg::D0 }.touches_memory());
        assert!(Insn::StAbs {
            addr: 0,
            rs: DataReg::D0
        }
        .touches_memory());
        assert!(!Insn::Mov {
            rd: DataReg::D0,
            ra: DataReg::D1
        }
        .touches_memory());
    }

    #[test]
    fn display_mentions_mnemonic() {
        let insn = Insn::CallR { ab: AddrReg::A12 };
        assert_eq!(insn.to_string(), "CALL a12");
        assert_eq!(insn.mnemonic(), "CALL");
    }
}
