//! Branch condition codes evaluated against the [`Psw`](crate::Psw) flags.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::Psw;

/// A branch condition, as used by the `J<cond>` family of instructions.
///
/// Signed comparisons (`Lt`, `Ge`, `Gt`, `Le`) combine the negative and
/// overflow flags; `Cs`/`Cc` expose the carry flag for unsigned tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Cond {
    /// Equal: `Z`.
    Eq = 0,
    /// Not equal: `!Z`.
    Ne = 1,
    /// Signed less-than: `N != V`.
    Lt = 2,
    /// Signed greater-or-equal: `N == V`.
    Ge = 3,
    /// Signed greater-than: `!Z && N == V`.
    Gt = 4,
    /// Signed less-or-equal: `Z || N != V`.
    Le = 5,
    /// Carry set (unsigned borrow/overflow indicator).
    Cs = 6,
    /// Carry clear.
    Cc = 7,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 8] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Ge,
        Cond::Gt,
        Cond::Le,
        Cond::Cs,
        Cond::Cc,
    ];

    /// The 3-bit encoding of the condition.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 3-bit condition code.
    pub fn from_code(code: u8) -> Option<Cond> {
        Cond::ALL.get(usize::from(code)).copied()
    }

    /// Evaluates the condition against a set of flags.
    ///
    /// ```
    /// use advm_isa::{Cond, Psw};
    ///
    /// let mut psw = Psw::default();
    /// psw.set_zero(true);
    /// assert!(Cond::Eq.holds(psw));
    /// assert!(!Cond::Ne.holds(psw));
    /// ```
    pub fn holds(self, psw: Psw) -> bool {
        let (z, n, c, v) = (psw.zero(), psw.negative(), psw.carry(), psw.overflow());
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Lt => n != v,
            Cond::Ge => n == v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Cs => c,
            Cond::Cc => !c,
        }
    }

    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Cs => Cond::Cc,
            Cond::Cc => Cond::Cs,
        }
    }

    /// The assembler mnemonic suffix (`JEQ`, `JNE`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "EQ",
            Cond::Ne => "NE",
            Cond::Lt => "LT",
            Cond::Ge => "GE",
            Cond::Gt => "GT",
            Cond::Le => "LE",
            Cond::Cs => "CS",
            Cond::Cc => "CC",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

impl FromStr for Cond {
    type Err = ParseCondError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        Cond::ALL
            .into_iter()
            .find(|c| c.suffix() == upper)
            .ok_or_else(|| ParseCondError { text: s.to_owned() })
    }
}

/// Error returned when parsing a condition-code suffix fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCondError {
    text: String,
}

impl fmt::Display for ParseCondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid condition code `{}`", self.text)
    }
}

impl std::error::Error for ParseCondError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn psw(z: bool, n: bool, c: bool, v: bool) -> Psw {
        let mut p = Psw::default();
        p.set_zero(z);
        p.set_negative(n);
        p.set_carry(c);
        p.set_overflow(v);
        p
    }

    #[test]
    fn code_roundtrips() {
        for cond in Cond::ALL {
            assert_eq!(Cond::from_code(cond.code()), Some(cond));
        }
        assert_eq!(Cond::from_code(8), None);
    }

    #[test]
    fn negation_is_involutive_and_exclusive() {
        // All 16 flag combinations: a condition and its negation never agree.
        for bits in 0..16u8 {
            let p = psw(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
            for cond in Cond::ALL {
                assert_eq!(cond.negate().negate(), cond);
                assert_ne!(
                    cond.holds(p),
                    cond.negate().holds(p),
                    "{cond} on {bits:04b}"
                );
            }
        }
    }

    #[test]
    fn signed_comparison_semantics() {
        // 3 < 5: CMP computes 3 - 5 = -2 => N=1, V=0.
        let lt = psw(false, true, true, false);
        assert!(Cond::Lt.holds(lt));
        assert!(!Cond::Ge.holds(lt));
        assert!(Cond::Le.holds(lt));
        assert!(!Cond::Gt.holds(lt));

        // 5 == 5 => Z=1.
        let eq = psw(true, false, false, false);
        assert!(Cond::Eq.holds(eq));
        assert!(Cond::Ge.holds(eq));
        assert!(Cond::Le.holds(eq));
        assert!(!Cond::Gt.holds(eq));
        assert!(!Cond::Lt.holds(eq));
    }

    #[test]
    fn overflow_flips_signed_order() {
        // i32::MIN < 1, computed as MIN - 1 which overflows: N=0, V=1.
        let p = psw(false, false, false, true);
        assert!(Cond::Lt.holds(p));
    }

    #[test]
    fn parse_matches_suffix() {
        for cond in Cond::ALL {
            assert_eq!(cond.suffix().parse::<Cond>().unwrap(), cond);
            assert_eq!(cond.suffix().to_lowercase().parse::<Cond>().unwrap(), cond);
        }
        assert!("XX".parse::<Cond>().is_err());
    }
}
