//! Binary encoding and decoding of SC88 instructions.
//!
//! Every instruction occupies one 32-bit word with the opcode in bits
//! `[31:26]`. Operand fields are placed at fixed positions per format:
//!
//! | field | bits | used by |
//! |-------|------|---------|
//! | `rd` / `ad` / `rs` | `[25:22]` | register destinations/sources |
//! | `ra` / `ab` | `[21:18]` | first source / base register |
//! | `rb` | `[17:14]` | second source register |
//! | `imm16` / `off16` | `[15:0]` | immediates and offsets |
//! | `addr20` | `[19:0]` | absolute addresses |
//! | `cond` | `[24:22]` | conditional jumps |
//! | `flag,src7,pos5,width5` | `[17:0]` | `INSERT` bit-field operands |
//!
//! Decoding is **canonical**: unused bits must be zero, so
//! `encode(decode(w)) == w` holds for every word that decodes at all. This
//! strictness models what a gate-level netlist would do with X-propagation
//! on undefined encodings and gives the simulator a precise illegal-
//! instruction trap condition.

use std::fmt;

use crate::{AddrReg, BitSrc, Cond, DataReg, Insn};

// Opcode space. Gaps are reserved (decode to `UnknownOpcode`).
const OP_NOP: u32 = 0x00;
const OP_HALT: u32 = 0x01;
const OP_TRAP: u32 = 0x02;
const OP_DBG: u32 = 0x03;
const OP_MOVI: u32 = 0x04;
const OP_MOVHI: u32 = 0x05;
const OP_MOV: u32 = 0x06;
const OP_MOVDA: u32 = 0x07;
const OP_MOVAD: u32 = 0x08;
const OP_MOVAA: u32 = 0x09;
const OP_LEA: u32 = 0x0A;
const OP_LD: u32 = 0x0B;
const OP_LDB: u32 = 0x0C;
const OP_ST: u32 = 0x0D;
const OP_STB: u32 = 0x0E;
const OP_LDABS: u32 = 0x0F;
const OP_STABS: u32 = 0x10;
const OP_ADD: u32 = 0x11;
const OP_ADDI: u32 = 0x12;
const OP_SUB: u32 = 0x13;
const OP_MUL: u32 = 0x14;
const OP_AND: u32 = 0x15;
const OP_ANDI: u32 = 0x16;
const OP_OR: u32 = 0x17;
const OP_ORI: u32 = 0x18;
const OP_XOR: u32 = 0x19;
const OP_XORI: u32 = 0x1A;
const OP_SHL: u32 = 0x1B;
const OP_SHLI: u32 = 0x1C;
const OP_SHR: u32 = 0x1D;
const OP_SHRI: u32 = 0x1E;
const OP_SARI: u32 = 0x1F;
const OP_NOT: u32 = 0x20;
const OP_NEG: u32 = 0x21;
const OP_CMP: u32 = 0x22;
const OP_CMPI: u32 = 0x23;
const OP_INSERT: u32 = 0x24;
const OP_EXTRACT: u32 = 0x25;
const OP_JMP: u32 = 0x26;
const OP_JCOND: u32 = 0x27;
const OP_CALL: u32 = 0x28;
const OP_CALLR: u32 = 0x29;
const OP_RET: u32 = 0x2A;
const OP_RETI: u32 = 0x2B;
const OP_PUSH: u32 = 0x2C;
const OP_POP: u32 = 0x2D;
const OP_PUSHA: u32 = 0x2E;
const OP_POPA: u32 = 0x2F;
const OP_EI: u32 = 0x30;
const OP_DI: u32 = 0x31;
const OP_ADDA: u32 = 0x32;

/// Error returned by [`decode`] for words that are not canonical SC88
/// instructions. The simulator raises an illegal-instruction trap on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name an instruction.
    UnknownOpcode {
        /// The 6-bit opcode value.
        opcode: u8,
    },
    /// A register index field held an unrepresentable value (impossible for
    /// 4-bit fields, kept for forward compatibility).
    BadRegister,
    /// The condition field of a conditional jump is invalid.
    BadCondition {
        /// The raw 3-bit condition code.
        code: u8,
    },
    /// An `INSERT`/`EXTRACT` bit-field range exceeds the 32-bit register.
    BadBitField {
        /// Field position.
        pos: u8,
        /// Field width.
        width: u8,
    },
    /// Bits outside the instruction's defined fields were set.
    NonCanonical {
        /// The offending word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { opcode } => {
                write!(f, "unknown opcode {opcode:#04x}")
            }
            DecodeError::BadRegister => write!(f, "invalid register index"),
            DecodeError::BadCondition { code } => {
                write!(f, "invalid condition code {code}")
            }
            DecodeError::BadBitField { pos, width } => {
                write!(f, "bit field pos {pos} width {width} exceeds 32 bits")
            }
            DecodeError::NonCanonical { word } => {
                write!(f, "non-canonical encoding {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const fn op(word: u32) -> u32 {
    word << 26
}

fn rd(r: DataReg) -> u32 {
    u32::from(r.index()) << 22
}

fn ra(r: DataReg) -> u32 {
    u32::from(r.index()) << 18
}

fn rb(r: DataReg) -> u32 {
    u32::from(r.index()) << 14
}

fn ad(r: AddrReg) -> u32 {
    u32::from(r.index()) << 22
}

fn ab(r: AddrReg) -> u32 {
    u32::from(r.index()) << 18
}

fn imm16(v: u16) -> u32 {
    u32::from(v)
}

fn off16(v: i16) -> u32 {
    u32::from(v as u16)
}

/// Encodes an instruction to its 32-bit word.
///
/// # Panics
///
/// Panics if the instruction fails [`Insn::validate`]; the assembler
/// validates before encoding, so an invalid instruction reaching this
/// point is a caller bug.
///
/// ```
/// use advm_isa::{encode, Insn};
///
/// assert_eq!(encode(&Insn::Nop), 0);
/// ```
pub fn encode(insn: &Insn) -> u32 {
    if let Err(err) = insn.validate() {
        panic!("encode called with invalid instruction: {err}");
    }
    match *insn {
        Insn::Nop => op(OP_NOP),
        Insn::Halt { code } => op(OP_HALT) | u32::from(code),
        Insn::Trap { vector } => op(OP_TRAP) | u32::from(vector),
        Insn::Dbg { tag } => op(OP_DBG) | u32::from(tag),
        Insn::MovI { rd: d, imm } => op(OP_MOVI) | rd(d) | imm16(imm),
        Insn::MovHi { rd: d, imm } => op(OP_MOVHI) | rd(d) | imm16(imm),
        Insn::Mov { rd: d, ra: a } => op(OP_MOV) | rd(d) | ra(a),
        Insn::MovDa { rd: d, ab: b } => op(OP_MOVDA) | rd(d) | ab(b),
        Insn::MovAd { ad: d, rb: b } => op(OP_MOVAD) | ad(d) | (u32::from(b.index()) << 18),
        Insn::MovAa { ad: d, ab: b } => op(OP_MOVAA) | ad(d) | ab(b),
        Insn::Lea { ad: d, addr } => op(OP_LEA) | ad(d) | addr,
        Insn::Ld { rd: d, ab: b, off } => op(OP_LD) | rd(d) | ab(b) | off16(off),
        Insn::LdB { rd: d, ab: b, off } => op(OP_LDB) | rd(d) | ab(b) | off16(off),
        Insn::St { ab: b, off, rs } => op(OP_ST) | rd(rs) | ab(b) | off16(off),
        Insn::StB { ab: b, off, rs } => op(OP_STB) | rd(rs) | ab(b) | off16(off),
        Insn::LdAbs { rd: d, addr } => op(OP_LDABS) | rd(d) | addr,
        Insn::StAbs { addr, rs } => op(OP_STABS) | rd(rs) | addr,
        Insn::Add {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_ADD) | rd(d) | ra(a) | rb(b),
        Insn::AddI { rd: d, ra: a, imm } => op(OP_ADDI) | rd(d) | ra(a) | off16(imm),
        Insn::Sub {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_SUB) | rd(d) | ra(a) | rb(b),
        Insn::Mul {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_MUL) | rd(d) | ra(a) | rb(b),
        Insn::And {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_AND) | rd(d) | ra(a) | rb(b),
        Insn::AndI { rd: d, ra: a, imm } => op(OP_ANDI) | rd(d) | ra(a) | imm16(imm),
        Insn::Or {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_OR) | rd(d) | ra(a) | rb(b),
        Insn::OrI { rd: d, ra: a, imm } => op(OP_ORI) | rd(d) | ra(a) | imm16(imm),
        Insn::Xor {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_XOR) | rd(d) | ra(a) | rb(b),
        Insn::XorI { rd: d, ra: a, imm } => op(OP_XORI) | rd(d) | ra(a) | imm16(imm),
        Insn::Shl {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_SHL) | rd(d) | ra(a) | rb(b),
        Insn::ShlI { rd: d, ra: a, sh } => op(OP_SHLI) | rd(d) | ra(a) | u32::from(sh),
        Insn::Shr {
            rd: d,
            ra: a,
            rb: b,
        } => op(OP_SHR) | rd(d) | ra(a) | rb(b),
        Insn::ShrI { rd: d, ra: a, sh } => op(OP_SHRI) | rd(d) | ra(a) | u32::from(sh),
        Insn::SarI { rd: d, ra: a, sh } => op(OP_SARI) | rd(d) | ra(a) | u32::from(sh),
        Insn::Not { rd: d, ra: a } => op(OP_NOT) | rd(d) | ra(a),
        Insn::Neg { rd: d, ra: a } => op(OP_NEG) | rd(d) | ra(a),
        Insn::Cmp { ra: a, rb: b } => op(OP_CMP) | ra(a) | rb(b),
        Insn::CmpI { ra: a, imm } => op(OP_CMPI) | (u32::from(a.index()) << 22) | off16(imm),
        Insn::Insert {
            rd: d,
            ra: a,
            src,
            pos,
            width,
        } => {
            let (flag, src_bits) = match src {
                BitSrc::Reg(r) => (0u32, u32::from(r.index())),
                BitSrc::Imm(v) => (1u32, u32::from(v)),
            };
            op(OP_INSERT)
                | rd(d)
                | ra(a)
                | (flag << 17)
                | (src_bits << 10)
                | (u32::from(pos) << 5)
                | u32::from(width - 1)
        }
        Insn::Extract {
            rd: d,
            ra: a,
            pos,
            width,
        } => op(OP_EXTRACT) | rd(d) | ra(a) | (u32::from(pos) << 5) | u32::from(width - 1),
        Insn::Jmp { target } => op(OP_JMP) | target,
        Insn::J { cond, target } => op(OP_JCOND) | (u32::from(cond.code()) << 22) | target,
        Insn::Call { target } => op(OP_CALL) | target,
        Insn::CallR { ab: b } => op(OP_CALLR) | ad(b),
        Insn::Ret => op(OP_RET),
        Insn::RetI => op(OP_RETI),
        Insn::Push { rs } => op(OP_PUSH) | rd(rs),
        Insn::Pop { rd: d } => op(OP_POP) | rd(d),
        Insn::PushA { ab: b } => op(OP_PUSHA) | ad(b),
        Insn::PopA { ad: d } => op(OP_POPA) | ad(d),
        Insn::Ei => op(OP_EI),
        Insn::Di => op(OP_DI),
        Insn::AddA { ad: d, imm } => op(OP_ADDA) | ad(d) | off16(imm),
    }
}

/// Field extractor that tracks which bits have been consumed so the
/// decoder can reject non-canonical encodings.
struct Fields {
    word: u32,
    used: u32,
}

impl Fields {
    fn new(word: u32) -> Self {
        // The opcode bits are always consumed.
        Self {
            word,
            used: 0x3F << 26,
        }
    }

    fn bits(&mut self, lo: u32, len: u32) -> u32 {
        let mask = ((1u64 << len) - 1) as u32;
        self.used |= mask << lo;
        (self.word >> lo) & mask
    }

    fn data_reg(&mut self, lo: u32) -> DataReg {
        DataReg::from_index(self.bits(lo, 4) as u8).expect("4-bit index is always in range")
    }

    fn addr_reg(&mut self, lo: u32) -> AddrReg {
        AddrReg::from_index(self.bits(lo, 4) as u8).expect("4-bit index is always in range")
    }

    fn imm16(&mut self) -> u16 {
        self.bits(0, 16) as u16
    }

    fn off16(&mut self) -> i16 {
        self.bits(0, 16) as u16 as i16
    }

    fn addr20(&mut self) -> u32 {
        self.bits(0, 20)
    }

    /// Finishes decoding: all unconsumed bits must be zero.
    fn finish(self, insn: Insn) -> Result<Insn, DecodeError> {
        if self.word & !self.used != 0 {
            Err(DecodeError::NonCanonical { word: self.word })
        } else {
            Ok(insn)
        }
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the opcode is unknown, an operand field is
/// invalid, or any bit outside the instruction's defined fields is set
/// (see the module docs on canonical encodings).
///
/// ```
/// use advm_isa::{decode, encode, Insn};
///
/// # fn main() -> Result<(), advm_isa::DecodeError> {
/// let word = encode(&Insn::Ret);
/// assert_eq!(decode(word)?, Insn::Ret);
/// # Ok(())
/// # }
/// ```
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let opcode = word >> 26;
    let mut f = Fields::new(word);
    match opcode {
        OP_NOP => f.finish(Insn::Nop),
        OP_HALT => {
            let code = f.bits(0, 8) as u8;
            f.finish(Insn::Halt { code })
        }
        OP_TRAP => {
            let vector = f.bits(0, 8) as u8;
            if u32::from(vector) >= crate::VECTOR_COUNT {
                return Err(DecodeError::NonCanonical { word });
            }
            f.finish(Insn::Trap { vector })
        }
        OP_DBG => {
            let tag = f.bits(0, 8) as u8;
            f.finish(Insn::Dbg { tag })
        }
        OP_MOVI => {
            let d = f.data_reg(22);
            let imm = f.imm16();
            f.finish(Insn::MovI { rd: d, imm })
        }
        OP_MOVHI => {
            let d = f.data_reg(22);
            let imm = f.imm16();
            f.finish(Insn::MovHi { rd: d, imm })
        }
        OP_MOV => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            f.finish(Insn::Mov { rd: d, ra: a })
        }
        OP_MOVDA => {
            let d = f.data_reg(22);
            let b = f.addr_reg(18);
            f.finish(Insn::MovDa { rd: d, ab: b })
        }
        OP_MOVAD => {
            let d = f.addr_reg(22);
            let b = f.data_reg(18);
            f.finish(Insn::MovAd { ad: d, rb: b })
        }
        OP_MOVAA => {
            let d = f.addr_reg(22);
            let b = f.addr_reg(18);
            f.finish(Insn::MovAa { ad: d, ab: b })
        }
        OP_LEA => {
            let d = f.addr_reg(22);
            let addr = f.addr20();
            f.finish(Insn::Lea { ad: d, addr })
        }
        OP_LD => {
            let d = f.data_reg(22);
            let b = f.addr_reg(18);
            let off = f.off16();
            f.finish(Insn::Ld { rd: d, ab: b, off })
        }
        OP_LDB => {
            let d = f.data_reg(22);
            let b = f.addr_reg(18);
            let off = f.off16();
            f.finish(Insn::LdB { rd: d, ab: b, off })
        }
        OP_ST => {
            let rs = f.data_reg(22);
            let b = f.addr_reg(18);
            let off = f.off16();
            f.finish(Insn::St { ab: b, off, rs })
        }
        OP_STB => {
            let rs = f.data_reg(22);
            let b = f.addr_reg(18);
            let off = f.off16();
            f.finish(Insn::StB { ab: b, off, rs })
        }
        OP_LDABS => {
            let d = f.data_reg(22);
            let addr = f.addr20();
            f.finish(Insn::LdAbs { rd: d, addr })
        }
        OP_STABS => {
            let rs = f.data_reg(22);
            let addr = f.addr20();
            f.finish(Insn::StAbs { addr, rs })
        }
        OP_ADD | OP_SUB | OP_MUL | OP_AND | OP_OR | OP_XOR | OP_SHL | OP_SHR => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            let b = f.data_reg(14);
            f.finish(match opcode {
                OP_ADD => Insn::Add {
                    rd: d,
                    ra: a,
                    rb: b,
                },
                OP_SUB => Insn::Sub {
                    rd: d,
                    ra: a,
                    rb: b,
                },
                OP_MUL => Insn::Mul {
                    rd: d,
                    ra: a,
                    rb: b,
                },
                OP_AND => Insn::And {
                    rd: d,
                    ra: a,
                    rb: b,
                },
                OP_OR => Insn::Or {
                    rd: d,
                    ra: a,
                    rb: b,
                },
                OP_XOR => Insn::Xor {
                    rd: d,
                    ra: a,
                    rb: b,
                },
                OP_SHL => Insn::Shl {
                    rd: d,
                    ra: a,
                    rb: b,
                },
                _ => Insn::Shr {
                    rd: d,
                    ra: a,
                    rb: b,
                },
            })
        }
        OP_ADDI => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            let imm = f.off16();
            f.finish(Insn::AddI { rd: d, ra: a, imm })
        }
        OP_ANDI | OP_ORI | OP_XORI => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            let imm = f.imm16();
            f.finish(match opcode {
                OP_ANDI => Insn::AndI { rd: d, ra: a, imm },
                OP_ORI => Insn::OrI { rd: d, ra: a, imm },
                _ => Insn::XorI { rd: d, ra: a, imm },
            })
        }
        OP_SHLI | OP_SHRI | OP_SARI => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            let sh = f.bits(0, 5) as u8;
            f.finish(match opcode {
                OP_SHLI => Insn::ShlI { rd: d, ra: a, sh },
                OP_SHRI => Insn::ShrI { rd: d, ra: a, sh },
                _ => Insn::SarI { rd: d, ra: a, sh },
            })
        }
        OP_NOT => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            f.finish(Insn::Not { rd: d, ra: a })
        }
        OP_NEG => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            f.finish(Insn::Neg { rd: d, ra: a })
        }
        OP_CMP => {
            let a = f.data_reg(18);
            let b = f.data_reg(14);
            f.finish(Insn::Cmp { ra: a, rb: b })
        }
        OP_CMPI => {
            let a = f.data_reg(22);
            let imm = f.off16();
            f.finish(Insn::CmpI { ra: a, imm })
        }
        OP_INSERT => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            let flag = f.bits(17, 1);
            let src_bits = f.bits(10, 7);
            let pos = f.bits(5, 5) as u8;
            let width = f.bits(0, 5) as u8 + 1;
            if u32::from(pos) + u32::from(width) > 32 {
                return Err(DecodeError::BadBitField { pos, width });
            }
            let src = if flag == 1 {
                BitSrc::Imm(src_bits as u8)
            } else {
                if src_bits > 0xF {
                    return Err(DecodeError::BadRegister);
                }
                BitSrc::Reg(
                    DataReg::from_index(src_bits as u8)
                        .expect("masked 4-bit index is always in range"),
                )
            };
            f.finish(Insn::Insert {
                rd: d,
                ra: a,
                src,
                pos,
                width,
            })
        }
        OP_EXTRACT => {
            let d = f.data_reg(22);
            let a = f.data_reg(18);
            let pos = f.bits(5, 5) as u8;
            let width = f.bits(0, 5) as u8 + 1;
            if u32::from(pos) + u32::from(width) > 32 {
                return Err(DecodeError::BadBitField { pos, width });
            }
            f.finish(Insn::Extract {
                rd: d,
                ra: a,
                pos,
                width,
            })
        }
        OP_JMP => {
            let target = f.addr20();
            if !target.is_multiple_of(4) {
                return Err(DecodeError::NonCanonical { word });
            }
            f.finish(Insn::Jmp { target })
        }
        OP_JCOND => {
            let code = f.bits(22, 3) as u8;
            let cond = Cond::from_code(code).ok_or(DecodeError::BadCondition { code })?;
            let target = f.addr20();
            if !target.is_multiple_of(4) {
                return Err(DecodeError::NonCanonical { word });
            }
            f.finish(Insn::J { cond, target })
        }
        OP_CALL => {
            let target = f.addr20();
            if !target.is_multiple_of(4) {
                return Err(DecodeError::NonCanonical { word });
            }
            f.finish(Insn::Call { target })
        }
        OP_CALLR => {
            let b = f.addr_reg(22);
            f.finish(Insn::CallR { ab: b })
        }
        OP_RET => f.finish(Insn::Ret),
        OP_RETI => f.finish(Insn::RetI),
        OP_PUSH => {
            let rs = f.data_reg(22);
            f.finish(Insn::Push { rs })
        }
        OP_POP => {
            let d = f.data_reg(22);
            f.finish(Insn::Pop { rd: d })
        }
        OP_PUSHA => {
            let b = f.addr_reg(22);
            f.finish(Insn::PushA { ab: b })
        }
        OP_POPA => {
            let d = f.addr_reg(22);
            f.finish(Insn::PopA { ad: d })
        }
        OP_EI => f.finish(Insn::Ei),
        OP_DI => f.finish(Insn::Di),
        OP_ADDA => {
            let d = f.addr_reg(22);
            let imm = f.off16();
            f.finish(Insn::AddA { ad: d, imm })
        }
        other => Err(DecodeError::UnknownOpcode {
            opcode: other as u8,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cond;

    fn sample_insns() -> Vec<Insn> {
        use DataReg::*;
        vec![
            Insn::Nop,
            Insn::Halt { code: 0x5A },
            Insn::Trap { vector: 9 },
            Insn::Dbg { tag: 0xFF },
            Insn::MovI {
                rd: D3,
                imm: 0xBEEF,
            },
            Insn::MovHi {
                rd: D3,
                imm: 0xDEAD,
            },
            Insn::Mov { rd: D1, ra: D2 },
            Insn::MovDa {
                rd: D4,
                ab: AddrReg::A7,
            },
            Insn::MovAd {
                ad: AddrReg::A9,
                rb: D5,
            },
            Insn::MovAa {
                ad: AddrReg::A1,
                ab: AddrReg::A2,
            },
            Insn::Lea {
                ad: AddrReg::A12,
                addr: 0xE_0100,
            },
            Insn::Ld {
                rd: D6,
                ab: AddrReg::A3,
                off: -8,
            },
            Insn::LdB {
                rd: D6,
                ab: AddrReg::A3,
                off: 127,
            },
            Insn::St {
                ab: AddrReg::A3,
                off: 4,
                rs: D7,
            },
            Insn::StB {
                ab: AddrReg::A3,
                off: -1,
                rs: D7,
            },
            Insn::LdAbs {
                rd: D8,
                addr: 0x4_0000,
            },
            Insn::StAbs {
                addr: 0xE_FF00,
                rs: D9,
            },
            Insn::Add {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::AddI {
                rd: D0,
                ra: D1,
                imm: -300,
            },
            Insn::Sub {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::Mul {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::And {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::AndI {
                rd: D0,
                ra: D1,
                imm: 0xFF00,
            },
            Insn::Or {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::OrI {
                rd: D0,
                ra: D1,
                imm: 0x00FF,
            },
            Insn::Xor {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::XorI {
                rd: D0,
                ra: D1,
                imm: 0xAAAA,
            },
            Insn::Shl {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::ShlI {
                rd: D0,
                ra: D1,
                sh: 31,
            },
            Insn::Shr {
                rd: D0,
                ra: D1,
                rb: D2,
            },
            Insn::ShrI {
                rd: D0,
                ra: D1,
                sh: 1,
            },
            Insn::SarI {
                rd: D0,
                ra: D1,
                sh: 16,
            },
            Insn::Not { rd: D10, ra: D11 },
            Insn::Neg { rd: D10, ra: D11 },
            Insn::Cmp { ra: D12, rb: D13 },
            Insn::CmpI { ra: D12, imm: 42 },
            Insn::Insert {
                rd: D14,
                ra: D14,
                src: BitSrc::Imm(8),
                pos: 0,
                width: 5,
            },
            Insn::Insert {
                rd: D14,
                ra: D14,
                src: BitSrc::Reg(D2),
                pos: 27,
                width: 5,
            },
            Insn::Insert {
                rd: D1,
                ra: D2,
                src: BitSrc::Reg(D3),
                pos: 0,
                width: 32,
            },
            Insn::Extract {
                rd: D5,
                ra: D6,
                pos: 12,
                width: 9,
            },
            Insn::Jmp { target: 0x104 },
            Insn::J {
                cond: Cond::Ne,
                target: 0xFFC,
            },
            Insn::Call { target: 0x2000 },
            Insn::CallR { ab: AddrReg::A12 },
            Insn::Ret,
            Insn::RetI,
            Insn::Push { rs: D15 },
            Insn::Pop { rd: D15 },
            Insn::PushA { ab: AddrReg::A15 },
            Insn::PopA { ad: AddrReg::A15 },
            Insn::Ei,
            Insn::Di,
            Insn::AddA {
                ad: AddrReg::A4,
                imm: -4,
            },
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        for insn in sample_insns() {
            let word = encode(&insn);
            let back = decode(word).unwrap_or_else(|e| panic!("{insn}: {e}"));
            assert_eq!(back, insn, "word {word:#010x}");
            // Canonicality: re-encoding the decoded form gives the same word.
            assert_eq!(encode(&back), word);
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let insns = sample_insns();
        let mut words: Vec<u32> = insns.iter().map(encode).collect();
        words.sort_unstable();
        words.dedup();
        assert_eq!(
            words.len(),
            insns.len(),
            "two instructions share an encoding"
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(
            decode(0x3F << 26),
            Err(DecodeError::UnknownOpcode { opcode: 0x3F })
        );
    }

    #[test]
    fn junk_bits_rejected() {
        // RET with a stray operand bit set.
        let word = encode(&Insn::Ret) | 1;
        assert_eq!(decode(word), Err(DecodeError::NonCanonical { word }));
    }

    #[test]
    fn bad_condition_rejected() {
        // JCOND only defines 8 conditions in a 3-bit field, so every code is
        // valid; instead check a trap vector out of range is rejected.
        let word = op(OP_TRAP) | 32;
        assert!(decode(word).is_err());
    }

    #[test]
    fn insert_field_overflow_rejected_at_decode() {
        // Hand-build INSERT with pos=30, width=5 (width-1=4).
        let word = op(OP_INSERT) | (1 << 17) | (30 << 5) | 4;
        assert_eq!(
            decode(word),
            Err(DecodeError::BadBitField { pos: 30, width: 5 })
        );
    }

    #[test]
    fn insert_reg_src_high_bits_rejected() {
        // flag=0 (register source) but src7 has bits above the 4-bit index.
        let word = op(OP_INSERT) | (0x7F << 10) | 4;
        assert_eq!(decode(word), Err(DecodeError::BadRegister));
    }

    #[test]
    #[should_panic(expected = "invalid instruction")]
    fn encode_panics_on_invalid() {
        encode(&Insn::Lea {
            ad: AddrReg::A0,
            addr: 0xFFFF_FFFF,
        });
    }

    #[test]
    fn nop_is_all_zeros() {
        // Convenient property: zeroed memory decodes as NOP, like many
        // real ISAs choose deliberately... except we treat opcode 0 as NOP
        // by construction.
        assert_eq!(encode(&Insn::Nop), 0);
        assert_eq!(decode(0).unwrap(), Insn::Nop);
    }
}
