//! # advm-isa — the synthetic SC88 chip-card instruction set
//!
//! The ADVM paper (MacBeth, Heinz, Gray; DATE 2004) was developed for the
//! Infineon SLE88 chip-card controller, whose ISA is proprietary. This crate
//! defines **SC88**, a synthetic 32-bit chip-card ISA that preserves every
//! property the methodology relies on:
//!
//! * sixteen data registers `d0..d15` and sixteen address registers
//!   `a0..a15` (the paper's listings use `d14` and `A12`),
//! * a TriCore-style bit-field [`Insn::Insert`] instruction exactly as used
//!   in the paper's Figure 6 listing
//!   (`INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE`),
//! * `LOAD`/`STORE`/`CALL reg`/`RETURN` forms matching the Figure 7 listing,
//! * traps and interrupts so that the "Trap/Interrupt Handlers" global
//!   library of the paper's Figure 5 has something real to do.
//!
//! Instructions are fixed-width 32-bit words; [`encode`] and [`decode`]
//! round-trip every representable instruction.
//!
//! ```
//! use advm_isa::{Insn, DataReg, BitSrc, encode, decode};
//!
//! # fn main() -> Result<(), advm_isa::DecodeError> {
//! let insert = Insn::Insert {
//!     rd: DataReg::D14,
//!     ra: DataReg::D14,
//!     src: BitSrc::Imm(8),
//!     pos: 0,
//!     width: 5,
//! };
//! let word = encode(&insert);
//! assert_eq!(decode(word)?, insert);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cond;
mod encode;
mod insn;
mod psw;
mod reg;
mod traps;

pub use cond::{Cond, ParseCondError};
pub use encode::{decode, encode, DecodeError};
pub use insn::{BitSrc, Insn, ValidateInsnError};
pub use psw::Psw;
pub use reg::{AddrReg, DataReg, ParseRegError};
pub use traps::{
    vector_entry_addr, TrapKind, RESET_PC, VECTOR_BASE, VECTOR_COUNT, VECTOR_ENTRY_BYTES,
};

/// Width of one SC88 instruction in bytes. All instructions are one word.
pub const INSN_BYTES: u32 = 4;

/// Highest byte address representable by absolute-addressed instructions
/// (`LEA`, `LD.ABS`, `ST.ABS`, `JMP`, `CALL`): a 20-bit, 1 MiB space.
///
/// Chip-card controllers of the SLE88 era had well under 1 MiB of
/// addressable memory, so every architecturally visible address fits in a
/// single instruction word.
pub const ADDR_SPACE_BYTES: u32 = 1 << 20;

/// Mask for a valid absolute byte address.
pub const ADDR_MASK: u32 = ADDR_SPACE_BYTES - 1;
