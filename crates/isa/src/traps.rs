//! Trap and interrupt architecture.
//!
//! The paper's system-level environment (Figure 5) carries a global
//! "Trap Handlers" library shared by all module test environments. SC88
//! gives that library real hardware to talk to: a vector table in low
//! memory, hardware trap vectors for CPU faults, and a window of vectors
//! driven by the interrupt controller.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Byte address of the vector table. Entry `n` is a 32-bit handler address
/// at `VECTOR_BASE + n * VECTOR_ENTRY_BYTES`.
pub const VECTOR_BASE: u32 = 0x0000_0000;

/// Number of vector-table entries.
pub const VECTOR_COUNT: u32 = 32;

/// Size of one vector-table entry in bytes.
pub const VECTOR_ENTRY_BYTES: u32 = 4;

/// The program counter after reset, immediately above the vector table.
pub const RESET_PC: u32 = 0x0000_0100;

/// Classification of a trap or interrupt cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrapKind {
    /// Undecodable or invalid instruction word.
    IllegalInsn,
    /// Word access to a non-word-aligned address.
    Misaligned,
    /// Access to an unmapped address.
    BusError,
    /// Watchdog timer expiry.
    Watchdog,
    /// Explicit `TRAP #n` instruction.
    Software(u8),
    /// External interrupt request line `n` from the interrupt controller.
    Irq(u8),
}

impl TrapKind {
    /// Vector-table entry used for hardware trap causes.
    pub const ILLEGAL_VECTOR: u8 = 1;
    /// Vector-table entry for misaligned accesses.
    pub const MISALIGNED_VECTOR: u8 = 2;
    /// Vector-table entry for bus errors.
    pub const BUS_ERROR_VECTOR: u8 = 3;
    /// Vector-table entry for the watchdog.
    pub const WATCHDOG_VECTOR: u8 = 4;
    /// First vector-table entry used by external interrupts; IRQ line `n`
    /// maps to vector `IRQ_VECTOR_BASE + n`.
    pub const IRQ_VECTOR_BASE: u8 = 16;

    /// The vector-table index this cause dispatches through.
    ///
    /// Software traps use their literal vector number; IRQ lines are offset
    /// by [`TrapKind::IRQ_VECTOR_BASE`]. The result is always below
    /// [`VECTOR_COUNT`] for representable causes.
    pub fn vector(self) -> u8 {
        match self {
            TrapKind::IllegalInsn => Self::ILLEGAL_VECTOR,
            TrapKind::Misaligned => Self::MISALIGNED_VECTOR,
            TrapKind::BusError => Self::BUS_ERROR_VECTOR,
            TrapKind::Watchdog => Self::WATCHDOG_VECTOR,
            TrapKind::Software(n) => n,
            TrapKind::Irq(n) => Self::IRQ_VECTOR_BASE + n,
        }
    }

    /// Whether the cause is asynchronous (interrupts) rather than a fault
    /// of the executing instruction.
    pub fn is_interrupt(self) -> bool {
        matches!(self, TrapKind::Irq(_) | TrapKind::Watchdog)
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::IllegalInsn => write!(f, "illegal instruction"),
            TrapKind::Misaligned => write!(f, "misaligned access"),
            TrapKind::BusError => write!(f, "bus error"),
            TrapKind::Watchdog => write!(f, "watchdog expiry"),
            TrapKind::Software(n) => write!(f, "software trap #{n}"),
            TrapKind::Irq(n) => write!(f, "irq {n}"),
        }
    }
}

/// Byte address of the vector-table entry for vector `n`.
///
/// # Panics
///
/// Panics if `n >= VECTOR_COUNT`.
pub fn vector_entry_addr(n: u8) -> u32 {
    assert!(
        u32::from(n) < VECTOR_COUNT,
        "vector {n} out of range (max {VECTOR_COUNT})"
    );
    VECTOR_BASE + u32::from(n) * VECTOR_ENTRY_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_table_fits_below_reset_pc() {
        const { assert!(VECTOR_BASE + VECTOR_COUNT * VECTOR_ENTRY_BYTES <= RESET_PC) }
    }

    #[test]
    fn hardware_vectors_are_distinct() {
        let vs = [
            TrapKind::IllegalInsn.vector(),
            TrapKind::Misaligned.vector(),
            TrapKind::BusError.vector(),
            TrapKind::Watchdog.vector(),
        ];
        for (i, a) in vs.iter().enumerate() {
            for b in &vs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn irq_vectors_offset_into_table() {
        assert_eq!(TrapKind::Irq(0).vector(), 16);
        assert_eq!(TrapKind::Irq(15).vector(), 31);
        assert!(u32::from(TrapKind::Irq(15).vector()) < VECTOR_COUNT);
    }

    #[test]
    fn interrupt_classification() {
        assert!(TrapKind::Irq(3).is_interrupt());
        assert!(TrapKind::Watchdog.is_interrupt());
        assert!(!TrapKind::Software(9).is_interrupt());
        assert!(!TrapKind::BusError.is_interrupt());
    }

    #[test]
    fn entry_addresses_are_word_spaced() {
        assert_eq!(vector_entry_addr(0), 0);
        assert_eq!(vector_entry_addr(4), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entry_address_bounds_checked() {
        vector_entry_addr(32);
    }
}
