//! The program status word: arithmetic flags and interrupt enable.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The SC88 program status word.
///
/// Bit layout (only the low five bits are architecturally defined):
///
/// | bit | flag | meaning |
/// |-----|------|---------|
/// | 0   | `Z`  | result was zero |
/// | 1   | `N`  | result was negative (bit 31 set) |
/// | 2   | `C`  | carry / unsigned borrow |
/// | 3   | `V`  | signed overflow |
/// | 4   | `IE` | interrupts enabled |
///
/// ```
/// use advm_isa::Psw;
///
/// let mut psw = Psw::default();
/// psw.set_carry(true);
/// assert!(psw.carry());
/// assert_eq!(psw.bits() & 0b100, 0b100);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Psw {
    bits: u32,
}

const Z: u32 = 1 << 0;
const N: u32 = 1 << 1;
const C: u32 = 1 << 2;
const V: u32 = 1 << 3;
const IE: u32 = 1 << 4;
const DEFINED: u32 = Z | N | C | V | IE;

impl Psw {
    /// A status word with all flags clear and interrupts disabled
    /// (the architectural reset state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a status word from raw bits; undefined bits are masked.
    pub fn from_bits(bits: u32) -> Self {
        Self {
            bits: bits & DEFINED,
        }
    }

    /// The raw bit representation.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The zero flag.
    pub fn zero(self) -> bool {
        self.bits & Z != 0
    }

    /// The negative flag.
    pub fn negative(self) -> bool {
        self.bits & N != 0
    }

    /// The carry flag.
    pub fn carry(self) -> bool {
        self.bits & C != 0
    }

    /// The signed-overflow flag.
    pub fn overflow(self) -> bool {
        self.bits & V != 0
    }

    /// Whether maskable interrupts are enabled.
    pub fn interrupts_enabled(self) -> bool {
        self.bits & IE != 0
    }

    /// Sets the zero flag.
    pub fn set_zero(&mut self, value: bool) {
        self.set(Z, value);
    }

    /// Sets the negative flag.
    pub fn set_negative(&mut self, value: bool) {
        self.set(N, value);
    }

    /// Sets the carry flag.
    pub fn set_carry(&mut self, value: bool) {
        self.set(C, value);
    }

    /// Sets the signed-overflow flag.
    pub fn set_overflow(&mut self, value: bool) {
        self.set(V, value);
    }

    /// Enables or disables maskable interrupts.
    pub fn set_interrupts_enabled(&mut self, value: bool) {
        self.set(IE, value);
    }

    /// Updates `Z` and `N` from an ALU result, leaving `C` and `V` alone.
    pub fn set_zn(&mut self, result: u32) {
        self.set_zero(result == 0);
        self.set_negative(result & 0x8000_0000 != 0);
    }

    /// Updates all four arithmetic flags from a subtraction `a - b`,
    /// the comparison semantics used by `CMP`.
    pub fn set_compare(&mut self, a: u32, b: u32) {
        let (result, borrow) = a.overflowing_sub(b);
        self.set_zn(result);
        self.set_carry(borrow);
        self.set_overflow((a as i32).overflowing_sub(b as i32).1);
    }

    fn set(&mut self, mask: u32, value: bool) {
        if value {
            self.bits |= mask;
        } else {
            self.bits &= !mask;
        }
    }
}

impl fmt::Display for Psw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{}]",
            if self.zero() { 'Z' } else { '-' },
            if self.negative() { 'N' } else { '-' },
            if self.carry() { 'C' } else { '-' },
            if self.overflow() { 'V' } else { '-' },
            if self.interrupts_enabled() { 'I' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_clear() {
        let psw = Psw::new();
        assert_eq!(psw.bits(), 0);
        assert!(!psw.zero() && !psw.negative() && !psw.carry() && !psw.overflow());
        assert!(!psw.interrupts_enabled());
    }

    #[test]
    fn from_bits_masks_undefined() {
        let psw = Psw::from_bits(0xFFFF_FFFF);
        assert_eq!(psw.bits(), 0b11111);
    }

    #[test]
    fn compare_equal_sets_only_zero() {
        let mut psw = Psw::new();
        psw.set_compare(7, 7);
        assert!(psw.zero());
        assert!(!psw.negative() && !psw.carry() && !psw.overflow());
    }

    #[test]
    fn compare_unsigned_borrow_sets_carry() {
        let mut psw = Psw::new();
        psw.set_compare(3, 5);
        assert!(psw.carry(), "3 - 5 borrows");
        assert!(psw.negative());
        assert!(!psw.overflow());
    }

    #[test]
    fn compare_signed_overflow() {
        let mut psw = Psw::new();
        psw.set_compare(i32::MIN as u32, 1);
        assert!(psw.overflow(), "MIN - 1 overflows signed range");
        assert!(!psw.negative(), "wrapped result is positive");
    }

    #[test]
    fn set_zn_tracks_sign_bit() {
        let mut psw = Psw::new();
        psw.set_zn(0x8000_0000);
        assert!(psw.negative());
        assert!(!psw.zero());
        psw.set_zn(0);
        assert!(psw.zero());
        assert!(!psw.negative());
    }

    #[test]
    fn display_shows_flags() {
        let mut psw = Psw::new();
        psw.set_zero(true);
        psw.set_carry(true);
        assert_eq!(psw.to_string(), "[Z-C--]");
    }
}
