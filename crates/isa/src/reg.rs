//! Typed register names for the SC88 register files.
//!
//! SC88 mirrors the split register file visible in the paper's listings:
//! data registers (`d14` holds the value being built with `INSERT`) and
//! address registers (`CallAddr .DEFINE A12` holds a call target).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl ParseRegError {
    fn new(text: &str) -> Self {
        Self {
            text: text.to_owned(),
        }
    }

    /// The text that failed to parse.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

macro_rules! register_file {
    (
        $(#[$meta:meta])*
        $name:ident, $prefix:literal, [$($variant:ident = $idx:expr),+ $(,)?]
    ) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[repr(u8)]
        pub enum $name {
            $(
                #[allow(missing_docs)]
                $variant = $idx,
            )+
        }

        impl $name {
            /// All registers of the file, in index order.
            pub const ALL: [$name; 16] = [$($name::$variant),+];

            /// The register's index within its file (0..=15).
            pub fn index(self) -> u8 {
                self as u8
            }

            /// Returns the register with the given index.
            ///
            /// # Errors
            ///
            /// Fails if `index` is not in `0..=15`.
            pub fn from_index(index: u8) -> Result<Self, ParseRegError> {
                Self::ALL
                    .get(usize::from(index))
                    .copied()
                    .ok_or_else(|| ParseRegError::new(&format!("{}{}", $prefix, index)))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.index())
            }
        }

        impl FromStr for $name {
            type Err = ParseRegError;

            /// Parses `d0`..`d15` / `a0`..`a15`, case-insensitively (the
            /// paper's listings mix `d14` and `A12` spellings).
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let err = || ParseRegError::new(s);
                let rest = s
                    .strip_prefix($prefix)
                    .or_else(|| s.strip_prefix(&$prefix.to_uppercase()))
                    .ok_or_else(err)?;
                let index: u8 = rest.parse().map_err(|_| err())?;
                // Reject forms like `d007`: the canonical spelling must
                // round-trip, otherwise assembler symbols such as `d0x`
                // could alias registers.
                if rest != index.to_string() {
                    return Err(err());
                }
                Self::from_index(index).map_err(|_| err())
            }
        }
    };
}

register_file!(
    /// A data register, `d0` through `d15`.
    ///
    /// By SC88 convention `d15` is favoured as a scratch register by
    /// generated code; no register is architecturally special.
    DataReg, "d",
    [D0 = 0, D1 = 1, D2 = 2, D3 = 3, D4 = 4, D5 = 5, D6 = 6, D7 = 7,
     D8 = 8, D9 = 9, D10 = 10, D11 = 11, D12 = 12, D13 = 13, D14 = 14,
     D15 = 15]
);

register_file!(
    /// An address register, `a0` through `a15`.
    ///
    /// `a10` is the stack pointer by software convention (`CALL` pushes the
    /// return address through it) and `a12` is the customary call-target
    /// scratch register — the paper's `CallAddr .DEFINE A12`.
    AddrReg, "a",
    [A0 = 0, A1 = 1, A2 = 2, A3 = 3, A4 = 4, A5 = 5, A6 = 6, A7 = 7,
     A8 = 8, A9 = 9, A10 = 10, A11 = 11, A12 = 12, A13 = 13, A14 = 14,
     A15 = 15]
);

impl AddrReg {
    /// The software stack pointer.
    pub const SP: AddrReg = AddrReg::A10;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_reg_roundtrips_index() {
        for reg in DataReg::ALL {
            assert_eq!(DataReg::from_index(reg.index()).unwrap(), reg);
        }
    }

    #[test]
    fn addr_reg_roundtrips_index() {
        for reg in AddrReg::ALL {
            assert_eq!(AddrReg::from_index(reg.index()).unwrap(), reg);
        }
    }

    #[test]
    fn display_matches_paper_spelling() {
        assert_eq!(DataReg::D14.to_string(), "d14");
        assert_eq!(AddrReg::A12.to_string(), "a12");
    }

    #[test]
    fn parses_case_insensitive() {
        assert_eq!("d14".parse::<DataReg>().unwrap(), DataReg::D14);
        assert_eq!("D14".parse::<DataReg>().unwrap(), DataReg::D14);
        assert_eq!("A12".parse::<AddrReg>().unwrap(), AddrReg::A12);
        assert_eq!("a0".parse::<AddrReg>().unwrap(), AddrReg::A0);
    }

    #[test]
    fn rejects_out_of_range_and_junk() {
        assert!("d16".parse::<DataReg>().is_err());
        assert!("d".parse::<DataReg>().is_err());
        assert!("d007".parse::<DataReg>().is_err());
        assert!("x3".parse::<DataReg>().is_err());
        assert!("a16".parse::<AddrReg>().is_err());
        assert!("d3".parse::<AddrReg>().is_err());
        assert!(DataReg::from_index(16).is_err());
    }

    #[test]
    fn sp_is_a10() {
        assert_eq!(AddrReg::SP, AddrReg::A10);
    }

    #[test]
    fn parse_error_reports_text() {
        let err = "d99".parse::<DataReg>().unwrap_err();
        assert_eq!(err.text(), "d99");
        assert!(err.to_string().contains("d99"));
    }
}
