//! # advm-fuzz — program fuzzing and mined trace assertions
//!
//! The ADVM paper drives verification from *generated assembler
//! programs*; this crate supplies that workload class. Where `advm-gen`
//! draws `Globals.inc` knob files for the seed suite's fixed programs,
//! `advm-fuzz` draws the programs themselves:
//!
//! * [`ProgramSource`] generates constrained-random guest programs over
//!   the `advm-isa` encoder — guaranteed-terminating control flow
//!   (forward-only skips, counter-bounded loops, a double-bounded UART
//!   poll), per-module MMIO touchpoint blocks and an explicit sim-end
//!   epilogue. Seeding follows the same SplitMix64 discipline as
//!   `advm-gen`, so batches are byte-identical regardless of worker
//!   count.
//! * [`TraceAssertion`] checkers are [`mine`]d from fault-free MMIO
//!   traces ([`advm_sim::MmioTrace`]) — readback invariants and
//!   bounded-temporal bit-rise windows — then evaluated on every later
//!   run. Mining is observational: faults that the differential
//!   pass/fail verdict masks (a page MAP write silently ignored) become
//!   visible as checker violations.
//!
//! The `advm` core crate wires both halves into campaigns
//! (`advm::fuzz::Fuzz`) and into `FaultAudit` kill-rate grading.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assert;
mod program;

pub use assert::{mine, TraceAssertion};
pub use program::{FuzzProgram, ProgramSource, FUZZ_SOURCE_INDEX, SCRATCH_BASE};
