//! Trace assertions: invariants and bounded-temporal checks mined from
//! fault-free MMIO traces, then evaluated against every later run.
//!
//! Mining is purely observational — no peripheral knowledge is wired
//! in. Two families are derived from [`MmioTrace`]s:
//!
//! * [`TraceAssertion::ReadbackEquals`] — for a register that is read
//!   back after writes, the bits that matched on *every* observed
//!   write→read pair form the invariant mask ("page MAP readback equals
//!   the last MAP write").
//! * [`TraceAssertion::BitSetsWithin`] — for a (write register, status
//!   register, bit) triple in the same module where the bit was observed
//!   to rise after every write, the mined window bounds the rise
//!   latency ("UART `TX_READY` sets within N cycles of a data write").
//!
//! Both checkers are truncation-aware. The monitor's ring drops the
//! *oldest* records first, so a retained write is always followed by a
//! complete suffix of events: checkers anchor only on retained writes,
//! and reads whose anchoring write fell off the ring are skipped, never
//! reported as violations.

use std::collections::BTreeMap;

use advm_sim::{MmioEvent, MmioTrace};

/// Minimum number of observations before an invariant is mined (a
/// single pair proves nothing about intent).
const MIN_SAMPLES: usize = 2;

/// Slack multiplier applied to the worst observed rise latency: mined
/// windows must stay robust to small cycle perturbations without
/// letting a stuck status bit escape.
const WINDOW_SLACK: u64 = 2;
/// Additive slack on mined windows (cycles).
const WINDOW_PAD: u64 = 64;

/// One mined checker over a run's MMIO trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceAssertion {
    /// Reading `addr` after a write returns the written value under
    /// `mask` (bits outside the mask are unconstrained).
    ReadbackEquals {
        /// The register address.
        addr: u32,
        /// Bits that must read back as written.
        mask: u32,
    },
    /// After every write to `write_addr`, bit `bit` of `status_addr`
    /// reads as set within `window` cycles (observing it still clear
    /// later than the window — with no set observation in between — is
    /// a violation; vacuous if the status is never read).
    BitSetsWithin {
        /// The register whose write arms the check.
        write_addr: u32,
        /// The status register the bit lives in.
        status_addr: u32,
        /// The status bit index.
        bit: u8,
        /// Maximum allowed rise latency in cycles.
        window: u64,
    },
}

impl TraceAssertion {
    /// A stable machine-readable name (used in events and report JSON).
    pub fn name(&self) -> String {
        match self {
            TraceAssertion::ReadbackEquals { addr, mask } => {
                format!("readback[{addr:#07x}&{mask:#010x}]")
            }
            TraceAssertion::BitSetsWithin {
                write_addr,
                status_addr,
                bit,
                window,
            } => format!("within[{write_addr:#07x}->{status_addr:#07x} bit{bit} w={window}]"),
        }
    }

    /// Evaluates the checker against one run's MMIO trace, returning a
    /// detail string per violation (empty = clean).
    pub fn check(&self, trace: &MmioTrace) -> Vec<String> {
        let events = trace.records();
        match *self {
            TraceAssertion::ReadbackEquals { addr, mask } => check_readback(&events, addr, mask),
            TraceAssertion::BitSetsWithin {
                write_addr,
                status_addr,
                bit,
                window,
            } => check_bit_sets_within(&events, write_addr, status_addr, bit, window),
        }
    }
}

/// Readback invariant: compare each read of `addr` against the last
/// *retained* write. Reads before the first retained write are skipped
/// — if the ring truncated, the anchoring write may have been dropped,
/// and an unanchored comparison would be a false violation.
fn check_readback(events: &[MmioEvent], addr: u32, mask: u32) -> Vec<String> {
    let mut last_write: Option<&MmioEvent> = None;
    let mut violations = Vec::new();
    for event in events.iter().filter(|e| e.addr == addr) {
        if event.write {
            last_write = Some(event);
        } else if let Some(w) = last_write {
            if (event.value ^ w.value) & mask != 0 {
                violations.push(format!(
                    "{addr:#07x}: wrote {:#010x} at cycle {}, read {:#010x} at cycle {} \
                     (mask {mask:#010x})",
                    w.value, w.cycle, event.value, event.cycle
                ));
            }
        }
    }
    violations
}

/// Bounded-temporal check, anchored on each retained write to
/// `write_addr`. Because the ring drops oldest-first, every event after
/// a retained anchor is itself retained — the scan forward is complete,
/// and dropped anchors are simply never scanned.
fn check_bit_sets_within(
    events: &[MmioEvent],
    write_addr: u32,
    status_addr: u32,
    bit: u8,
    window: u64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (i, anchor) in events.iter().enumerate() {
        if !(anchor.write && anchor.addr == write_addr) {
            continue;
        }
        for event in &events[i + 1..] {
            if event.write && event.addr == write_addr {
                break; // next transaction re-arms the check
            }
            if event.write || event.addr != status_addr {
                continue;
            }
            let latency = event.cycle.saturating_sub(anchor.cycle);
            if event.value >> bit & 1 == 1 {
                if latency > window {
                    violations.push(late(anchor, write_addr, status_addr, bit, window, latency));
                }
                break;
            }
            if latency > window {
                violations.push(late(anchor, write_addr, status_addr, bit, window, latency));
                break;
            }
        }
    }
    violations
}

fn late(
    anchor: &MmioEvent,
    write_addr: u32,
    status_addr: u32,
    bit: u8,
    window: u64,
    latency: u64,
) -> String {
    format!(
        "{status_addr:#07x} bit{bit} not set {latency} cycles after write to {write_addr:#07x} \
         at cycle {} (window {window})",
        anchor.cycle
    )
}

/// Per-address readback statistics accumulated during mining.
#[derive(Default)]
struct ReadbackStats {
    pairs: usize,
    mask: u32,
}

/// Per-(write, status, bit) temporal statistics accumulated during
/// mining.
#[derive(Default)]
struct RiseStats {
    anchors: usize,
    max_latency: u64,
    saw_clear_first: bool,
    incomplete: bool,
}

/// Mines checkers from a set of fault-free traces (typically one trace
/// per program × platform). Deterministic: output order follows the
/// derived key order, independent of trace order.
pub fn mine(traces: &[&MmioTrace]) -> Vec<TraceAssertion> {
    let mut readback: BTreeMap<u32, ReadbackStats> = BTreeMap::new();
    let mut rise: BTreeMap<(u32, u32, u8), RiseStats> = BTreeMap::new();

    for trace in traces {
        let events = trace.records();
        mine_readback(&events, &mut readback);
        mine_rise(&events, &mut rise);
    }

    let mut mined = Vec::new();
    for (addr, stats) in readback {
        if stats.pairs >= MIN_SAMPLES && stats.mask != 0 {
            mined.push(TraceAssertion::ReadbackEquals {
                addr,
                mask: stats.mask,
            });
        }
    }
    for ((write_addr, status_addr, bit), stats) in rise {
        if stats.anchors >= MIN_SAMPLES && stats.saw_clear_first && !stats.incomplete {
            mined.push(TraceAssertion::BitSetsWithin {
                write_addr,
                status_addr,
                bit,
                window: WINDOW_SLACK * stats.max_latency + WINDOW_PAD,
            });
        }
    }
    mined
}

fn mine_readback(events: &[MmioEvent], stats: &mut BTreeMap<u32, ReadbackStats>) {
    let mut last_write: BTreeMap<u32, u32> = BTreeMap::new();
    for event in events {
        if event.write {
            last_write.insert(event.addr, event.value);
        } else if let Some(written) = last_write.get(&event.addr) {
            let entry = stats.entry(event.addr).or_insert(ReadbackStats {
                pairs: 0,
                mask: u32::MAX,
            });
            entry.pairs += 1;
            entry.mask &= !(event.value ^ written);
        }
    }
}

/// Candidate temporal pairs are (write register, status register) in
/// the same 256-byte module window — cross-module couplings are noise.
fn same_module(a: u32, b: u32) -> bool {
    a & !0xFF == b & !0xFF
}

fn mine_rise(events: &[MmioEvent], stats: &mut BTreeMap<(u32, u32, u8), RiseStats>) {
    for (i, anchor) in events.iter().enumerate() {
        if !anchor.write {
            continue;
        }
        // Which status registers were read between this write and the
        // next write to the same register? Per (status, bit): whether
        // the *first* read saw the bit clear, and the latency of the
        // first read that saw it set.
        #[derive(Default)]
        struct Observation {
            seen: bool,
            clear_first: bool,
            first_set: Option<u64>,
        }
        let mut per_status: BTreeMap<(u32, u8), Observation> = BTreeMap::new();
        for event in &events[i + 1..] {
            if event.write && event.addr == anchor.addr {
                break;
            }
            if event.write || !same_module(event.addr, anchor.addr) || event.addr == anchor.addr {
                continue;
            }
            for bit in 0..4u8 {
                let set = event.value >> bit & 1 == 1;
                let latency = event.cycle.saturating_sub(anchor.cycle);
                let entry = per_status.entry((event.addr, bit)).or_default();
                if !entry.seen {
                    entry.seen = true;
                    entry.clear_first = !set;
                }
                if set && entry.first_set.is_none() {
                    entry.first_set = Some(latency);
                }
            }
        }
        for ((status_addr, bit), observation) in per_status {
            let Observation {
                seen,
                clear_first,
                first_set,
            } = observation;
            if !seen {
                continue;
            }
            let entry = stats.entry((anchor.addr, status_addr, bit)).or_default();
            entry.anchors += 1;
            entry.saw_clear_first |= clear_first;
            match first_set {
                Some(latency) => entry.max_latency = entry.max_latency.max(latency),
                // Reads observed but the bit never rose: this pair
                // cannot be mined as a rise bound.
                None => entry.incomplete = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(cycle: u64, addr: u32, value: u32) -> MmioEvent {
        MmioEvent {
            cycle,
            addr,
            value,
            write: true,
        }
    }

    fn read(cycle: u64, addr: u32, value: u32) -> MmioEvent {
        MmioEvent {
            cycle,
            addr,
            value,
            write: false,
        }
    }

    fn trace_of(events: &[MmioEvent], capacity: usize) -> MmioTrace {
        let mut trace = MmioTrace::new(capacity);
        for e in events {
            trace.record(*e);
        }
        trace
    }

    const MAP: u32 = 0xE0108;
    const DATA: u32 = 0xE0008;
    const STATUS: u32 = 0xE0004;

    #[test]
    fn mines_readback_invariant_and_detects_ignored_writes() {
        let clean = trace_of(
            &[
                write(10, MAP, 0x1234),
                read(12, MAP, 0x1234),
                write(20, MAP, 0x00FF),
                read(22, MAP, 0x00FF),
            ],
            64,
        );
        let mined = mine(&[&clean]);
        assert_eq!(
            mined,
            vec![TraceAssertion::ReadbackEquals {
                addr: MAP,
                mask: u32::MAX
            }]
        );
        let checker = mined[0];
        assert!(checker.check(&clean).is_empty());

        // A faulted platform ignoring the write violates the invariant.
        let faulty = trace_of(&[write(10, MAP, 0x1234), read(12, MAP, 0x0000)], 64);
        let violations = checker.check(&faulty);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("wrote 0x00001234"), "{violations:?}");
    }

    #[test]
    fn readback_mask_narrows_to_stable_bits() {
        // Bit 4 reads back flipped once: it must leave the mask.
        let trace = trace_of(
            &[
                write(1, MAP, 0x10),
                read(2, MAP, 0x00),
                write(3, MAP, 0x13),
                read(4, MAP, 0x13),
            ],
            64,
        );
        let mined = mine(&[&trace]);
        assert_eq!(
            mined,
            vec![TraceAssertion::ReadbackEquals {
                addr: MAP,
                mask: !0x10
            }]
        );
    }

    #[test]
    fn mines_rise_window_and_detects_stuck_bit() {
        let mut events = Vec::new();
        // Two transmissions: the ready bit is clear right after the
        // write and rises 30 cycles later.
        for base in [100u64, 400] {
            events.push(write(base, DATA, 0x41));
            events.push(read(base + 6, STATUS, 0));
            events.push(read(base + 30, STATUS, 1));
        }
        let clean = trace_of(&events, 256);
        let mined = mine(&[&clean]);
        let checker = mined
            .iter()
            .find(|c| matches!(c, TraceAssertion::BitSetsWithin { bit: 0, .. }))
            .expect("rise checker mined");
        if let TraceAssertion::BitSetsWithin { window, .. } = checker {
            assert_eq!(*window, 2 * 30 + 64);
        }
        assert!(checker.check(&clean).is_empty());

        // Stuck busy: the bit never rises and polls continue far past
        // the window.
        let stuck = trace_of(
            &[
                write(100, DATA, 0x41),
                read(106, STATUS, 0),
                read(300, STATUS, 0),
            ],
            256,
        );
        let violations = checker.check(&stuck);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("bit0 not set"), "{violations:?}");
    }

    #[test]
    fn rise_mining_requires_clear_first_observation() {
        // The bit is already set on every first read: no temporal
        // relationship is observable, so nothing is mined.
        let trace = trace_of(
            &[
                write(10, DATA, 0x41),
                read(12, STATUS, 1),
                write(20, DATA, 0x42),
                read(22, STATUS, 1),
            ],
            64,
        );
        assert!(mine(&[&trace])
            .iter()
            .all(|c| !matches!(c, TraceAssertion::BitSetsWithin { .. })));
    }

    #[test]
    fn truncated_traces_skip_unanchored_checks() {
        let readback = TraceAssertion::ReadbackEquals {
            addr: MAP,
            mask: u32::MAX,
        };
        let temporal = TraceAssertion::BitSetsWithin {
            write_addr: DATA,
            status_addr: STATUS,
            bit: 0,
            window: 10,
        };
        // The anchoring writes (and for readback, the value they wrote)
        // fall off a tiny ring; the retained reads *look* like
        // violations but must be skipped.
        let events = [
            write(1, MAP, 0x1234),
            write(2, DATA, 0x41),
            read(50, STATUS, 0), // far beyond the window
            read(51, MAP, 0x9999),
            read(52, MAP, 0x9999),
            read(53, MAP, 0x9999),
        ];
        let tiny = trace_of(&events, 4);
        assert!(tiny.dropped() > 0);
        assert!(readback.check(&tiny).is_empty(), "anchor write dropped");
        assert!(temporal.check(&tiny).is_empty(), "anchor write dropped");

        // The same stream with a large ring does violate both.
        let full = trace_of(&events, 64);
        assert_eq!(full.dropped(), 0);
        assert_eq!(readback.check(&full).len(), 3);
        assert_eq!(temporal.check(&full).len(), 1);
    }

    #[test]
    fn checker_names_are_stable() {
        assert_eq!(
            TraceAssertion::ReadbackEquals {
                addr: MAP,
                mask: 0xFFFF
            }
            .name(),
            "readback[0xe0108&0x0000ffff]"
        );
        assert_eq!(
            TraceAssertion::BitSetsWithin {
                write_addr: DATA,
                status_addr: STATUS,
                bit: 0,
                window: 124
            }
            .name(),
            "within[0xe0008->0xe0004 bit0 w=124]"
        );
    }
}
