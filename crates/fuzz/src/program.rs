//! Constrained-random guest programs over the SC88 encoder.
//!
//! A [`FuzzProgram`] is a structured instruction stream, not a text
//! blob: the generator draws concrete [`Insn`] values plus a label
//! graph, so the same program can be rendered as a test-cell assembly
//! source ([`FuzzProgram::asm`]) *and* resolved to a validated,
//! encodable instruction stream at any base address
//! ([`FuzzProgram::insns`]).
//!
//! Every program is guaranteed to terminate on every platform:
//!
//! * conditional control flow is either a *forward* skip or a loop whose
//!   back-edge is guarded by a dedicated counter register initialised
//!   from an immediate and decremented every iteration,
//! * the single optional UART status poll is double-bounded — it exits
//!   early on `TX_READY` but also after a fixed iteration budget, so a
//!   stuck-busy fault slows the program down instead of hanging it,
//! * the epilogue explicitly reports `PASS` and ends the simulation via
//!   the test-bench mailbox, with a `HALT` backstop behind it.
//!
//! Determinism matches `advm-gen`: program `index` under a master seed
//! draws from [`advm_gen::derive_seed`]`(master, FUZZ_SOURCE_INDEX,
//! index)`, so a batch is byte-identical no matter how many workers
//! later build or execute it.

use advm_gen::{derive_seed, ScenarioKind, ScenarioMeta};
use advm_isa::{decode, encode, AddrReg, Cond, DataReg, Insn};
use advm_soc::memmap::RAM_START;
use advm_soc::Derivative;

/// The `source` slot fuzz programs occupy in the shared
/// [`advm_gen::derive_seed`] discipline (scenario engines number their
/// sources from 0; the program source sits far away from them).
pub const FUZZ_SOURCE_INDEX: usize = 0xF0;

/// Word-aligned RAM scratch area the generated programs may store to
/// (far above the test-data area the seed suite uses).
pub const SCRATCH_BASE: u32 = RAM_START + 0x8000;

/// Deterministic SplitMix64 stream used for all drawing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

/// One element of a program body: a concrete instruction, a label
/// definition (occupies no space) or a branch to a label (resolved to an
/// absolute target only when the load address is known).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insn(Insn),
    Label(u32),
    Branch { cond: Option<Cond>, label: u32 },
}

/// A generated guest program: provenance plus a structured body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzProgram {
    name: String,
    seed: u64,
    index: usize,
    ops: Vec<Op>,
}

impl FuzzProgram {
    /// The program's unique name within its batch (`FUZZ_0007`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-program seed (derived from the batch's master seed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The program's index within its batch.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of machine instructions in the body (labels are free).
    pub fn len(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, Op::Label(_)))
            .count()
    }

    /// Whether the body is empty (never true for generated programs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The provenance record campaigns attach to this program's runs.
    pub fn scenario_meta(&self) -> ScenarioMeta {
        ScenarioMeta {
            name: self.name.clone(),
            kind: ScenarioKind::ProgramFuzz,
            seed: self.seed,
            detail: format!("generated program, {} instructions", self.len()),
        }
    }

    /// Renders the program as a test-cell source (the `test.asm` of a
    /// synthetic cell): a `_main` entered from the standard startup
    /// stub, with local labels for all control flow.
    pub fn asm(&self) -> String {
        let mut out = format!(
            ";; {}: constrained-random program (seed {:#018x})\n_main:\n",
            self.name, self.seed
        );
        for op in &self.ops {
            match op {
                Op::Insn(insn) => out.push_str(&format!("    {insn}\n")),
                Op::Label(id) => out.push_str(&format!("FZ_L{id}:\n")),
                Op::Branch { cond: None, label } => out.push_str(&format!("    JMP FZ_L{label}\n")),
                Op::Branch {
                    cond: Some(cond),
                    label,
                } => out.push_str(&format!("    J{cond} FZ_L{label}\n")),
            }
        }
        out
    }

    /// Resolves the body to a concrete instruction stream loaded at
    /// `base` (word-aligned): labels become absolute targets, exactly as
    /// the assembler would place them.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned or a branch references an
    /// undefined label — impossible for generated programs.
    pub fn insns(&self, base: u32) -> Vec<Insn> {
        assert!(
            base.is_multiple_of(4),
            "program base {base:#x} must be word-aligned"
        );
        let mut targets = std::collections::BTreeMap::new();
        let mut index = 0u32;
        for op in &self.ops {
            match op {
                Op::Label(id) => {
                    targets.insert(*id, base + 4 * index);
                }
                _ => index += 1,
            }
        }
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Label(_) => None,
                Op::Insn(insn) => Some(*insn),
                Op::Branch { cond, label } => {
                    let target = *targets
                        .get(label)
                        .unwrap_or_else(|| panic!("undefined label FZ_L{label}"));
                    Some(match cond {
                        None => Insn::Jmp { target },
                        Some(cond) => Insn::J {
                            cond: *cond,
                            target,
                        },
                    })
                }
            })
            .collect()
    }

    /// Validates and round-trips the resolved stream through the
    /// encoder: every instruction must satisfy [`Insn::validate`] and
    /// `decode(encode(insn))` must reproduce it exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending instruction.
    pub fn check_encoding(&self, base: u32) -> Result<(), String> {
        for (i, insn) in self.insns(base).into_iter().enumerate() {
            insn.validate()
                .map_err(|e| format!("{}[{i}] `{insn}`: {e}", self.name))?;
            let word = encode(&insn);
            match decode(word) {
                Ok(back) if back == insn => {}
                Ok(back) => {
                    return Err(format!(
                        "{}[{i}] `{insn}` decodes back as `{back}`",
                        self.name
                    ))
                }
                Err(e) => {
                    return Err(format!(
                        "{}[{i}] `{insn}` encoded to undecodable {word:#010x}: {e}",
                        self.name
                    ))
                }
            }
        }
        Ok(())
    }
}

/// Register roles. Keeping the roles disjoint is what makes the
/// generated control flow analyzable: loop counters are never clobbered
/// by ALU blocks, and registers holding platform-dependent MMIO read
/// results are never stored to memory or branched on (except inside the
/// double-bounded UART poll).
const ALU_REGS: [DataReg; 7] = [
    DataReg::D1,
    DataReg::D2,
    DataReg::D3,
    DataReg::D4,
    DataReg::D5,
    DataReg::D6,
    DataReg::D7,
];
/// MMIO read sink (value may be platform-dependent; never stored).
const SINK: DataReg = DataReg::D8;
/// Scratch for masking MMIO reads inside the UART poll.
const SINK2: DataReg = DataReg::D9;
/// Holds values on their way to MMIO/RAM stores.
const OUT: DataReg = DataReg::D10;
/// Dedicated loop counter.
const COUNTER: DataReg = DataReg::D12;
/// Epilogue PASS-magic register.
const MAGIC: DataReg = DataReg::D14;
/// Address register for RAM scratch stores.
const SCRATCH_PTR: AddrReg = AddrReg::A1;

/// MMIO touchpoints resolved from a derivative's register map.
#[derive(Debug, Clone, Copy)]
struct Touchpoints {
    uart: u32,
    page: u32,
    tb: u32,
}

/// A deterministic source of constrained-random guest programs.
///
/// Mirrors the scenario sources in `advm-gen`: construction fixes the
/// master seed, and [`ProgramSource::program`]`(index)` is a pure
/// function of `(master seed, index)` — workers can draw any subset in
/// any order and the batch stays byte-identical.
#[derive(Debug, Clone)]
pub struct ProgramSource {
    master_seed: u64,
    touch: Touchpoints,
}

impl ProgramSource {
    /// A source drawing under `master_seed`, targeting the base chip's
    /// register map (the derivative campaigns run by default).
    pub fn new(master_seed: u64) -> Self {
        Self::for_derivative(master_seed, &Derivative::sc88a())
    }

    /// A source targeting a specific derivative's register placement.
    ///
    /// # Panics
    ///
    /// Panics if the derivative's register map lacks the UART, PAGE or
    /// TB module — impossible for catalogued derivatives.
    pub fn for_derivative(master_seed: u64, derivative: &Derivative) -> Self {
        let map = derivative.regmap();
        let base = |name: &str| {
            map.module(name)
                .unwrap_or_else(|| panic!("register map lacks module {name}"))
                .base()
        };
        Self {
            master_seed,
            touch: Touchpoints {
                uart: base("UART"),
                page: base("PAGE"),
                tb: base("TB"),
            },
        }
    }

    /// The master seed this source draws under.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Draws program `index` of the batch.
    pub fn program(&self, index: usize) -> FuzzProgram {
        let seed = derive_seed(self.master_seed, FUZZ_SOURCE_INDEX, index);
        let mut gen = Builder {
            rng: Rng::new(seed),
            ops: Vec::new(),
            next_label: 0,
            uart_polled: false,
            touch: self.touch,
        };
        gen.prologue();
        let blocks = gen.rng.range(3, 8);
        for _ in 0..blocks {
            gen.block();
        }
        gen.epilogue();
        FuzzProgram {
            name: format!("FUZZ_{index:04}"),
            seed,
            index,
            ops: gen.ops,
        }
    }

    /// Draws the first `count` programs of the batch.
    pub fn generate(&self, count: usize) -> Vec<FuzzProgram> {
        (0..count).map(|i| self.program(i)).collect()
    }
}

/// Incremental program builder around the drawing RNG.
struct Builder {
    rng: Rng,
    ops: Vec<Op>,
    next_label: u32,
    uart_polled: bool,
    touch: Touchpoints,
}

impl Builder {
    fn push(&mut self, insn: Insn) {
        self.ops.push(Op::Insn(insn));
    }

    fn label(&mut self) -> u32 {
        let id = self.next_label;
        self.next_label += 1;
        id
    }

    fn place(&mut self, label: u32) {
        self.ops.push(Op::Label(label));
    }

    fn branch(&mut self, cond: Option<Cond>, label: u32) {
        self.ops.push(Op::Branch { cond, label });
    }

    /// Seeds every ALU register from immediates (MOVI, sometimes with a
    /// MOVHI on top), so all later ALU arithmetic is fully determined.
    fn prologue(&mut self) {
        for rd in ALU_REGS {
            let imm = self.rng_imm16();
            self.push(Insn::MovI { rd, imm });
            if self.rng.below(3) == 0 {
                let imm = self.rng_imm16();
                self.push(Insn::MovHi { rd, imm });
            }
        }
    }

    fn rng_imm16(&mut self) -> u16 {
        (self.rng.next() & 0xFFFF) as u16
    }

    /// One random body block.
    fn block(&mut self) {
        match self.rng.below(6) {
            0 | 1 => self.alu_block(),
            2 => self.forward_skip_block(),
            3 => self.bounded_loop_block(),
            _ => self.mmio_block(),
        }
    }

    /// 2–6 random ALU operations over the ALU register file.
    fn alu_block(&mut self) {
        let count = self.rng.range(2, 6);
        for _ in 0..count {
            self.alu_op();
        }
    }

    fn alu_op(&mut self) {
        let rd = self.rng.pick(&ALU_REGS);
        let ra = self.rng.pick(&ALU_REGS);
        let rb = self.rng.pick(&ALU_REGS);
        let insn = match self.rng.below(14) {
            0 => Insn::Add { rd, ra, rb },
            1 => Insn::Sub { rd, ra, rb },
            2 => Insn::Mul { rd, ra, rb },
            3 => Insn::And { rd, ra, rb },
            4 => Insn::Or { rd, ra, rb },
            5 => Insn::Xor { rd, ra, rb },
            6 => Insn::AddI {
                rd,
                ra,
                imm: (self.rng.next() & 0x7FFF) as i16,
            },
            7 => Insn::AndI {
                rd,
                ra,
                imm: self.rng_imm16(),
            },
            8 => Insn::OrI {
                rd,
                ra,
                imm: self.rng_imm16(),
            },
            9 => Insn::ShlI {
                rd,
                ra,
                sh: self.rng.below(32) as u8,
            },
            10 => Insn::ShrI {
                rd,
                ra,
                sh: self.rng.below(32) as u8,
            },
            11 => Insn::SarI {
                rd,
                ra,
                sh: self.rng.below(32) as u8,
            },
            12 => {
                let width = self.rng.range(1, 7) as u8;
                let pos = self.rng.below(u64::from(33 - width)) as u8;
                Insn::Insert {
                    rd,
                    ra,
                    src: advm_isa::BitSrc::Imm(self.rng.below(0x80) as u8),
                    pos,
                    width,
                }
            }
            _ => {
                let width = self.rng.range(1, 8) as u8;
                let pos = self.rng.below(u64::from(33 - width)) as u8;
                Insn::Extract { rd, ra, pos, width }
            }
        };
        self.push(insn);
    }

    /// A forward-only conditional skip over a short ALU run.
    fn forward_skip_block(&mut self) {
        let skip = self.label();
        let ra = self.rng.pick(&ALU_REGS);
        let imm = (self.rng.next() & 0x7FFF) as i16;
        self.push(Insn::CmpI { ra, imm });
        let cond = self.rng.pick(&Cond::ALL);
        self.branch(Some(cond), skip);
        let count = self.rng.range(1, 3);
        for _ in 0..count {
            self.alu_op();
        }
        self.place(skip);
    }

    /// A counted loop: the dedicated counter register is initialised
    /// from an immediate, decremented every iteration, and is the only
    /// register the back-edge condition reads — termination is
    /// structural, not statistical.
    fn bounded_loop_block(&mut self) {
        let top = self.label();
        let imm = self.rng.range(1, 8) as u16;
        self.push(Insn::MovI { rd: COUNTER, imm });
        self.place(top);
        let count = self.rng.range(1, 3);
        for _ in 0..count {
            self.alu_op();
        }
        self.push(Insn::AddI {
            rd: COUNTER,
            ra: COUNTER,
            imm: -1,
        });
        self.push(Insn::CmpI {
            ra: COUNTER,
            imm: 0,
        });
        self.branch(Some(Cond::Ne), top);
    }

    /// One per-module MMIO touchpoint block.
    fn mmio_block(&mut self) {
        match self.rng.below(4) {
            0 => self.uart_block(),
            1 => self.page_block(),
            2 => self.mailbox_scratch_block(),
            _ => self.ram_scratch_block(),
        }
    }

    /// UART: program the baud divisor, read it back, transmit one byte,
    /// and (once per program) poll `TX_READY` with a double-bounded
    /// loop.
    fn uart_block(&mut self) {
        let uart = self.touch.uart;
        let baud = self.rng.range(1, 4) as u16;
        self.push(Insn::MovI { rd: OUT, imm: baud });
        self.push(Insn::StAbs {
            addr: uart + 0x0C,
            rs: OUT,
        });
        self.push(Insn::LdAbs {
            rd: SINK,
            addr: uart + 0x0C,
        });
        let byte = self.rng.range(0x20, 0x7E) as u16;
        self.push(Insn::MovI { rd: OUT, imm: byte });
        self.push(Insn::StAbs {
            addr: uart + 0x08,
            rs: OUT,
        });
        if !self.uart_polled {
            self.uart_polled = true;
            let top = self.label();
            let done = self.label();
            self.push(Insn::MovI {
                rd: COUNTER,
                imm: 64,
            });
            self.place(top);
            self.push(Insn::LdAbs {
                rd: SINK,
                addr: uart + 0x04,
            });
            self.push(Insn::AndI {
                rd: SINK2,
                ra: SINK,
                imm: 1,
            });
            self.push(Insn::CmpI { ra: SINK2, imm: 1 });
            self.branch(Some(Cond::Eq), done);
            self.push(Insn::AddI {
                rd: COUNTER,
                ra: COUNTER,
                imm: -1,
            });
            self.push(Insn::CmpI {
                ra: COUNTER,
                imm: 0,
            });
            self.branch(Some(Cond::Ne), top);
            self.place(done);
        }
    }

    /// PAGE: write a nonzero map value, read it back, and observe the
    /// status register.
    fn page_block(&mut self) {
        let page = self.touch.page;
        let imm = self.rng.range(1, 0xFFFF) as u16;
        self.push(Insn::MovI { rd: OUT, imm });
        self.push(Insn::StAbs {
            addr: page + 0x08,
            rs: OUT,
        });
        self.push(Insn::LdAbs {
            rd: SINK,
            addr: page + 0x08,
        });
        if self.rng.below(2) == 0 {
            self.push(Insn::LdAbs {
                rd: SINK,
                addr: page + 0x04,
            });
        }
    }

    /// Test-bench mailbox: write and read back the scratch register.
    fn mailbox_scratch_block(&mut self) {
        let scratch = self.touch.tb + 0x14;
        let imm = self.rng_imm16();
        self.push(Insn::MovI { rd: OUT, imm });
        self.push(Insn::StAbs {
            addr: scratch,
            rs: OUT,
        });
        self.push(Insn::LdAbs {
            rd: SINK,
            addr: scratch,
        });
    }

    /// RAM scratch: store an ALU register, load it back into another ALU
    /// register (deterministic on every platform — only ALU-derived
    /// values are ever stored).
    fn ram_scratch_block(&mut self) {
        let off = (self.rng.below(16) * 4) as i16;
        self.push(Insn::Lea {
            ad: SCRATCH_PTR,
            addr: SCRATCH_BASE,
        });
        let rs = self.rng.pick(&ALU_REGS);
        self.push(Insn::St {
            ab: SCRATCH_PTR,
            off,
            rs,
        });
        let rd = self.rng.pick(&ALU_REGS);
        self.push(Insn::Ld {
            rd,
            ab: SCRATCH_PTR,
            off,
        });
    }

    /// Report PASS and end the simulation; HALT is an unreachable
    /// backstop.
    fn epilogue(&mut self) {
        let tb = self.touch.tb;
        self.push(Insn::MovI { rd: MAGIC, imm: 0 });
        self.push(Insn::MovHi {
            rd: MAGIC,
            imm: 0x600D,
        });
        self.push(Insn::StAbs {
            addr: tb,
            rs: MAGIC,
        });
        self.push(Insn::StAbs {
            addr: tb + 0x08,
            rs: MAGIC,
        });
        self.push(Insn::Halt { code: 0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_and_index_independent() {
        let source = ProgramSource::new(0xFEED);
        let batch = source.generate(8);
        // Drawing out of order or from a fresh source changes nothing.
        for (i, program) in batch.iter().enumerate().rev() {
            assert_eq!(&ProgramSource::new(0xFEED).program(i), program);
        }
        // Different master seeds draw different programs.
        assert_ne!(ProgramSource::new(0xBEEF).program(0), batch[0]);
        // Names are unique per index.
        assert_eq!(batch[3].name(), "FUZZ_0003");
    }

    #[test]
    fn every_program_validates_and_roundtrips_the_encoder() {
        let source = ProgramSource::new(1);
        for program in source.generate(32) {
            program.check_encoding(0x400).expect("stream round-trips");
            assert!(!program.is_empty());
        }
    }

    #[test]
    fn branches_resolve_forward_or_to_counted_loops() {
        // Structural termination: every backward branch must be the
        // JNE back-edge of a counter-guarded loop. We verify the weaker
        // but fully mechanical property that backward branches only ever
        // target a label preceded (somewhere) by a counter MOVI, and
        // that the loop body between label and branch decrements the
        // counter exactly once per iteration.
        let source = ProgramSource::new(0xAB);
        for program in source.generate(32) {
            let insns = program.insns(0x1000);
            for (i, insn) in insns.iter().enumerate() {
                let target = match insn {
                    Insn::Jmp { target } => *target,
                    Insn::J { target, .. } => *target,
                    _ => continue,
                };
                let pc = 0x1000 + 4 * i as u32;
                if target <= pc {
                    // Backward branch: the region from target..=pc must
                    // decrement the loop counter.
                    let lo = ((target - 0x1000) / 4) as usize;
                    let decrements = insns[lo..=i]
                        .iter()
                        .filter(|body| {
                            matches!(
                                body,
                                Insn::AddI {
                                    rd: DataReg::D12,
                                    ra: DataReg::D12,
                                    imm: -1,
                                }
                            )
                        })
                        .count();
                    assert_eq!(decrements, 1, "{}: back-edge at {pc:#x}", program.name());
                }
            }
        }
    }

    #[test]
    fn asm_rendering_matches_resolved_stream() {
        // The rendered source assembles (standalone, with labels) to the
        // exact words `insns(base)` resolves to at the same base.
        let source = ProgramSource::new(0x5EED);
        for program in source.generate(8) {
            let body = program
                .asm()
                .lines()
                .filter(|l| !l.starts_with(";;"))
                .collect::<Vec<_>>()
                .join("\n");
            let asm = format!(".ORG 0x2000\n{body}\n");
            let assembled = advm_asm::assemble_str(&asm).expect("program assembles");
            let expected: Vec<u32> = program.insns(0x2000).iter().map(encode).collect();
            let segment = &assembled.segments()[0];
            assert_eq!(segment.base(), 0x2000);
            let got: Vec<u32> = segment
                .bytes()
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            assert_eq!(got, expected, "{}", program.name());
        }
    }
}
