//! Stimulus-generation throughput: the paper's future-work path must be
//! cheap enough to randomise per regression run, and the scenario
//! engine's batching/refinement must not regress on the bare
//! single-instance path. Three shapes on the perf record:
//!
//! * `gen/globals_instance` — one seeded instance at a time (the old
//!   `generate()` path, now `GlobalsConstraints::instantiate`);
//! * `gen/stimulus_plan_64` — a 64-scenario batched `StimulusPlan`;
//! * `gen/coverage_directed_round_64` — one coverage-directed refinement
//!   round of 64 scenarios biased against a half-covered page space.

use advm_gen::{
    ConstrainedRandom, CoverageDirected, CoverageFeedback, GlobalsConstraints, ScenarioEngine,
};
use advm_soc::{DerivativeId, PlatformId};
use criterion::{criterion_group, criterion_main, Criterion};

fn constraints() -> GlobalsConstraints {
    GlobalsConstraints::new(DerivativeId::Sc88C, PlatformId::Accelerator)
        .with_test_page_count(16)
        .with_knob("RANDOM_BAUD", 1..=0xFFFF)
}

fn bench_generate(c: &mut Criterion) {
    let constraints = constraints();
    let mut seed = 0u64;
    c.bench_function("gen/globals_instance", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let file = constraints.instantiate(seed).expect("space non-empty");
            file.text().len()
        });
    });
}

fn bench_stimulus_plan(c: &mut Criterion) {
    let constraints = constraints();
    let mut seed = 0u64;
    c.bench_function("gen/stimulus_plan_64", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let plan = ScenarioEngine::new(seed)
                .source(ConstrainedRandom::new(constraints.clone()))
                .batch(64)
                .plan()
                .expect("space non-empty");
            plan.len()
        });
    });
}

fn bench_coverage_directed_round(c: &mut Criterion) {
    let constraints = constraints();
    // Half the page space already seen, two modules still weak — the
    // steady-state shape of an explore round.
    let feedback = CoverageFeedback::new()
        .with_pages_seen(0..32u32)
        .with_weak_modules(["UART", "TIMER"]);
    let mut seed = 0u64;
    c.bench_function("gen/coverage_directed_round_64", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let plan = ScenarioEngine::new(seed)
                .source(CoverageDirected::new(constraints.clone(), feedback.clone()))
                .batch(64)
                .plan()
                .expect("space non-empty");
            plan.len()
        });
    });
}

criterion_group!(
    benches,
    bench_generate,
    bench_stimulus_plan,
    bench_coverage_directed_round
);
criterion_main!(benches);
