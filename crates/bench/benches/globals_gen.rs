//! Constrained-random generation throughput: seeded `Globals.inc`
//! instances per second (the paper's future-work path must be cheap
//! enough to randomise per regression run).

use advm_gen::{generate, GlobalsConstraints};
use advm_soc::{DerivativeId, PlatformId};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_generate(c: &mut Criterion) {
    let constraints = GlobalsConstraints::new(DerivativeId::Sc88C, PlatformId::Accelerator)
        .with_test_page_count(16)
        .with_knob("RANDOM_BAUD", 1..=0xFFFF);
    let mut seed = 0u64;
    c.bench_function("gen/globals_instance", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let file = generate(&constraints, seed).expect("space non-empty");
            file.text().len()
        });
    });
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
