//! Campaign-runner scaling: wall time of a golden-model campaign over
//! the catalogued suite as the worker count grows, the full six-platform
//! matrix, and the build cache's effect on multi-platform campaigns.

use advm::campaign::Campaign;
use advm::presets::{default_config, standard_system};
use advm_soc::PlatformId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_workers(c: &mut Criterion) {
    let envs = standard_system(default_config());
    let mut group = c.benchmark_group("campaign/workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = Campaign::new()
                        .envs(envs.iter().cloned())
                        .platform(PlatformId::GoldenModel)
                        .workers(workers)
                        .run()
                        .expect("builds");
                    assert_eq!(report.failed(), 0);
                    report.total()
                });
            },
        );
    }
    group.finish();
}

fn bench_full_matrix(c: &mut Criterion) {
    let envs = standard_system(default_config());
    let mut group = c.benchmark_group("campaign/full_matrix");
    group.sample_size(10);
    group.bench_function("6_platforms_4_workers", |b| {
        b.iter(|| {
            let report = Campaign::new()
                .envs(envs.iter().cloned())
                .workers(4)
                .run()
                .expect("builds");
            assert_eq!(report.failed(), 0);
            report.total()
        });
    });
    group.finish();
}

/// The build-cache trajectory: the same six-platform campaign with the
/// content-keyed cache on (platform-independent cells assemble once per
/// distinct abstraction-layer knob set) and off (every job assembles).
fn bench_build_cache(c: &mut Criterion) {
    let envs = standard_system(default_config());
    let mut group = c.benchmark_group("campaign/build_cache");
    group.sample_size(10);
    for (label, cached) in [("cached", true), ("uncached", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = Campaign::new()
                    .envs(envs.iter().cloned())
                    .workers(4)
                    .cache(cached)
                    .run()
                    .expect("builds");
                assert_eq!(report.failed(), 0);
                assert_eq!(report.cache_hits() > 0, cached);
                report.unique_builds()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workers, bench_full_matrix, bench_build_cache);
criterion_main!(benches);
