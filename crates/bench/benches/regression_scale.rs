//! Regression-runner scaling: wall time of a golden-model regression
//! over the catalogued suite as the worker count grows.

use advm::presets::{default_config, standard_system};
use advm::regression::{run_regression, RegressionConfig};
use advm_soc::PlatformId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_workers(c: &mut Criterion) {
    let envs = standard_system(default_config());
    let mut group = c.benchmark_group("regression/workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let config = RegressionConfig {
                    platforms: vec![PlatformId::GoldenModel],
                    workers,
                    fault: None,
                    fuel: advm_sim::DEFAULT_FUEL,
                };
                b.iter(|| {
                    let report = run_regression(&envs, &config).expect("builds");
                    assert_eq!(report.failed(), 0);
                    report.total()
                });
            },
        );
    }
    group.finish();
}

fn bench_full_matrix(c: &mut Criterion) {
    let envs = standard_system(default_config());
    let mut group = c.benchmark_group("regression/full_matrix");
    group.sample_size(10);
    group.bench_function("6_platforms_4_workers", |b| {
        b.iter(|| {
            let report = run_regression(&envs, &RegressionConfig::full()).expect("builds");
            assert_eq!(report.failed(), 0);
            report.total()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_workers, bench_full_matrix);
criterion_main!(benches);
