//! Fault-matrix audit cost: what a suite-strength sweep adds on top of a
//! plain campaign, how it scales with the audited platform count, and
//! the price of the escape-driven scenario round.

use advm::audit::FaultAudit;
use advm::presets::{default_config, page_env, register_env, uart_env};
use advm_sim::PlatformFault;
use advm_soc::PlatformId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A compact suite that still kills most of the catalog: page read/write
/// paths, the UART, and the testbench registers.
fn bench_suite() -> Vec<advm::env::ModuleTestEnv> {
    vec![
        page_env(default_config(), 1),
        uart_env(default_config()),
        register_env(default_config()),
    ]
}

fn bench_platform_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit/platforms");
    group.sample_size(10);
    let sets: [(&str, &[PlatformId]); 2] = [
        ("rtl", &[PlatformId::RtlSim]),
        (
            "rtl+gate+silicon",
            &[
                PlatformId::RtlSim,
                PlatformId::GateSim,
                PlatformId::ProductSilicon,
            ],
        ),
    ];
    for (label, platforms) in sets {
        group.bench_with_input(BenchmarkId::from_parameter(label), &platforms, |b, &ps| {
            b.iter(|| {
                let report = FaultAudit::new()
                    .suite(bench_suite())
                    .faults([
                        PlatformFault::PageActiveOffByOne,
                        PlatformFault::UartDropsBytes,
                        PlatformFault::MailboxTicksFrozen,
                    ])
                    .platforms(ps.iter().copied())
                    .escape_rounds(0)
                    .fuel(200_000)
                    .workers(4)
                    .run()
                    .expect("audit runs");
                assert_eq!(report.broken(), 0);
                report.detected()
            });
        });
    }
    group.finish();
}

/// The closed loop's price: a fault the seed suite masks, audited with
/// and without the escape-driven scenario round that kills it.
fn bench_escape_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit/escape_round");
    group.sample_size(10);
    for (label, rounds) in [("seed_only", 0usize), ("with_escape_round", 1)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = FaultAudit::new()
                    .suite(bench_suite())
                    .faults([PlatformFault::PageMapWriteIgnored])
                    .platforms([PlatformId::RtlSim])
                    .escape_rounds(rounds)
                    .scenarios(4)
                    .fuel(200_000)
                    .workers(4)
                    .run()
                    .expect("audit runs");
                assert_eq!(
                    report.escapes().is_empty(),
                    rounds > 0,
                    "the escape round must kill the dead write-enable"
                );
                report.detected()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_platform_scaling, bench_escape_round);
criterion_main!(benches);
