//! Simulator throughput per platform: the same ~60k-instruction
//! workload executed on each of the six platforms (cycle-accurate
//! platforms pay for their cost modelling).

use advm_asm::{assemble_str, Image};
use advm_sim::Platform;
use advm_soc::{Derivative, PlatformId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workload() -> Image {
    // ~10k iterations x 6 instructions.
    let program = assemble_str(
        "\
_main:
    LOAD d1, #10000
    MOVI d2, #0
loop:
    ADD d2, d2, d1
    XOR d2, d2, d1
    SUB d1, d1, #1
    CMP d1, #0
    JNE loop
    HALT #0
",
    )
    .expect("assembles");
    let mut image = Image::new();
    image.load_program(&program).expect("links");
    image
}

fn bench_platforms(c: &mut Criterion) {
    let image = workload();
    let derivative = Derivative::sc88a();
    let mut group = c.benchmark_group("sim/platforms");
    group.throughput(Throughput::Elements(60_000));
    for id in PlatformId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, &id| {
            b.iter(|| {
                let mut platform = Platform::new(id, &derivative);
                platform.load_image(&image);
                let result = platform.run();
                assert!(matches!(result.end, advm_sim::EndReason::Halt(0)));
                result.insns
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_platforms);
criterion_main!(benches);
