//! Porting-engine cost: re-targeting an environment (abstraction-layer
//! regeneration + change-set diff) as the suite grows — the operation
//! the methodology makes O(1) in engineer effort must also stay cheap
//! in machine time.

use advm::env::EnvConfig;
use advm::porting::port_env;
use advm::presets::page_env;
use advm_soc::{DerivativeId, PlatformId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_port(c: &mut Criterion) {
    let mut group = c.benchmark_group("porting/derivative");
    for n in [10usize, 50, 200] {
        let env = page_env(
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            n,
        );
        let target = EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel);
        group.bench_with_input(BenchmarkId::from_parameter(n), &env, |b, env| {
            b.iter(|| {
                let outcome = port_env(env, target);
                assert_eq!(advm::porting::test_files_touched(&outcome.changes), 0);
                outcome.changes.files_touched()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_port);
criterion_main!(benches);
