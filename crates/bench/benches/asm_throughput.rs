//! Assembler throughput: full pipeline (preprocess + two-pass assembly)
//! over generated programs of increasing size, plus the preprocessor-
//! heavy path (macros and conditionals).

use advm_asm::{assemble, SourceSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn straight_line_program(lines: usize) -> String {
    let mut src = String::from("_main:\n");
    for i in 0..lines {
        src.push_str(&format!("    ADDI d{}, d{}, #{}\n", i % 8, i % 8, i % 100));
    }
    src.push_str("    HALT #0\n");
    src
}

fn macro_heavy_program(expansions: usize) -> String {
    let mut src = String::from(
        "\
.MACRO STEP a, b
    ADD a, a, b
    XOR a, a, b
.ENDM
_main:
",
    );
    for i in 0..expansions {
        src.push_str(&format!("    STEP d{}, d{}\n", i % 8, (i + 1) % 8));
    }
    src.push_str("    HALT #0\n");
    src
}

fn bench_straight_line(c: &mut Criterion) {
    let mut group = c.benchmark_group("asm/straight_line");
    for lines in [100usize, 1_000, 10_000] {
        let src = straight_line_program(lines);
        group.throughput(Throughput::Elements(lines as u64));
        group.bench_with_input(BenchmarkId::from_parameter(lines), &src, |b, src| {
            b.iter(|| advm_asm::assemble_str(src).expect("assembles"));
        });
    }
    group.finish();
}

fn bench_macro_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("asm/macro_expansion");
    for expansions in [100usize, 1_000] {
        let src = macro_heavy_program(expansions);
        group.throughput(Throughput::Elements(expansions as u64));
        group.bench_with_input(BenchmarkId::from_parameter(expansions), &src, |b, src| {
            b.iter(|| advm_asm::assemble_str(src).expect("assembles"));
        });
    }
    group.finish();
}

fn bench_advm_unit(c: &mut Criterion) {
    // A realistic ADVM unit: globals + base functions + runtime + test.
    let env = advm::presets::page_env(advm::presets::default_config(), 1);
    let sources: SourceSet =
        advm::build::unit_sources(&env, "TEST_PAGE_SELECT_01").expect("cell exists");
    c.bench_function("asm/advm_unit", |b| {
        b.iter(|| assemble("__unit.asm", &sources).expect("assembles"));
    });
}

criterion_group!(
    benches,
    bench_straight_line,
    bench_macro_expansion,
    bench_advm_unit
);
criterion_main!(benches);
