//! Execution-core throughput: the no-fault six-platform sweep under
//! each decode mode. `uncached` re-decodes every fetch (the
//! pre-refactor baseline); `cached` memoises decode-on-first-fetch;
//! `predecoded` seeds the cache from a shared [`DecodedProgram`]
//! artifact; `superblock` adds whole-block dispatch on top, the
//! campaign default. The committed perf trajectory lives in
//! `BENCH_sim_throughput.json` (see `exp_sim_throughput`).

use advm_bench::experiments::sim_throughput::{sweep, workload, DecodeMode};
use advm_sim::DecodedProgram;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_decode_modes(c: &mut Criterion) {
    let image = workload();
    let decoded = DecodedProgram::from_image(&image);
    let (insns, _) = sweep(&image, &decoded, DecodeMode::Cached);
    let mut group = c.benchmark_group("sim/throughput");
    group.throughput(Throughput::Elements(insns));
    for mode in DecodeMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |b, &mode| {
                b.iter(|| sweep(&image, &decoded, mode));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decode_modes);
criterion_main!(benches);
