//! **E6 / Figure 6** — the headline porting experiment.
//!
//! The paper's code example 1 absorbs two events through `Globals.inc`:
//! a *specification change* ("the location of these control bits have
//! been shifted by one" → SC88-B) and a *derivative change* ("the page
//! control field size has increased by one bit" → SC88-C). This
//! experiment scales the test count and measures, for each event, how
//! many files and lines change under ADVM versus the hardwired baseline —
//! and verifies both suites actually pass after their respective ports.

use advm::build::run_cell;
use advm::env::EnvConfig;
use advm::porting::{port_env, test_files_touched};
use advm::presets::page_env;
use advm_baseline::{direct_page_suite, port_suite, run_direct_test, SuiteConfig};
use advm_metrics::Table;
use advm_soc::{DerivativeId, PlatformId};

/// One sweep row.
#[derive(Debug)]
pub struct Fig6Row {
    /// Number of tests.
    pub n: usize,
    /// Target derivative.
    pub target: DerivativeId,
    /// ADVM files touched.
    pub advm_files: usize,
    /// ADVM lines touched.
    pub advm_lines: usize,
    /// ADVM test files touched (the methodology drives this to zero).
    pub advm_test_files: usize,
    /// Baseline files touched.
    pub baseline_files: usize,
    /// Baseline lines touched.
    pub baseline_lines: usize,
    /// Whether the ported suites were executed and passed.
    pub verified: bool,
}

/// Structured result.
#[derive(Debug)]
pub struct Fig6Result {
    /// The sweep table.
    pub table: Table,
    /// Raw rows.
    pub rows: Vec<Fig6Row>,
}

/// Runs the sweep over `test_counts`, porting to SC88-B and SC88-C.
/// Suites with at most `verify_up_to` tests are also executed post-port.
pub fn run(test_counts: &[usize], verify_up_to: usize) -> Fig6Result {
    let source_config = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let mut table = Table::new(
        "Figure 6: port cost, ADVM vs hardwired baseline (SC88-A origin)",
        &[
            "tests",
            "target",
            "advm files",
            "advm lines",
            "advm test-files",
            "baseline files",
            "baseline lines",
            "verified",
        ],
    );
    let mut rows = Vec::new();

    for &n in test_counts {
        for target in [DerivativeId::Sc88B, DerivativeId::Sc88C] {
            let advm_env = page_env(source_config, n);
            let advm_port = port_env(&advm_env, EnvConfig::new(target, PlatformId::GoldenModel));

            let base_suite = direct_page_suite(
                SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
                n,
            );
            let (base_ported, base_changes) = port_suite(
                &base_suite,
                SuiteConfig::new(target, PlatformId::GoldenModel),
                |c| direct_page_suite(c, n),
            );

            let verified = if n <= verify_up_to {
                let advm_ok = advm_port.env.cells().iter().all(|c| {
                    run_cell(&advm_port.env, c.id())
                        .map(|r| r.passed())
                        .unwrap_or(false)
                });
                let base_ok = base_ported.cells().iter().all(|(id, _)| {
                    run_direct_test(&base_ported, id)
                        .map(|r| r.passed())
                        .unwrap_or(false)
                });
                advm_ok && base_ok
            } else {
                false
            };

            let row = Fig6Row {
                n,
                target,
                advm_files: advm_port.changes.files_touched(),
                advm_lines: advm_port.changes.lines_touched(),
                advm_test_files: test_files_touched(&advm_port.changes),
                baseline_files: base_changes.files_touched(),
                baseline_lines: base_changes.lines_touched(),
                verified,
            };
            table.row(&[
                n.to_string(),
                target.name().to_owned(),
                row.advm_files.to_string(),
                row.advm_lines.to_string(),
                row.advm_test_files.to_string(),
                row.baseline_files.to_string(),
                row.baseline_lines.to_string(),
                if n <= verify_up_to {
                    row.verified.to_string()
                } else {
                    "skipped".to_owned()
                },
            ]);
            rows.push(row);
        }
    }

    Fig6Result { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advm_cost_is_constant_baseline_cost_is_linear() {
        let result = run(&[5, 10, 20], 5);
        for row in &result.rows {
            assert_eq!(row.advm_test_files, 0, "ADVM never edits tests");
            assert!(
                row.advm_files <= 3,
                "ADVM port touches O(1) files, got {}",
                row.advm_files
            );
            assert_eq!(
                row.baseline_files, row.n,
                "baseline refactors every hardwired test"
            );
        }
        // Linear growth in the baseline, flat in ADVM.
        let advm_5 = result.rows[0].advm_files;
        let advm_20 = result.rows[4].advm_files;
        assert_eq!(advm_5, advm_20);
        let base_5 = result.rows[0].baseline_lines;
        let base_20 = result.rows[4].baseline_lines;
        assert!(base_20 > 3 * base_5, "baseline line churn grows with N");
    }

    #[test]
    fn ported_suites_verified_green() {
        let result = run(&[3], 3);
        for row in &result.rows {
            assert!(
                row.verified,
                "{:?} port must pass post-port runs",
                row.target
            );
        }
    }
}
