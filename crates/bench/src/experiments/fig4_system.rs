//! **E4+E5 / Figures 4 and 5** — the complete system environment and its
//! directory structure.
//!
//! Composes the full catalogue of module environments over one shared
//! global layer, validates the isolation rules, renders the Figure 5
//! tree, and demonstrates that cross-environment sharing is detected.

use advm::env::{EnvConfig, ModuleTestEnv, TestCell};
use advm::presets::standard_system;
use advm::system::{SystemIssue, SystemVerificationEnv};
use advm_metrics::Table;
use advm_soc::{DerivativeId, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct Fig4Result {
    /// Per-environment summary.
    pub env_table: Table,
    /// Top-level Figure 5 tree summary (directory → file count).
    pub tree_table: Table,
    /// Issues in the clean system.
    pub clean_issues: usize,
    /// Issues after injecting a cross-env include.
    pub rogue_issues: usize,
    /// Total tests in the system.
    pub total_tests: usize,
}

/// Runs the experiment.
pub fn run() -> Fig4Result {
    let config = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let sys = SystemVerificationEnv::new(
        "ADVM_System_Verification_Environment",
        standard_system(config),
    );

    let mut env_table = Table::new(
        "Figure 4: module environments sharing one global layer",
        &["environment", "tests", "abstraction lines", "test lines"],
    );
    for env in sys.envs() {
        let abstraction_lines =
            env.globals_text().lines().count() + env.base_functions_text().lines().count();
        let test_lines: usize = env.cells().iter().map(|c| c.source().lines().count()).sum();
        env_table.row(&[
            env.name().to_owned(),
            env.cells().len().to_string(),
            abstraction_lines.to_string(),
            test_lines.to_string(),
        ]);
    }

    // Figure 5 tree: group by top-two path components.
    let tree = sys.tree();
    let mut groups: Vec<(String, usize)> = Vec::new();
    for path in tree.keys() {
        let group = path.split('/').take(2).collect::<Vec<_>>().join("/");
        match groups.iter_mut().find(|(g, _)| *g == group) {
            Some((_, n)) => *n += 1,
            None => groups.push((group, 1)),
        }
    }
    let mut tree_table = Table::new(
        "Figure 5: system directory structure (files per directory)",
        &["directory", "files"],
    );
    for (group, count) in &groups {
        tree_table.row(&[group.clone(), count.to_string()]);
    }

    let clean_issues = sys.validate().len();

    // Inject a rogue environment that includes another env's base
    // functions — the isolation rule must catch it.
    let mut envs = standard_system(config);
    envs.push(ModuleTestEnv::new(
        "ROGUE",
        config,
        vec![TestCell::new(
            "TEST_ROGUE",
            "cross-env include",
            ".INCLUDE Globals.inc\n.INCLUDE PAGE/Abstraction_Layer/Base_Functions.asm\n_main:\n    RETURN\n",
        )],
    ));
    let rogue_sys = SystemVerificationEnv::new("SYS", envs);
    let rogue_issues = rogue_sys
        .validate()
        .into_iter()
        .filter(|i| matches!(i, SystemIssue::CrossEnvInclude { .. }))
        .count();

    Fig4Result {
        env_table,
        tree_table,
        clean_issues,
        rogue_issues,
        total_tests: sys.total_tests(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_system_validates_and_rogue_is_caught() {
        let result = run();
        assert_eq!(result.clean_issues, 0);
        assert!(result.rogue_issues > 0, "cross-env include must be flagged");
    }

    #[test]
    fn system_has_the_catalogued_envs_and_global_libs() {
        let result = run();
        assert_eq!(result.env_table.len(), 8);
        assert!(result.total_tests >= 15);
        let dirs: Vec<&String> = result.tree_table.rows().iter().map(|r| &r[0]).collect();
        assert!(dirs.iter().any(|d| d.contains("Global_Libraries")));
        assert!(dirs.iter().any(|d| d.ends_with("/PAGE")));
    }
}
