//! Simulator throughput: the no-fault six-platform sweep, measured as
//! simulated instructions per wall-clock second, across the four
//! decode modes — uncached (re-decode every fetch, the pre-refactor
//! baseline), cached (lazy per-bus memoisation), predecoded (cache
//! seeded from a shared [`DecodedProgram`] artifact) and superblock
//! (predecoded plus whole-block dispatch, the campaign default).
//! Timing covers execution only — machine construction and predecode
//! seeding are excluded (see [`sweep`]).
//!
//! The harness emits and checks `BENCH_sim_throughput.json`, the
//! repo's committed perf trajectory: CI re-measures in smoke mode and
//! fails on a steps/sec regression beyond tolerance in *any* mode, a
//! predecoded-vs-uncached speedup collapse, or a
//! superblock-vs-predecoded speedup below 2×.

use std::time::{Duration, Instant};

use advm_asm::{assemble_str, Image};
use advm_sim::{DecodedProgram, EndReason, Platform};
use advm_soc::{Derivative, PlatformId};

/// How the decode path is configured for a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMode {
    /// Decode cache disabled: every fetch re-decodes.
    Uncached,
    /// Decode cache enabled, cold: decode-on-first-fetch.
    Cached,
    /// Decode cache seeded from a shared predecode artifact, block
    /// tier off: the per-instruction fast path in isolation.
    Predecoded,
    /// Predecoded plus superblock dispatch (the platform default):
    /// straight-line runs execute as whole blocks with the run-loop
    /// checks hoisted to block boundaries.
    Superblock,
}

impl DecodeMode {
    /// All modes, in measurement order.
    pub const ALL: [DecodeMode; 4] = [
        DecodeMode::Uncached,
        DecodeMode::Cached,
        DecodeMode::Predecoded,
        DecodeMode::Superblock,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DecodeMode::Uncached => "uncached",
            DecodeMode::Cached => "cached",
            DecodeMode::Predecoded => "predecoded",
            DecodeMode::Superblock => "superblock",
        }
    }
}

/// One measured mode.
#[derive(Debug, Clone)]
pub struct ModeSample {
    /// Which decode configuration ran.
    pub mode: DecodeMode,
    /// Instructions one sweep retires.
    pub insns: u64,
    /// Execution wall time of the fastest sweep.
    pub wall: Duration,
}

impl ModeSample {
    /// Simulated instructions per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        advm::campaign::CampaignPerf {
            instructions: self.insns,
            wall: self.wall,
            ..advm::campaign::CampaignPerf::default()
        }
        .steps_per_sec()
    }
}

/// The sealed measurement.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// One sample per [`DecodeMode`], in [`DecodeMode::ALL`] order.
    pub samples: Vec<ModeSample>,
    /// Instructions one six-platform sweep retires.
    pub sweep_insns: u64,
}

impl ThroughputReport {
    /// The sample for one mode.
    pub fn sample(&self, mode: DecodeMode) -> &ModeSample {
        self.samples
            .iter()
            .find(|s| s.mode == mode)
            .expect("every mode is measured")
    }

    /// Predecoded-vs-uncached speedup: the headline number of the
    /// execution-core refactor.
    pub fn speedup(&self) -> f64 {
        let base = self.sample(DecodeMode::Uncached).steps_per_sec();
        if base <= 0.0 {
            0.0
        } else {
            self.sample(DecodeMode::Predecoded).steps_per_sec() / base
        }
    }

    /// Superblock-vs-predecoded speedup: the headline number of the
    /// block-dispatch tier.
    pub fn block_speedup(&self) -> f64 {
        let base = self.sample(DecodeMode::Predecoded).steps_per_sec();
        if base <= 0.0 {
            0.0
        } else {
            self.sample(DecodeMode::Superblock).steps_per_sec() / base
        }
    }

    /// Renders the committed-baseline JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"sweep_insns\":{},", self.sweep_insns));
        s.push_str("\"modes\":[");
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"mode\":\"{}\",\"steps_per_sec\":{:.0}}}",
                sample.mode.name(),
                sample.steps_per_sec()
            ));
        }
        s.push_str(&format!(
            "],\"speedup_predecoded_vs_uncached\":{:.2},\
             \"speedup_superblock_vs_predecoded\":{:.2}}}",
            self.speedup(),
            self.block_speedup()
        ));
        s
    }
}

/// The benchmark workload: a ~500k-instruction ALU/branch loop (the
/// same shape the `sim/platforms` bench uses, 10× longer so per-run
/// constant costs and timer noise amortize below the gate tolerances).
pub fn workload() -> Image {
    let program = assemble_str(
        "\
_main:
    LOAD d1, #100000
    MOVI d2, #0
loop:
    ADD d2, d2, d1
    XOR d2, d2, d1
    SUB d1, d1, #1
    CMP d1, #0
    JNE loop
    HALT #0
",
    )
    .expect("workload assembles");
    let mut image = Image::new();
    image.load_program(&program).expect("workload links");
    image
}

/// Runs the no-fault six-platform sweep once in one decode mode and
/// returns the instructions retired and the *execution* wall time.
///
/// Only the [`Platform::run`] calls are timed: machine construction,
/// image load and predecode seeding are setup, not simulation, and
/// dwarf a 50k-instruction run — timing them would measure the
/// allocator, not the dispatch tiers the report compares.
pub fn sweep(image: &Image, decoded: &DecodedProgram, mode: DecodeMode) -> (u64, Duration) {
    let derivative = Derivative::sc88a();
    let mut insns = 0;
    let mut wall = Duration::ZERO;
    for id in PlatformId::ALL {
        let mut platform = Platform::new(id, &derivative);
        // Superblocks default on; the three per-instruction modes
        // measure the legacy tiers and must switch them off.
        match mode {
            DecodeMode::Uncached => {
                platform.set_superblocks(false);
                platform.set_decode_cache(false);
                platform.load_image(image);
            }
            DecodeMode::Cached => {
                platform.set_superblocks(false);
                platform.load_image(image);
            }
            DecodeMode::Predecoded => {
                platform.set_superblocks(false);
                platform.load_prebuilt(image, decoded);
            }
            DecodeMode::Superblock => platform.load_prebuilt(image, decoded),
        }
        let started = Instant::now();
        let result = platform.run();
        wall += started.elapsed();
        assert!(
            matches!(result.end, EndReason::Halt(0)),
            "workload must halt cleanly: {result}"
        );
        insns += result.insns;
    }
    (insns, wall)
}

/// Measures every mode over `reps` sweeps each (after one untimed
/// warm-up round) and seals the report.
///
/// The modes run round-robin, and each mode reports its *fastest*
/// sweep: a noisy neighbour or a frequency-scaling dip then disturbs
/// every mode alike instead of one mode's whole measurement window,
/// and the minimum converges on the undisturbed cost — which is what
/// the committed trajectory and the speedup gates are about.
pub fn run(reps: usize) -> ThroughputReport {
    let image = workload();
    let decoded = DecodedProgram::from_image(&image);
    let (sweep_insns, _) = sweep(&image, &decoded, DecodeMode::Cached);
    for mode in DecodeMode::ALL {
        sweep(&image, &decoded, mode); // warm-up
    }
    let mut insns = [0u64; DecodeMode::ALL.len()];
    let mut best = [Duration::MAX; DecodeMode::ALL.len()];
    for _ in 0..reps.max(1) {
        for (i, mode) in DecodeMode::ALL.into_iter().enumerate() {
            let (n, wall) = sweep(&image, &decoded, mode);
            insns[i] = n;
            best[i] = best[i].min(wall);
        }
    }
    let samples = DecodeMode::ALL
        .into_iter()
        .enumerate()
        .map(|(i, mode)| ModeSample {
            mode,
            insns: insns[i],
            wall: best[i],
        })
        .collect();
    ThroughputReport {
        samples,
        sweep_insns,
    }
}

/// Pulls `"key":number` out of a flat JSON document — enough to read
/// the committed baseline without a JSON dependency.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The steps/sec a baseline document records for one mode.
pub fn baseline_steps_per_sec(json: &str, mode: DecodeMode) -> Option<f64> {
    let marker = format!("\"mode\":\"{}\"", mode.name());
    let at = json.find(&marker)?;
    json_number(&json[at..], "steps_per_sec")
}

/// Gates a fresh measurement against the committed baseline: every
/// mode's steps/sec must be within `tolerance` of its committed number
/// (e.g. `0.8` = no more than 20% slower), the predecoded-vs-uncached
/// speedup must hold at ≥ 2×, and the superblock-vs-predecoded speedup
/// must hold at ≥ 2×.
///
/// A mode missing from the baseline document is skipped (not an error)
/// so a freshly added mode gates only once its number is committed —
/// except `predecoded`, which has been in every baseline and whose
/// absence means the document is malformed.
///
/// # Errors
///
/// A human-readable explanation of the first failed gate.
pub fn check_against(
    report: &ThroughputReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), String> {
    baseline_steps_per_sec(baseline_json, DecodeMode::Predecoded)
        .ok_or("baseline JSON lacks a predecoded steps_per_sec entry")?;
    for mode in DecodeMode::ALL {
        let Some(committed) = baseline_steps_per_sec(baseline_json, mode) else {
            continue;
        };
        let measured = report.sample(mode).steps_per_sec();
        if measured < committed * tolerance {
            return Err(format!(
                "throughput regression ({}): {measured:.0} steps/s vs committed \
                 {committed:.0} (allowed floor {:.0})",
                mode.name(),
                committed * tolerance
            ));
        }
    }
    let speedup = report.speedup();
    if speedup < 2.0 {
        return Err(format!(
            "decode-cache speedup collapsed: {speedup:.2}x predecoded-vs-uncached (need >= 2x)"
        ));
    }
    let block_speedup = report.block_speedup();
    if block_speedup < 2.0 {
        return Err(format!(
            "superblock speedup collapsed: {block_speedup:.2}x superblock-vs-predecoded \
             (need >= 2x)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_across_modes() {
        let image = workload();
        let decoded = DecodedProgram::from_image(&image);
        let counts: Vec<u64> = DecodeMode::ALL
            .into_iter()
            .map(|mode| sweep(&image, &decoded, mode).0)
            .collect();
        assert!(counts[0] > 450_000 * 6, "six runs of the ~500k workload");
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
        assert_eq!(counts[2], counts[3], "block dispatch retires identically");
    }

    #[test]
    fn json_roundtrips_through_the_baseline_reader() {
        let report = run(1);
        let json = report.to_json();
        let read = baseline_steps_per_sec(&json, DecodeMode::Predecoded).unwrap();
        let actual = report.sample(DecodeMode::Predecoded).steps_per_sec();
        assert!((read - actual).abs() <= 1.0, "{read} vs {actual}");
        assert!(json_number(&json, "sweep_insns").unwrap() > 0.0);
        let block = baseline_steps_per_sec(&json, DecodeMode::Superblock).unwrap();
        assert!(block > 0.0);
        assert!(json_number(&json, "speedup_superblock_vs_predecoded").is_some());
    }

    #[test]
    fn check_gates_on_regression_and_speedup() {
        let report = run(1);
        let fast = format!(
            "{{\"modes\":[{{\"mode\":\"predecoded\",\"steps_per_sec\":{:.0}}}]}}",
            report.sample(DecodeMode::Predecoded).steps_per_sec() * 100.0
        );
        assert!(check_against(&report, &fast, 0.8).is_err());
        let slow = "{\"modes\":[{\"mode\":\"predecoded\",\"steps_per_sec\":1}]}";
        // Against a tiny committed number only the speedup gate remains;
        // either outcome is legitimate on a loaded CI box, so just make
        // sure it does not panic.
        let _ = check_against(&report, slow, 0.8);
        assert!(check_against(&report, "{}", 0.8).is_err(), "missing key");
    }
}
