//! **E9 / §5 claim** — "this time is easily recovered on first reuse
//! with a new target platform or derivative".
//!
//! Plays a realistic project history against both methodologies and
//! accumulates modelled engineer-effort:
//!
//! 1. develop the suite for SC88-A on the golden model,
//! 2. bring it up on the five remaining platforms,
//! 3. port it to SC88-B, SC88-C and SC88-D.
//!
//! ADVM pays an up-front abstraction-layer cost and near-zero port
//! costs; the baseline starts cheaper and pays O(#tests) per port. The
//! experiment reports the cumulative curves and the crossover point.

use advm::env::EnvConfig;
use advm::porting::port_env;
use advm::presets::page_env;
use advm_baseline::{direct_page_suite, port_suite, SuiteConfig};
use advm_metrics::{EffortModel, Table};
use advm_soc::{DerivativeId, PlatformId};

/// One stage of the history.
#[derive(Debug)]
pub struct EffortStage {
    /// Stage description.
    pub stage: String,
    /// ADVM cumulative minutes after this stage.
    pub advm_cumulative: f64,
    /// Baseline cumulative minutes after this stage.
    pub baseline_cumulative: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct EffortResult {
    /// The cumulative-effort table.
    pub table: Table,
    /// Raw stages.
    pub stages: Vec<EffortStage>,
    /// Index of the first stage where ADVM's cumulative effort is lower
    /// (`None` if it never crosses within the history).
    pub crossover_stage: Option<usize>,
}

/// Runs the history for a suite of `n` tests.
pub fn run(n: usize) -> EffortResult {
    let model = EffortModel::standard();
    let origin = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let base_origin = SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);

    let mut stages: Vec<EffortStage> = Vec::new();
    let mut advm_total = 0.0;
    let mut base_total = 0.0;

    // Stage 0: initial development. The comparison uses exactly `n`
    // Figure 6-style cells on both sides (page_env appends an extra
    // window-coverage cell, which has no baseline counterpart).
    let template = page_env(origin, n);
    let advm_env = advm::env::ModuleTestEnv::new("PAGE", origin, template.cells()[..n].to_vec());
    let advm_test_lines: usize = advm_env
        .cells()
        .iter()
        .map(|c| c.source().lines().count())
        .sum();
    let abstraction_lines =
        advm_env.globals_text().lines().count() + advm_env.base_functions_text().lines().count();
    // The globals file is tool-generated from the datasheet, but the
    // abstraction-layer *authoring* effort is real: count the base
    // functions at full new-code cost and the globals at a quarter (it
    // is mostly transcription), matching the paper's "initial time
    // penalty while developing the abstraction layer".
    let advm_initial = model.write_new(n, advm_test_lines)
        + model.write_new(2, advm_env.base_functions_text().lines().count())
        + 0.25 * model.minutes_per_new_line * advm_env.globals_text().lines().count() as f64;
    let _ = abstraction_lines;

    let base_suite = direct_page_suite(base_origin, n);
    let base_initial = model.write_new(n, base_suite.total_lines());

    advm_total += advm_initial;
    base_total += base_initial;
    stages.push(EffortStage {
        stage: format!("develop {n}-test suite (SC88-A, golden)"),
        advm_cumulative: advm_total,
        baseline_cumulative: base_total,
    });

    // Stages 1..=5: the remaining platforms.
    let mut advm_current = advm_env;
    let mut base_current = base_suite;
    for platform in [
        PlatformId::RtlSim,
        PlatformId::GateSim,
        PlatformId::Accelerator,
        PlatformId::Bondout,
        PlatformId::ProductSilicon,
    ] {
        let advm_port = port_env(
            &advm_current,
            EnvConfig {
                platform,
                ..advm_current.config()
            },
        );
        advm_total += model.apply_changeset(&advm_port.changes);
        advm_current = advm_port.env;

        let target = SuiteConfig {
            platform,
            ..base_current.config()
        };
        let (ported, changes) = port_suite(&base_current, target, |c| direct_page_suite(c, n));
        base_total += model.apply_changeset(&changes);
        base_current = ported;

        stages.push(EffortStage {
            stage: format!("bring-up on {platform}"),
            advm_cumulative: advm_total,
            baseline_cumulative: base_total,
        });
    }

    // Stages 6..=8: derivatives.
    for derivative in [
        DerivativeId::Sc88B,
        DerivativeId::Sc88C,
        DerivativeId::Sc88D,
    ] {
        let advm_port = port_env(
            &advm_current,
            EnvConfig::new(derivative, advm_current.config().platform),
        );
        advm_total += model.apply_changeset(&advm_port.changes);
        advm_current = advm_port.env;

        let target = SuiteConfig::new(derivative, base_current.config().platform);
        let (ported, changes) = port_suite(&base_current, target, |c| direct_page_suite(c, n));
        base_total += model.apply_changeset(&changes);
        base_current = ported;

        stages.push(EffortStage {
            stage: format!("port to {}", derivative.name()),
            advm_cumulative: advm_total,
            baseline_cumulative: base_total,
        });
    }

    let crossover_stage = stages
        .iter()
        .position(|s| s.advm_cumulative < s.baseline_cumulative);

    let mut table = Table::new(
        format!("Cumulative effort, {n}-test suite (minutes, modelled)"),
        &["stage", "ADVM", "baseline", "ADVM ahead?"],
    );
    for s in &stages {
        table.row(&[
            s.stage.clone(),
            format!("{:.0}", s.advm_cumulative),
            format!("{:.0}", s.baseline_cumulative),
            if s.advm_cumulative < s.baseline_cumulative {
                "yes"
            } else {
                "no"
            }
            .to_owned(),
        ]);
    }

    EffortResult {
        table,
        stages,
        crossover_stage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advm_starts_behind_and_crosses_over() {
        // With a small starting suite the library is not yet amortised,
        // giving the paper's "initial time penalty" shape. (Large suites
        // start ahead outright — see `bigger_suites_cross_over_no_later`.)
        let result = run(10);
        let first = &result.stages[0];
        assert!(
            first.advm_cumulative > first.baseline_cumulative,
            "the paper concedes an initial time penalty"
        );
        let crossover = result.crossover_stage.expect("ADVM must eventually win");
        assert!(
            crossover <= 4,
            "crossover expected within the platform bring-ups, got stage {crossover}"
        );
        let last = result.stages.last().unwrap();
        assert!(
            last.baseline_cumulative > 1.3 * last.advm_cumulative,
            "by the end of the family, the baseline is far behind: {last:?}"
        );
        // The paper's "rapid porting" claim is about marginal cost: each
        // ADVM port must be a small fraction of the baseline's.
        for window in result.stages.windows(2) {
            let advm_delta = window[1].advm_cumulative - window[0].advm_cumulative;
            let base_delta = window[1].baseline_cumulative - window[0].baseline_cumulative;
            if base_delta > 0.0 {
                assert!(
                    advm_delta < 0.35 * base_delta,
                    "port `{}` not rapid: ADVM {advm_delta:.0} vs baseline {base_delta:.0}",
                    window[1].stage
                );
            }
        }
    }

    #[test]
    fn bigger_suites_cross_over_no_later() {
        let small = run(5).crossover_stage.unwrap_or(usize::MAX);
        let large = run(50).crossover_stage.unwrap_or(usize::MAX);
        assert!(
            large <= small,
            "more tests amortise the abstraction layer faster"
        );
    }
}
