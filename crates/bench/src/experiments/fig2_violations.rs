//! **E2 / Figure 2** — abuse of the structure, and what it costs.
//!
//! Sweeps the fraction of tests that bypass the abstraction layer, shows
//! the static checker finds every abuse, then ports the environment to a
//! new derivative and measures the damage: clean tests keep passing,
//! abusive tests break and must be rewritten (whose cost we price with
//! the effort model).

use advm::build::run_cell;
use advm::env::{EnvConfig, ModuleTestEnv};
use advm::porting::port_env;
use advm::presets::{page_env, violating_page_cell};
use advm::violation::check_env;
use advm_metrics::{EffortModel, Table};
use advm_soc::{DerivativeId, PlatformId};

/// One row of the sweep.
#[derive(Debug)]
pub struct Fig2Row {
    /// Total tests in the environment.
    pub total_tests: usize,
    /// Abusive tests injected.
    pub abusive: usize,
    /// Violations the checker reported.
    pub violations_found: usize,
    /// Tests failing after the port to SC88-B.
    pub broken_after_port: usize,
    /// Estimated repair effort in minutes.
    pub repair_minutes: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct Fig2Result {
    /// The sweep table.
    pub table: Table,
    /// Raw rows for assertions.
    pub rows: Vec<Fig2Row>,
}

/// Runs the sweep: `total` tests, abuse counts from `abuse_counts`.
///
/// # Panics
///
/// Panics if an abuse count exceeds `total`.
pub fn run(total: usize, abuse_counts: &[usize]) -> Fig2Result {
    let config = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let target = EnvConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel);
    let model = EffortModel::standard();

    let mut table = Table::new(
        format!("Figure 2: cost of abstraction-layer abuse ({total} tests, port SC88-A -> SC88-B)"),
        &[
            "abusive tests",
            "violations found",
            "broken after port",
            "repair minutes",
        ],
    );
    let mut rows = Vec::new();

    for &abusive in abuse_counts {
        assert!(abusive <= total, "abuse count exceeds total");
        let clean = page_env(config, total - abusive.min(total - 1));
        // Build the mixed environment: clean cells + abusive cells.
        let mut cells: Vec<_> = clean.cells()[..total - abusive].to_vec();
        for i in 0..abusive {
            cells.push(violating_page_cell(i + 1));
        }
        let env = ModuleTestEnv::new("PAGE", config, cells);

        let violations_found = check_env(&env).len();
        let ported = port_env(&env, target).env;
        let mut broken = 0;
        let mut repair_lines = 0;
        for cell in ported.cells() {
            let result = run_cell(&ported, cell.id()).expect("builds");
            if !result.passed() {
                broken += 1;
                repair_lines += cell.source().lines().count();
            }
        }
        let repair_minutes = model.write_new(broken, repair_lines);
        table.row(&[
            abusive.to_string(),
            violations_found.to_string(),
            broken.to_string(),
            format!("{repair_minutes:.0}"),
        ]);
        rows.push(Fig2Row {
            total_tests: total,
            abusive,
            violations_found,
            broken_after_port: broken,
            repair_minutes,
        });
    }

    Fig2Result { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abuse_breaks_exactly_the_abusive_tests() {
        let result = run(6, &[0, 2, 4]);
        for row in &result.rows {
            assert_eq!(
                row.broken_after_port, row.abusive,
                "only abusive tests break on the port"
            );
            assert!(
                row.violations_found >= 2 * row.abusive,
                "each abusive test carries at least two violations"
            );
        }
        // Zero abuse → zero violations and zero breakage.
        assert_eq!(result.rows[0].violations_found, 0);
        assert_eq!(result.rows[0].repair_minutes, 0.0);
    }

    #[test]
    fn repair_cost_scales_with_abuse() {
        let result = run(6, &[1, 3]);
        assert!(result.rows[1].repair_minutes > result.rows[0].repair_minutes);
    }
}
