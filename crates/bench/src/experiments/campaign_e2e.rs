//! End-to-end campaign throughput: scenario runs per second through the
//! whole orchestration stack — planning, assembly front-end, linking,
//! machine setup, execution and report sealing.
//!
//! The workload is a fuzz-style verification session, the shape
//! `advm-serve` sees under fresh traffic: 16 unique single-cell
//! environments (every program distinct, so nothing is warm) swept
//! across all six platforms, then re-swept under three fault-insertion
//! campaigns. *Cold* gives every campaign its own empty artifact store
//! (fresh traffic: everything assembles, links and boots from scratch);
//! *warm* runs the same session against one pre-populated shared store,
//! so only machine setup and execution repeat.
//!
//! Alongside the headline pooled+parallel configuration the harness
//! measures machine pooling off ([`Campaign::machine_pool`]) and the
//! parallel assembly front-end off ([`Campaign::parallel_frontend`]);
//! CI gates both ratios at no-regression, and gates the pooled cold
//! number against the committed `BENCH_campaign_e2e.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use advm::campaign::CampaignReport;
use advm::env::{EnvConfig, ModuleTestEnv, TestCell};
use advm::{ArtifactStore, Campaign};
use advm_sim::PlatformFault;
use advm_soc::{DerivativeId, PlatformId};

/// Environments in the fuzz-style workload (one unique cell each).
const CELLS: usize = 16;

/// The session's fault-insertion sweeps: after the nominal campaign,
/// one campaign per entry re-runs the matrix with the fault armed on
/// one platform (the workload's cells never touch the faulted blocks,
/// so verdicts stay deterministic and the delta is pure orchestration).
const FAULT_SWEEPS: [(PlatformId, PlatformFault); 3] = [
    (PlatformId::RtlSim, PlatformFault::PageActiveOffByOne),
    (PlatformId::GateSim, PlatformFault::UartDropsBytes),
    (PlatformId::ProductSilicon, PlatformFault::TimerNeverExpires),
];

/// Builds the deterministic fuzz-style workload: every cell is a unique
/// program (distinct constants and loop trip counts), so a cold session
/// assembles every image like a `fuzz`/`explore` batch would.
pub fn workload() -> Vec<ModuleTestEnv> {
    (0..CELLS)
        .map(|i| {
            let a = 0x1111 + 37 * i as u32;
            let iters = 48 + (i as u32 % 16);
            let source = format!(
                "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #{a}
    MOVI d2, #{iters}
    MOVI d3, #0
e2e_loop_{i}:
    ADD d3, d3, d1
    XOR d3, d3, d2
    SUB d2, d2, #1
    CMP d2, #0
    JNE e2e_loop_{i}
    CALL Base_Report_Pass
    RETURN
"
            );
            ModuleTestEnv::new(
                format!("E2E_{i:03}"),
                EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
                vec![TestCell::new(
                    format!("TEST_E2E_{i:03}"),
                    "unique fuzz-style cell",
                    source,
                )],
            )
        })
        .collect()
}

/// One measured session configuration.
#[derive(Debug, Clone)]
pub struct SessionSample {
    /// Stable machine-readable name.
    pub mode: &'static str,
    /// Scenario runs in the measured session.
    pub runs: u64,
    /// Wall time of the fastest repetition.
    pub wall: Duration,
    /// Summed campaign build-phase wall (planning + assembly + link).
    pub build: Duration,
    /// Summed campaign execution-phase wall.
    pub exec: Duration,
    /// Summed campaign report-sealing wall.
    pub report: Duration,
}

impl SessionSample {
    /// Scenario runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.runs as f64 / secs
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"runs_per_sec\":{:.0},\"runs\":{},\
             \"build_ms\":{:.1},\"exec_ms\":{:.1},\"report_ms\":{:.2}}}",
            self.mode,
            self.runs_per_sec(),
            self.runs,
            self.build.as_secs_f64() * 1e3,
            self.exec.as_secs_f64() * 1e3,
            self.report.as_secs_f64() * 1e3,
        )
    }
}

/// The sealed measurement.
#[derive(Debug, Clone)]
pub struct CampaignE2eReport {
    /// Cold session, machine pool + parallel front-end (the default).
    pub cold_pooled: SessionSample,
    /// Warm re-run of the pooled session over the populated store.
    pub warm_pooled: SessionSample,
    /// Cold session with fresh machine construction per job.
    pub cold_fresh: SessionSample,
    /// Cold session with the serial assembly front-end.
    pub cold_serial: SessionSample,
    /// Cold runs/sec of the pre-optimisation baseline this was measured
    /// against (same workload on the parent commit; 0 when unknown).
    pub baseline_cold: f64,
}

impl CampaignE2eReport {
    /// Pooled-vs-fresh cold throughput ratio.
    pub fn pooled_vs_fresh(&self) -> f64 {
        ratio(
            self.cold_pooled.runs_per_sec(),
            self.cold_fresh.runs_per_sec(),
        )
    }

    /// Parallel-vs-serial front-end cold throughput ratio.
    pub fn parallel_vs_serial(&self) -> f64 {
        ratio(
            self.cold_pooled.runs_per_sec(),
            self.cold_serial.runs_per_sec(),
        )
    }

    /// Cold speedup against the recorded pre-optimisation baseline.
    pub fn speedup_vs_baseline(&self) -> f64 {
        ratio(self.cold_pooled.runs_per_sec(), self.baseline_cold)
    }

    /// Renders the committed-baseline JSON document.
    pub fn to_json(&self) -> String {
        let samples = [
            &self.cold_pooled,
            &self.warm_pooled,
            &self.cold_fresh,
            &self.cold_serial,
        ]
        .iter()
        .map(|s| s.to_json())
        .collect::<Vec<_>>()
        .join(",");
        format!(
            "{{\"samples\":[{samples}],\
             \"baseline_cold_runs_per_sec\":{:.0},\
             \"speedup_vs_baseline\":{:.2},\
             \"pooled_vs_fresh\":{:.2},\
             \"parallel_vs_serial\":{:.2}}}",
            self.baseline_cold,
            self.speedup_vs_baseline(),
            self.pooled_vs_fresh(),
            self.parallel_vs_serial(),
        )
    }
}

fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator <= 0.0 {
        0.0
    } else {
        numerator / denominator
    }
}

/// Runs the session's four campaigns (nominal + fault sweeps) and
/// returns the accumulated (runs, build, exec, report). With a shared
/// store the session is warm after the first population; without one
/// every campaign is fully cold on its own empty store.
fn session(
    envs: &[ModuleTestEnv],
    shared: Option<&Arc<ArtifactStore>>,
    pool: bool,
    parallel: bool,
) -> (u64, Duration, Duration, Duration) {
    let mut runs = 0u64;
    let mut build = Duration::ZERO;
    let mut exec = Duration::ZERO;
    let mut sealing = Duration::ZERO;
    let sweeps = std::iter::once(None).chain(FAULT_SWEEPS.into_iter().map(Some));
    for fault in sweeps {
        let store = shared
            .map(Arc::clone)
            .unwrap_or_else(|| Arc::new(ArtifactStore::new(256)));
        let mut campaign = Campaign::new()
            .envs(envs.iter().cloned())
            .artifact_store(store)
            .machine_pool(pool)
            .parallel_frontend(parallel);
        if let Some((platform, fault)) = fault {
            campaign = campaign.fault(platform, fault);
        }
        let report: CampaignReport = campaign.run().expect("benchmark campaign runs");
        runs += report.total() as u64;
        build += report.perf().build_wall;
        exec += report.perf().exec_wall;
        sealing += report.perf().report_wall;
    }
    (runs, build, exec, sealing)
}

/// Measures all four configurations over `reps` sessions each (after a
/// warm-up session) and seals the report. Each sample keeps its
/// *fastest* session — best-of-N is robust against scheduler noise on
/// shared machines, which dwarfs the run-to-run variance of this
/// deterministic workload. `baseline_cold` is the cold pooled runs/sec
/// recorded for the pre-optimisation baseline (pass 0.0 when not
/// re-measuring against a parent commit).
pub fn run(reps: usize, baseline_cold: f64) -> CampaignE2eReport {
    let envs = workload();
    // Warm up allocator, caches and code paths once.
    session(&envs, None, true, true);

    // (mode, pool, parallel, warm) — measured round-robin, one session
    // per mode per repetition, so a slow scheduling episode degrades
    // every mode of that round equally instead of biasing whichever
    // mode it happened to land on.
    let modes: [(&'static str, bool, bool, bool); 4] = [
        ("cold_pooled", true, true, false),
        ("warm_pooled", true, true, true),
        ("cold_fresh", false, true, false),
        ("cold_serial_frontend", true, false, false),
    ];
    let mut best: [Option<SessionSample>; 4] = [None, None, None, None];
    for _ in 0..reps.max(1) {
        for (slot, &(mode, pool, parallel, warm)) in modes.iter().enumerate() {
            let store = Arc::new(ArtifactStore::new(256));
            let shared = warm.then_some(&store);
            if warm {
                // Populate the store; the measured pass below is warm.
                session(&envs, shared, pool, parallel);
            }
            let started = Instant::now();
            let (runs, build, exec, sealing) = session(&envs, shared, pool, parallel);
            let wall = started.elapsed();
            if best[slot].as_ref().is_none_or(|b| wall < b.wall) {
                best[slot] = Some(SessionSample {
                    mode,
                    runs,
                    wall,
                    build,
                    exec,
                    report: sealing,
                });
            }
        }
    }
    let [cold_pooled, warm_pooled, cold_fresh, cold_serial] =
        best.map(|b| b.expect("at least one session measured"));

    CampaignE2eReport {
        cold_pooled,
        warm_pooled,
        cold_fresh,
        cold_serial,
        baseline_cold,
    }
}

/// Pulls `"key":number` out of a flat JSON document — enough to read
/// the committed baseline without a JSON dependency.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The runs/sec a baseline document records for one mode.
pub fn baseline_runs_per_sec(json: &str, mode: &str) -> Option<f64> {
    let marker = format!("\"mode\":\"{mode}\"");
    let at = json.find(&marker)?;
    json_number(&json[at..], "runs_per_sec")
}

/// Gates a fresh measurement against the committed baseline:
///
/// * the pooled cold session must be within `tolerance` of the
///   committed `cold_pooled` runs/sec,
/// * machine pooling must not regress throughput
///   (`pooled_vs_fresh >= tolerance`), and
/// * the parallel front-end must not regress throughput
///   (`parallel_vs_serial >= tolerance`; the two paths are identical at
///   one worker, so this guards overhead, not a speedup).
///
/// # Errors
///
/// A human-readable explanation of the first failed gate.
pub fn check_against(
    report: &CampaignE2eReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), String> {
    let measured = report.cold_pooled.runs_per_sec();
    let committed = baseline_runs_per_sec(baseline_json, "cold_pooled")
        .ok_or("baseline JSON lacks a cold_pooled runs_per_sec entry")?;
    if measured < committed * tolerance {
        return Err(format!(
            "cold-campaign regression: {measured:.0} runs/s vs committed {committed:.0} \
             (allowed floor {:.0})",
            committed * tolerance
        ));
    }
    let pooled = report.pooled_vs_fresh();
    if pooled < tolerance {
        return Err(format!(
            "machine pooling regresses throughput: pooled-vs-fresh ratio {pooled:.2} \
             (floor {tolerance:.2})"
        ));
    }
    let parallel = report.parallel_vs_serial();
    if parallel < tolerance {
        return Err(format!(
            "parallel front-end regresses throughput: parallel-vs-serial ratio {parallel:.2} \
             (floor {tolerance:.2})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_run_the_same_workload() {
        let report = run(1, 0.0);
        let per_session = (CELLS * PlatformId::ALL.len() * (1 + FAULT_SWEEPS.len())) as u64;
        assert_eq!(report.cold_pooled.runs, per_session);
        assert_eq!(report.warm_pooled.runs, per_session);
        assert_eq!(report.cold_fresh.runs, per_session);
        assert_eq!(report.cold_serial.runs, per_session);
        assert!(report.speedup_vs_baseline() == 0.0, "no baseline recorded");
    }

    #[test]
    fn json_roundtrips_through_the_baseline_reader() {
        let report = run(1, 1000.0);
        let json = report.to_json();
        let read = baseline_runs_per_sec(&json, "cold_pooled").unwrap();
        let actual = report.cold_pooled.runs_per_sec();
        assert!((read - actual).abs() <= 1.0, "{read} vs {actual}");
        for key in [
            "baseline_cold_runs_per_sec",
            "speedup_vs_baseline",
            "pooled_vs_fresh",
            "parallel_vs_serial",
            "build_ms",
            "exec_ms",
            "report_ms",
        ] {
            assert!(json_number(&json, key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn check_gates_on_regression() {
        let report = run(1, 0.0);
        assert!(check_against(&report, &report.to_json(), 0.5).is_ok());
        let fast = format!(
            "{{\"samples\":[{{\"mode\":\"cold_pooled\",\"runs_per_sec\":{:.0}}}]}}",
            report.cold_pooled.runs_per_sec() * 100.0
        );
        assert!(check_against(&report, &fast, 0.5).is_err());
        assert!(check_against(&report, "{}", 0.5).is_err(), "missing key");

        let mut slow = report.clone();
        slow.cold_fresh.wall = Duration::from_secs(0);
        slow.cold_pooled.wall = Duration::from_secs(3600);
        let err = check_against(&slow, &report.to_json(), 0.5).unwrap_err();
        assert!(err.contains("regression"), "{err}");
    }
}
