//! **E3 / Figure 3** — the module directory structure.
//!
//! Scaffolds a module environment, validates it against the Figure 3
//! rules, then corrupts it in the ways the paper warns about and shows
//! each corruption is caught.

use advm::env::{validate_layout, EnvConfig};
use advm::presets::page_env;
use advm_metrics::Table;
use advm_soc::{DerivativeId, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct Fig3Result {
    /// The rendered tree listing.
    pub tree_table: Table,
    /// Scenario → issues-found table.
    pub validation_table: Table,
    /// Issues per scenario, for assertions.
    pub issues_per_scenario: Vec<(String, usize)>,
}

/// Runs the experiment.
pub fn run() -> Fig3Result {
    let env = page_env(
        EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
        3,
    );
    let tree = env.tree();

    let mut tree_table = Table::new(
        "Figure 3: rendered module directory structure",
        &["path", "lines"],
    );
    for (path, content) in &tree {
        tree_table.row(&[path.clone(), content.lines().count().to_string()]);
    }

    let mut validation_table = Table::new(
        "Figure 3: structure validation scenarios",
        &["scenario", "issues found"],
    );
    let mut issues_per_scenario = Vec::new();
    let mut record = |name: &str, issues: usize| {
        validation_table.row(&[name.to_owned(), issues.to_string()]);
        issues_per_scenario.push((name.to_owned(), issues));
    };

    record(
        "well-formed environment",
        validate_layout("PAGE", &tree).len(),
    );

    let mut t = tree.clone();
    t.remove("PAGE/TESTPLAN.TXT");
    record("test plan deleted", validate_layout("PAGE", &t).len());

    let mut t = tree.clone();
    t.remove("PAGE/Abstraction_Layer/Globals.inc");
    record("globals file deleted", validate_layout("PAGE", &t).len());

    let mut t = tree.clone();
    t.insert("PAGE/loose_notes.txt".into(), "todo".into());
    record("stray file added", validate_layout("PAGE", &t).len());

    let mut t = tree.clone();
    t.insert("PAGE/MY_TEST/test.asm".into(), "_main:\n RETURN\n".into());
    record(
        "cell without TEST_ prefix",
        validate_layout("PAGE", &t).len(),
    );

    let mut t = tree.clone();
    t.insert(
        "PAGE/TEST_SC88A_ONLY/test.asm".into(),
        "_main:\n RETURN\n".into(),
    );
    record(
        "derivative-specific cell name",
        validate_layout("PAGE", &t).len(),
    );

    Fig3Result {
        tree_table,
        validation_table,
        issues_per_scenario,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_layout_validates_and_corruptions_are_caught() {
        let result = run();
        let clean = &result.issues_per_scenario[0];
        assert_eq!(clean.1, 0, "well-formed environment must validate");
        for (scenario, issues) in &result.issues_per_scenario[1..] {
            assert!(*issues > 0, "scenario `{scenario}` was not caught");
        }
    }

    #[test]
    fn tree_contains_figure3_members() {
        let result = run();
        let paths: Vec<&String> = result.tree_table.rows().iter().map(|r| &r[0]).collect();
        assert!(paths.iter().any(|p| p.ends_with("TESTPLAN.TXT")));
        assert!(paths.iter().any(|p| p.contains("Abstraction_Layer")));
        assert!(paths.iter().any(|p| p.contains("TEST_PAGE_SELECT_01")));
    }
}
