//! Program-generation benchmark: constrained-random guest-program
//! synthesis and its encode→decode validation.
//!
//! The fuzzing subsystem's cost model is front-loaded: before a single
//! simulated cycle, every fuzz campaign pays for program generation
//! (`ProgramSource`) and the per-instruction encode round-trip check.
//! This experiment measures both stages — programs and instructions
//! synthesized per second, and encode-checks per second — plus one
//! mining pass to prove the assertion-mining path is alive.
//! `BENCH_fuzz_gen.json` is the committed baseline; CI re-measures in
//! smoke mode and fails on a generation-throughput regression or on
//! the mining path going dead (zero mined checkers would mean every
//! fuzz campaign silently runs checker-free).

use std::time::{Duration, Instant};

use advm::fuzz::Fuzz;
use advm_fuzz::ProgramSource;
use advm_soc::PlatformId;

/// Programs synthesized per measured batch.
const BATCH: usize = 256;

/// Base address used for the encode round-trip stage.
const ENCODE_BASE: u32 = 0x0_0400;

/// One measured stage.
#[derive(Debug, Clone)]
pub struct StageSample {
    /// Instructions that flowed through the stage.
    pub insns: u64,
    /// Wall time across all repetitions.
    pub wall: Duration,
}

impl StageSample {
    /// Instructions per wall-clock second.
    pub fn insns_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.insns as f64 / secs
        }
    }
}

/// The sealed measurement.
#[derive(Debug, Clone)]
pub struct FuzzGenReport {
    /// Programs synthesized across all repetitions.
    pub programs: u64,
    /// The synthesis stage (`ProgramSource::generate`).
    pub generate: StageSample,
    /// The validation stage (`FuzzProgram::check_encoding`).
    pub encode_check: StageSample,
    /// Checkers mined by one small fault-free mining pass.
    pub mined_checkers: u64,
}

impl FuzzGenReport {
    /// Programs synthesized per wall-clock second.
    pub fn programs_per_sec(&self) -> f64 {
        let secs = self.generate.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.programs as f64 / secs
        }
    }

    /// Renders the committed-baseline JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"programs\":{},\"programs_per_sec\":{:.0},\
             \"generate_insns_per_sec\":{:.0},\
             \"encode_check_insns_per_sec\":{:.0},\
             \"mined_checkers\":{}}}",
            self.programs,
            self.programs_per_sec(),
            self.generate.insns_per_sec(),
            self.encode_check.insns_per_sec(),
            self.mined_checkers
        )
    }
}

/// Measures `reps` generation + validation batches (after one warm-up
/// batch) plus one mining pass, and seals the report.
pub fn run(reps: usize) -> FuzzGenReport {
    let reps = reps.max(1);
    // Warm-up: one full batch through both stages.
    for program in ProgramSource::new(0).generate(BATCH) {
        program
            .check_encoding(ENCODE_BASE)
            .expect("warm-up encodes");
    }

    let mut programs = 0u64;
    let mut generated_insns = 0u64;
    let mut generate_wall = Duration::ZERO;
    let mut checked_insns = 0u64;
    let mut check_wall = Duration::ZERO;
    for rep in 0..reps {
        // A fresh seed per repetition keeps the generator honest: the
        // measured cost covers the whole seed-dependent path, not one
        // memoizable batch.
        let source = ProgramSource::new(rep as u64 + 1);
        let started = Instant::now();
        let batch = source.generate(BATCH);
        generate_wall += started.elapsed();
        programs += batch.len() as u64;
        generated_insns += batch.iter().map(|p| p.len() as u64).sum::<u64>();

        let started = Instant::now();
        for program in &batch {
            program.check_encoding(ENCODE_BASE).expect("batch encodes");
        }
        check_wall += started.elapsed();
        checked_insns += batch.iter().map(|p| p.len() as u64).sum::<u64>();
    }

    // Mining liveness: a small fault-free pass must produce checkers.
    let mined = Fuzz::new()
        .programs(4)
        .seed(11)
        .platforms([PlatformId::GoldenModel])
        .mine_checkers()
        .expect("mining pass runs")
        .len() as u64;

    FuzzGenReport {
        programs,
        generate: StageSample {
            insns: generated_insns,
            wall: generate_wall,
        },
        encode_check: StageSample {
            insns: checked_insns,
            wall: check_wall,
        },
        mined_checkers: mined,
    }
}

/// Pulls `"key":number` out of a flat JSON document — enough to read
/// the committed baseline without a JSON dependency.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Gates a fresh measurement against the committed baseline: generation
/// throughput must be within `tolerance` (e.g. `0.8` = no more than 20%
/// slower) of the committed number, and the mining path must be alive —
/// at least one checker mined.
///
/// # Errors
///
/// A human-readable explanation of the first failed gate.
pub fn check_against(
    report: &FuzzGenReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), String> {
    if report.mined_checkers == 0 {
        return Err(
            "mining path is dead: the fault-free pass mined zero checkers \
             (every fuzz campaign would silently run checker-free)"
                .to_owned(),
        );
    }
    let measured = report.generate.insns_per_sec();
    let committed = json_number(baseline_json, "generate_insns_per_sec")
        .ok_or("baseline JSON lacks a generate_insns_per_sec entry")?;
    if measured < committed * tolerance {
        return Err(format!(
            "generation regression: {measured:.0} insns/s vs committed {committed:.0} \
             (allowed floor {:.0})",
            committed * tolerance
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_stages_process_the_same_instructions() {
        let report = run(1);
        assert_eq!(report.programs, BATCH as u64);
        assert_eq!(report.generate.insns, report.encode_check.insns);
        assert!(report.generate.insns > 0);
        assert!(report.mined_checkers > 0, "mining path must be alive");
    }

    #[test]
    fn json_roundtrips_through_the_baseline_reader() {
        let report = run(1);
        let json = report.to_json();
        let read = json_number(&json, "generate_insns_per_sec").unwrap();
        assert!((read - report.generate.insns_per_sec()).abs() <= 1.0);
        assert_eq!(
            json_number(&json, "mined_checkers").unwrap() as u64,
            report.mined_checkers
        );
    }

    #[test]
    fn check_gates_on_regression_and_dead_mining() {
        let report = run(1);
        assert!(check_against(&report, &report.to_json(), 0.5).is_ok());
        let fast = format!(
            "{{\"generate_insns_per_sec\":{:.0}}}",
            report.generate.insns_per_sec() * 100.0
        );
        assert!(check_against(&report, &fast, 0.8).is_err());
        assert!(check_against(&report, "{}", 0.8).is_err(), "missing key");

        let mut dead = report.clone();
        dead.mined_checkers = 0;
        let err = check_against(&dead, &report.to_json(), 0.8).unwrap_err();
        assert!(err.contains("mining path is dead"), "{err}");
    }
}
