//! **E1 / Figure 1** — the module test environment structure.
//!
//! Builds a real module environment and quantifies the three-layer
//! decomposition the figure draws: which files belong to which layer,
//! and how much function reuse the abstraction layer's base functions
//! achieve across the test layer.

use advm::env::EnvConfig;
use advm::layer::{classify_path, Layer};
use advm::presets::page_env;
use advm_metrics::Table;
use advm_soc::{DerivativeId, PlatformId};

/// Structured result of the Figure 1 experiment.
#[derive(Debug)]
pub struct Fig1Result {
    /// Per-layer (files, lines) breakdown.
    pub layer_table: Table,
    /// Base-function reuse statistics.
    pub reuse_table: Table,
    /// Number of distinct base functions called from the test layer.
    pub base_functions_used: usize,
    /// Total base-function call sites across all tests.
    pub call_sites: usize,
}

/// Runs the experiment over a PAGE environment with `n` tests.
pub fn run(n: usize) -> Fig1Result {
    let env = page_env(
        EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
        n,
    );
    let tree = env.tree();

    let mut layer_stats: Vec<(Layer, usize, usize)> = vec![
        (Layer::Test, 0, 0),
        (Layer::Abstraction, 0, 0),
        (Layer::Global, 0, 0),
    ];
    for (path, content) in &tree {
        let layer = classify_path(path);
        let slot = layer_stats
            .iter_mut()
            .find(|(l, _, _)| *l == layer)
            .expect("all layers present");
        slot.1 += 1;
        slot.2 += content.lines().count();
    }
    // Global-layer artifacts live outside the env tree; count them too.
    let global_files = [
        advm::runtime::vector_table(),
        advm::runtime::trap_handlers(),
        advm_soc::EsRom::for_derivative(&advm_soc::Derivative::sc88a())
            .source()
            .to_owned(),
    ];
    let slot = layer_stats
        .iter_mut()
        .find(|(l, _, _)| *l == Layer::Global)
        .expect("global layer present");
    for text in &global_files {
        slot.1 += 1;
        slot.2 += text.lines().count();
    }

    let mut layer_table = Table::new(
        format!("Figure 1: layer decomposition of PAGE env ({n} tests)"),
        &["layer", "files", "lines"],
    );
    for (layer, files, lines) in &layer_stats {
        layer_table.row(&[layer.to_string(), files.to_string(), lines.to_string()]);
    }

    // Base-function reuse: call sites per function across test sources.
    let mut calls: Vec<(String, usize)> = Vec::new();
    for cell in env.cells() {
        for line in cell.source().lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("CALL Base_") {
                let name = format!("Base_{}", rest.trim());
                match calls.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, c)) => *c += 1,
                    None => calls.push((name, 1)),
                }
            }
        }
    }
    calls.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut reuse_table = Table::new(
        "Figure 1: base-function reuse across the test layer",
        &["base function", "call sites", "tests sharing it"],
    );
    let mut call_sites = 0;
    for (name, count) in &calls {
        call_sites += count;
        let sharing = env
            .cells()
            .iter()
            .filter(|c| c.source().contains(name.as_str()))
            .count();
        reuse_table.row(&[name.clone(), count.to_string(), sharing.to_string()]);
    }

    Fig1Result {
        layer_table,
        reuse_table,
        base_functions_used: calls.len(),
        call_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_are_all_populated() {
        let result = run(5);
        assert_eq!(result.layer_table.len(), 3);
        for row in result.layer_table.rows() {
            assert_ne!(row[1], "0", "layer {} has no files", row[0]);
        }
    }

    #[test]
    fn base_functions_are_shared() {
        let result = run(5);
        assert!(result.base_functions_used >= 3);
        assert!(
            result.call_sites > result.base_functions_used,
            "reuse means more call sites than functions"
        );
    }
}
