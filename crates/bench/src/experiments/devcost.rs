//! **E10 / §2, §5 claim** — "once the base functions for each
//! environment have been created the test development time is
//! significantly reduced".
//!
//! Measures marginal test-development cost: lines an engineer writes for
//! test *k* with the base-function library (tests call wrappers) versus
//! without it (every test carries its init/poll/report boilerplate
//! inline). Reports the cumulative curves and where the library's
//! up-front cost is amortised.

use advm::env::EnvConfig;
use advm::presets::page_env;
use advm_baseline::{direct_page_suite, SuiteConfig};
use advm_metrics::{EffortModel, Table};
use advm_soc::{DerivativeId, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct DevCostResult {
    /// The cumulative-lines table.
    pub table: Table,
    /// Lines per ADVM test (marginal).
    pub advm_lines_per_test: usize,
    /// Lines per hardwired test (marginal).
    pub baseline_lines_per_test: usize,
    /// Library lines paid once by ADVM.
    pub library_lines: usize,
    /// Test count at which ADVM's cumulative authored lines drop below
    /// the baseline's (`None` if never within the sweep).
    pub break_even_tests: Option<usize>,
}

/// Runs the sweep up to `max_tests`.
pub fn run(max_tests: usize) -> DevCostResult {
    let config = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let model = EffortModel::standard();

    // Marginal cost per test, measured from the real generated sources.
    let probe = page_env(config, 2);
    let advm_lines_per_test = probe.cells()[1].source().lines().count();
    let library_lines = probe.base_functions_text().lines().count();

    let base_probe = direct_page_suite(
        SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
        2,
    );
    let baseline_lines_per_test = base_probe.cells()[1].1.lines().count();

    let mut table = Table::new(
        "Marginal test-development cost (authored lines)",
        &[
            "tests",
            "ADVM cumulative",
            "baseline cumulative",
            "ADVM minutes",
            "baseline minutes",
        ],
    );
    let mut break_even_tests = None;
    for k in 1..=max_tests {
        let advm_cum = library_lines + k * advm_lines_per_test;
        let base_cum = k * baseline_lines_per_test;
        if break_even_tests.is_none() && advm_cum < base_cum {
            break_even_tests = Some(k);
        }
        if k <= 5 || k % 5 == 0 {
            table.row(&[
                k.to_string(),
                advm_cum.to_string(),
                base_cum.to_string(),
                format!("{:.0}", model.minutes_per_new_line * advm_cum as f64),
                format!("{:.0}", model.minutes_per_new_line * base_cum as f64),
            ]);
        }
    }

    DevCostResult {
        table,
        advm_lines_per_test,
        baseline_lines_per_test,
        library_lines,
        break_even_tests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advm_tests_are_shorter_and_library_amortises() {
        let result = run(60);
        assert!(
            result.advm_lines_per_test < result.baseline_lines_per_test,
            "wrapped tests must be shorter: {} vs {}",
            result.advm_lines_per_test,
            result.baseline_lines_per_test
        );
        let k = result.break_even_tests.expect("library must amortise");
        assert!(k <= 60, "break-even at {k} tests");
    }
}
