//! **E12 / §2 future work** — constrained-random `Globals.inc`
//! instances, drawn through the scenario engine.
//!
//! Plans a batch of constrained-random scenarios, runs a page test under
//! each instance (every instance must assemble and pass — random
//! configuration, deterministic correctness), reports page-space
//! coverage versus instance count, then runs one coverage-directed
//! refinement round to show the closed loop beating uniform sampling.

use advm_asm::{assemble, Image, SourceSet};
use advm_gen::{
    ConstrainedRandom, CoverageDirected, CoverageFeedback, GlobalsConstraints, PageCoverage,
    Scenario, ScenarioEngine,
};
use advm_metrics::Table;
use advm_sim::Platform;
use advm_soc::{Derivative, DerivativeId, EsRom, GlobalsFile, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct RandomResult {
    /// Coverage-vs-instances table.
    pub table: Table,
    /// Instances run.
    pub instances: usize,
    /// Instances that assembled and passed.
    pub passed: usize,
    /// Final coverage ratio after the constrained-random batch.
    pub final_coverage: f64,
    /// Coverage ratio after one coverage-directed refinement round.
    pub refined_coverage: f64,
}

/// The randomised page test: identical source for every instance; only
/// the generated `Globals.inc` differs.
const RANDOM_TEST: &str = "\
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST1_TARGET_PAGE
_main:
    CALL Base_Init_Register
    LOAD ArgA, #TEST_PAGE
    CALL Base_Select_Page
    LOAD ArgA, #TEST_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
";

/// Assembles and runs one instance's globals under the shared page test.
fn run_instance(globals: &GlobalsFile, derivative: &Derivative, es: &advm_asm::Program) -> bool {
    let sources = SourceSet::new()
        .with(
            "__unit.asm",
            format!(
                "\
.INCLUDE Globals.inc
.ORG 0x0
.INCLUDE Vector_Table.inc
.ORG 0x100
{}
.INCLUDE Trap_Handlers.asm
.INCLUDE Base_Functions.asm
.INCLUDE test.asm
",
                advm::runtime::startup_stub()
            ),
        )
        .with("Globals.inc", globals.text())
        .with(
            "Base_Functions.asm",
            advm::base_functions(advm::BaseFuncsStyle::VersionAware),
        )
        .with("Vector_Table.inc", advm::runtime::vector_table())
        .with("Trap_Handlers.asm", advm::runtime::trap_handlers())
        .with("test.asm", RANDOM_TEST);
    let program = assemble("__unit.asm", &sources).expect("instance assembles");
    let mut image = Image::new();
    image.load_program(&program).expect("unit links");
    image.load_program(es).expect("ES links");
    let mut platform = Platform::new(PlatformId::GoldenModel, derivative);
    platform.load_image(&image);
    platform.run().passed()
}

/// Runs `instances` engine-planned scenarios against the SC88-A golden
/// model, then one coverage-directed refinement batch.
pub fn run(instances: usize) -> RandomResult {
    let constraints = GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
        .with_test_page_count(2);
    let derivative = Derivative::sc88a();
    let es = advm_asm::assemble_str(EsRom::generate(&derivative, derivative.es_version()).source())
        .expect("ES ROM assembles");

    let plan = ScenarioEngine::new(0xE12)
        .source(ConstrainedRandom::new(constraints.clone()))
        .batch(instances)
        .plan()
        .expect("non-empty space");

    let mut coverage = PageCoverage::new(&constraints);
    let mut passed = 0;
    let mut table = Table::new(
        "Constrained-random Globals.inc: coverage vs instances",
        &["instances", "pages hit", "coverage", "all passing"],
    );

    for (i, scenario) in plan.scenarios().iter().enumerate() {
        coverage.record(scenario.globals());
        if run_instance(scenario.globals(), &derivative, &es) {
            passed += 1;
        }
        let n = i as u64 + 1;
        if n.is_power_of_two() || n == instances as u64 {
            table.row(&[
                n.to_string(),
                coverage.pages_hit().to_string(),
                format!("{:.0}%", 100.0 * coverage.ratio()),
                (passed == n as usize).to_string(),
            ]);
        }
    }
    let final_coverage = coverage.ratio();

    // One coverage-directed refinement round: bias toward the holes.
    let feedback = CoverageFeedback::new().with_pages_seen(coverage.seen().iter().copied());
    let refined: Vec<Scenario> = ScenarioEngine::new(0xE12 + 1)
        .source(CoverageDirected::new(constraints, feedback))
        .batch((instances / 4).max(1))
        .plan()
        .expect("non-empty space")
        .into_scenarios();
    for scenario in &refined {
        coverage.record(scenario.globals());
        assert!(
            run_instance(scenario.globals(), &derivative, &es),
            "refined instance must pass too"
        );
    }
    table.row(&[
        format!("+{} refined", refined.len()),
        coverage.pages_hit().to_string(),
        format!("{:.0}%", 100.0 * coverage.ratio()),
        "true".to_owned(),
    ]);

    RandomResult {
        table,
        instances,
        passed,
        final_coverage,
        refined_coverage: coverage.ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instance_passes_and_coverage_grows() {
        let result = run(40);
        assert_eq!(
            result.passed, result.instances,
            "random config, deterministic pass"
        );
        assert!(
            result.final_coverage > 0.7,
            "40 two-page instances should cover most of 32 pages, got {:.2}",
            result.final_coverage
        );
        assert!(
            result.refined_coverage >= result.final_coverage,
            "refinement never loses coverage"
        );
    }

    #[test]
    fn refinement_beats_uniform_sampling_at_the_margin() {
        // A small uniform batch leaves holes; one coverage-directed
        // round must close some of them.
        let result = run(8);
        assert!(
            result.refined_coverage > result.final_coverage,
            "uniform {:.2} -> refined {:.2}",
            result.final_coverage,
            result.refined_coverage
        );
    }
}
