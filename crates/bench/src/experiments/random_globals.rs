//! **E12 / §2 future work** — constrained-random `Globals.inc`
//! instances.
//!
//! Generates seeded random globals files, runs a page test under each
//! instance (every instance must assemble and pass — random
//! configuration, deterministic correctness), and reports page-space
//! coverage versus instance count.

use advm_asm::{assemble, Image, SourceSet};
use advm_gen::{generate, GlobalsConstraints, PageCoverage};
use advm_metrics::Table;
use advm_sim::Platform;
use advm_soc::{Derivative, DerivativeId, EsRom, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct RandomResult {
    /// Coverage-vs-instances table.
    pub table: Table,
    /// Instances run.
    pub instances: usize,
    /// Instances that assembled and passed.
    pub passed: usize,
    /// Final coverage ratio.
    pub final_coverage: f64,
}

/// The randomised page test: identical source for every instance; only
/// the generated `Globals.inc` differs.
const RANDOM_TEST: &str = "\
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST1_TARGET_PAGE
_main:
    CALL Base_Init_Register
    LOAD ArgA, #TEST_PAGE
    CALL Base_Select_Page
    LOAD ArgA, #TEST_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
";

/// Runs `instances` seeded instances against the SC88-A golden model.
pub fn run(instances: usize) -> RandomResult {
    let constraints = GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
        .with_test_page_count(2);
    let derivative = Derivative::sc88a();
    let es = advm_asm::assemble_str(EsRom::generate(&derivative, derivative.es_version()).source())
        .expect("ES ROM assembles");

    let mut coverage = PageCoverage::new(&constraints);
    let mut passed = 0;
    let mut table = Table::new(
        "Constrained-random Globals.inc: coverage vs instances",
        &["instances", "pages hit", "coverage", "all passing"],
    );

    for seed in 0..instances as u64 {
        let globals = generate(&constraints, seed).expect("non-empty space");
        coverage.record(&globals);

        let sources = SourceSet::new()
            .with(
                "__unit.asm",
                format!(
                    "\
.INCLUDE Globals.inc
.ORG 0x0
.INCLUDE Vector_Table.inc
.ORG 0x100
{}
.INCLUDE Trap_Handlers.asm
.INCLUDE Base_Functions.asm
.INCLUDE test.asm
",
                    advm::runtime::startup_stub()
                ),
            )
            .with("Globals.inc", globals.text())
            .with(
                "Base_Functions.asm",
                advm::base_functions(advm::BaseFuncsStyle::VersionAware),
            )
            .with("Vector_Table.inc", advm::runtime::vector_table())
            .with("Trap_Handlers.asm", advm::runtime::trap_handlers())
            .with("test.asm", RANDOM_TEST);
        let program = assemble("__unit.asm", &sources).expect("instance assembles");
        let mut image = Image::new();
        image.load_program(&program).expect("unit links");
        image.load_program(&es).expect("ES links");
        let mut platform = Platform::new(PlatformId::GoldenModel, &derivative);
        platform.load_image(&image);
        if platform.run().passed() {
            passed += 1;
        }

        let n = seed + 1;
        if n.is_power_of_two() || n == instances as u64 {
            table.row(&[
                n.to_string(),
                coverage.pages_hit().to_string(),
                format!("{:.0}%", 100.0 * coverage.ratio()),
                (passed == n as usize).to_string(),
            ]);
        }
    }

    RandomResult {
        table,
        instances,
        passed,
        final_coverage: coverage.ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instance_passes_and_coverage_grows() {
        let result = run(40);
        assert_eq!(
            result.passed, result.instances,
            "random config, deterministic pass"
        );
        assert!(
            result.final_coverage > 0.7,
            "40 two-page instances should cover most of 32 pages, got {:.2}",
            result.final_coverage
        );
    }
}
