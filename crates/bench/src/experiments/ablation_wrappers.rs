//! **E13 / ablation** — how much of the methodology does each layer of
//! discipline buy?
//!
//! Three styles of the same two probes (a page-select test sensitive to
//! register geometry and an NVM-write test sensitive to ES calling
//! conventions), each subjected to three worlds:
//!
//! | style | `Globals.inc` defines | base-function wrappers |
//! |---|---|---|
//! | full ADVM | yes | yes |
//! | defines-only | yes | no (calls ES entries directly) |
//! | hardwired | no | no |
//!
//! Expected decomposition: defines absorb *hardware* changes (the
//! SC88-B field move); wrappers additionally absorb *software interface*
//! changes (the ES v2 register swap); hardwired tests absorb nothing.
//! The page probes check the geometry-independent `PAGE_WINDOW`
//! register, so a self-consistently wrong test still fails.

use advm::basefuncs::BaseFuncsStyle;
use advm::build::run_cell;
use advm::env::{EnvConfig, ModuleTestEnv, TestCell};
use advm::porting::port_env;
use advm_metrics::Table;
use advm_soc::{DerivativeId, EsVersion, PlatformId};

/// Pass counts (out of 2 probes) per world for one style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StyleOutcome {
    /// Passes on the home configuration (SC88-A, ES v1).
    pub home: usize,
    /// Passes after the SC88-B port (page field moved).
    pub derivative_port: usize,
    /// Passes after the ES v2 release (conventions swapped).
    pub es_revision: usize,
}

/// Structured result.
#[derive(Debug)]
pub struct AblationResult {
    /// The summary table.
    pub table: Table,
    /// Outcomes in style order: full ADVM, defines-only, hardwired.
    pub outcomes: Vec<(String, StyleOutcome)>,
}

fn page_probe_advm() -> TestCell {
    TestCell::new(
        "TEST_PROBE_PAGE",
        "page window via wrappers",
        "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #9
    CALL Base_Select_Page
    LOAD d1, [PAGE_WINDOW_ADDR]
    LOAD d2, #9 << PAGE_WINDOW_SHIFT
    CMP d1, d2
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
    )
}

fn nvm_probe_advm() -> TestCell {
    TestCell::new(
        "TEST_PROBE_NVM",
        "NVM write via wrappers",
        "\
.INCLUDE Globals.inc
_main:
    CALL Base_Nvm_Unlock
    LOAD ArgA, #0x200
    LOAD ArgB, #0xABCD1234
    CALL Base_Nvm_Write
    LOAD d1, [NVM_BASE + 0x200]
    LOAD d2, #0xABCD1234
    CMP d1, d2
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
    )
}

fn page_probe_defines_only() -> TestCell {
    TestCell::new(
        "TEST_PROBE_PAGE",
        "page window via defines, no wrappers",
        "\
.INCLUDE Globals.inc
_main:
    MOVI d14, #0
    INSERT d14, d14, #9, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    OR d14, d14, #PAGE_ENABLE_MASK
    STORE [PAGE_CTRL_ADDR], d14
    LOAD d1, [PAGE_WINDOW_ADDR]
    LOAD d2, #9 << PAGE_WINDOW_SHIFT
    CMP d1, d2
    JNE t_fail
    LOAD d2, #RESULT_PASS
    STORE [TB_RESULT_ADDR], d2
    STORE [TB_SIM_END_ADDR], d2
    RETURN
t_fail:
    LOAD d2, #RESULT_FAIL | 1
    STORE [TB_RESULT_ADDR], d2
    STORE [TB_SIM_END_ADDR], d2
    RETURN
",
    )
}

fn nvm_probe_defines_only() -> TestCell {
    TestCell::new(
        "TEST_PROBE_NVM",
        "NVM write calling ES directly with v1 conventions",
        "\
.INCLUDE Globals.inc
_main:
    LOAD CallAddr, ES_NVM_UNLOCK
    CALL CallAddr
    LOAD d4, #0x200              ; v1 convention inlined: addr in d4
    LOAD d5, #0xABCD1234         ; value in d5
    LOAD CallAddr, ES_NVM_WRITE_WORD
    CALL CallAddr
    LOAD d1, [NVM_BASE + 0x200]
    LOAD d2, #0xABCD1234
    CMP d1, d2
    JNE t_fail
    LOAD d2, #RESULT_PASS
    STORE [TB_RESULT_ADDR], d2
    STORE [TB_SIM_END_ADDR], d2
    RETURN
t_fail:
    LOAD d2, #RESULT_FAIL | 1
    STORE [TB_RESULT_ADDR], d2
    STORE [TB_SIM_END_ADDR], d2
    RETURN
",
    )
}

fn page_probe_hardwired() -> TestCell {
    TestCell::new(
        "TEST_PROBE_PAGE",
        "page window with hardwired geometry",
        "\
.INCLUDE Globals.inc
_main:
    MOVI d14, #0
    INSERT d14, d14, #9, 0, 5    ; hardwired SC88-A geometry
    ORI d14, d14, #0x100
    STORE [0xE0100], d14         ; hardwired PAGE_CTRL
    LOAD d1, [0xE010C]           ; hardwired PAGE_WINDOW
    LOAD d2, #0x900              ; 9 << 8, hardwired
    CMP d1, d2
    JNE t_fail
    LOAD d2, #0x600D0000
    STORE [0xEFF00], d2
    STORE [0xEFF08], d2
    RETURN
t_fail:
    LOAD d2, #0xBAD00001
    STORE [0xEFF00], d2
    STORE [0xEFF08], d2
    RETURN
",
    )
}

fn nvm_probe_hardwired() -> TestCell {
    TestCell::new(
        "TEST_PROBE_NVM",
        "NVM write with hardwired ES entries and conventions",
        "\
.INCLUDE Globals.inc
_main:
    LOAD a12, #0x30008           ; ES_Nvm_Unlock slot, hardwired
    CALL a12
    LOAD d4, #0x200              ; v1 convention, hardwired
    LOAD d5, #0xABCD1234
    LOAD a12, #0x3000C           ; ES_Nvm_Write_Word slot, hardwired
    CALL a12
    LOAD d1, [0x80200]           ; NVM_BASE + 0x200, hardwired
    LOAD d2, #0xABCD1234
    CMP d1, d2
    JNE t_fail
    LOAD d2, #0x600D0000
    STORE [0xEFF00], d2
    STORE [0xEFF08], d2
    RETURN
t_fail:
    LOAD d2, #0xBAD00001
    STORE [0xEFF00], d2
    STORE [0xEFF08], d2
    RETURN
",
    )
}

fn passes(env: &ModuleTestEnv) -> usize {
    env.cells()
        .iter()
        .filter(|c| run_cell(env, c.id()).map(|r| r.passed()).unwrap_or(false))
        .count()
}

/// Runs the ablation.
pub fn run() -> AblationResult {
    let home = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let styles: Vec<(&str, Vec<TestCell>)> = vec![
        ("full ADVM", vec![page_probe_advm(), nvm_probe_advm()]),
        (
            "defines-only",
            vec![page_probe_defines_only(), nvm_probe_defines_only()],
        ),
        (
            "hardwired",
            vec![page_probe_hardwired(), nvm_probe_hardwired()],
        ),
    ];

    let mut table = Table::new(
        "Ablation: what each layer of discipline absorbs (passes out of 2 probes)",
        &["style", "home (SC88-A, v1)", "SC88-B port", "ES v2 release"],
    );
    let mut outcomes = Vec::new();

    for (name, cells) in styles {
        let env = ModuleTestEnv::new("PROBE", home, cells);
        let home_pass = passes(&env);
        let ported = port_env(
            &env,
            EnvConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel),
        )
        .env;
        let derivative_pass = passes(&ported);
        // The ES revision arrives with the version-aware library (the
        // abstraction-layer fix is part of the ADVM response; the other
        // styles do not use it anyway).
        let es2 = port_env(
            &env,
            home.with_es_version(EsVersion::V2)
                .with_style(BaseFuncsStyle::VersionAware),
        )
        .env;
        let es_pass = passes(&es2);

        table.row(&[
            name.to_owned(),
            format!("{home_pass}/2"),
            format!("{derivative_pass}/2"),
            format!("{es_pass}/2"),
        ]);
        outcomes.push((
            name.to_owned(),
            StyleOutcome {
                home: home_pass,
                derivative_port: derivative_pass,
                es_revision: es_pass,
            },
        ));
    }

    AblationResult { table, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discipline_layers_decompose_as_expected() {
        let result = run();
        let get = |name: &str| {
            result
                .outcomes
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, o)| *o)
                .expect("style present")
        };
        let advm = get("full ADVM");
        let defines = get("defines-only");
        let hardwired = get("hardwired");

        // Everyone is green at home.
        assert_eq!((advm.home, defines.home, hardwired.home), (2, 2, 2));
        // Defines absorb the hardware change; hardwired geometry breaks.
        assert_eq!(advm.derivative_port, 2);
        assert_eq!(defines.derivative_port, 2);
        assert_eq!(
            hardwired.derivative_port, 1,
            "page probe breaks, NVM survives"
        );
        // Only wrappers absorb the software-interface change.
        assert_eq!(advm.es_revision, 2);
        assert_eq!(defines.es_revision, 1, "direct ES call breaks");
        assert_eq!(hardwired.es_revision, 1);
    }
}
