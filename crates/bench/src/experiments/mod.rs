//! The experiment implementations, one module per paper artifact.

pub mod ablation_wrappers;
pub mod campaign_e2e;
pub mod coverage;
pub mod devcost;
pub mod effort;
pub mod fig1_structure;
pub mod fig2_violations;
pub mod fig3_layout;
pub mod fig4_system;
pub mod fig6_spec_change;
pub mod fig7_es_change;
pub mod fuzz_gen;
pub mod platforms;
pub mod random_globals;
pub mod release_labels;
pub mod sim_throughput;
pub mod snapshot_fork;
