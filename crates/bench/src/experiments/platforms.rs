//! **E8 / §1 claim** — one suite, six platforms.
//!
//! Runs the full catalogued system across every platform of the paper's
//! §1 list and reports the pass matrix (expected: all green, zero test
//! edits across platforms). Then injects a hardware bug into the RTL
//! platform and shows the shared suite catches it as a cross-platform
//! divergence — the paper's "a bug or issue has been found in that
//! particular simulation domain".

use advm::campaign::Campaign;
use advm::env::EnvConfig;
use advm::presets::standard_system;
use advm_metrics::Table;
use advm_sim::PlatformFault;
use advm_soc::{DerivativeId, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct PlatformsResult {
    /// The clean pass matrix.
    pub matrix: Table,
    /// Per-platform pass counts.
    pub summary: Table,
    /// Total runs in the clean regression.
    pub total_runs: usize,
    /// Failures in the clean regression.
    pub clean_failures: usize,
    /// Divergent tests found with the injected RTL fault.
    pub fault_divergences: usize,
    /// Platforms named divergent in the fault run.
    pub divergent_platforms: Vec<PlatformId>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a build fails — the catalogued suite must always build.
pub fn run() -> PlatformsResult {
    let config = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let envs = standard_system(config);

    let clean = Campaign::new()
        .envs(envs.iter().cloned())
        .run()
        .expect("suite builds");
    let matrix = clean.matrix();

    let mut summary = Table::new(
        "Per-platform results (same binaries-from-source tests everywhere)",
        &["platform", "runs", "passed", "pass rate"],
    );
    for &platform in clean.platforms() {
        let runs: Vec<_> = clean
            .runs()
            .iter()
            .filter(|r| r.platform == platform)
            .collect();
        let passed = runs.iter().filter(|r| r.result.passed()).count();
        summary.row(&[
            platform.to_string(),
            runs.len().to_string(),
            passed.to_string(),
            format!("{:.0}%", 100.0 * passed as f64 / runs.len() as f64),
        ]);
    }

    // Fault injection: a page-readback bug that exists only in the RTL.
    let faulty = Campaign::new()
        .envs(envs)
        .fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne)
        .run()
        .expect("suite builds");
    let divergences = faulty.divergences();
    let mut divergent_platforms: Vec<PlatformId> = divergences
        .iter()
        .flat_map(|(_, report)| report.divergent.clone())
        .collect();
    divergent_platforms.sort();
    divergent_platforms.dedup();

    PlatformsResult {
        matrix,
        summary,
        total_runs: clean.total(),
        clean_failures: clean.failed(),
        fault_divergences: divergences.len(),
        divergent_platforms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_matrix_is_green_and_fault_is_localised() {
        let result = run();
        assert_eq!(result.clean_failures, 0, "matrix:\n{}", result.matrix);
        assert!(result.total_runs >= 6 * 15);
        assert!(
            result.fault_divergences >= 1,
            "injected RTL bug must diverge"
        );
        assert_eq!(
            result.divergent_platforms,
            vec![PlatformId::RtlSim],
            "divergence localises to the faulty platform"
        );
    }
}
