//! **E7 / Figure 7** — the embedded-software revision event.
//!
//! The ES team re-releases its library "in such a way that the input
//! registers have been swapped around" (v1 → v2) under an unchanged
//! chip. The experiment measures three things:
//!
//! 1. **Blast radius before the fix**: with the original (v1-only) base
//!    functions, which tests break under the v2 ROM?
//! 2. **ADVM repair cost**: refactor `Base_Functions.asm` once (the
//!    paper's "single point to handle it") — tests untouched.
//! 3. **Baseline repair cost**: every convention-dependent hardwired
//!    test must be rewritten.

use advm::basefuncs::BaseFuncsStyle;
use advm::build::run_cell;
use advm::env::EnvConfig;
use advm::porting::{port_env, test_files_touched};
use advm::presets::es_env;
use advm_baseline::{direct_es_suite, port_suite, run_direct_test, SuiteConfig};
use advm_metrics::Table;
use advm_soc::{DerivativeId, EsVersion, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct Fig7Result {
    /// The summary table.
    pub table: Table,
    /// Tests broken under v2 before the abstraction-layer fix.
    pub broken_before_fix: usize,
    /// Total ADVM tests.
    pub advm_tests: usize,
    /// ADVM files touched by the fix.
    pub advm_files: usize,
    /// ADVM test files touched (must be zero).
    pub advm_test_files: usize,
    /// ADVM tests passing after the fix.
    pub advm_pass_after: usize,
    /// Baseline files touched by the equivalent rewrite.
    pub baseline_files: usize,
    /// Baseline tests passing after the rewrite.
    pub baseline_pass_after: usize,
    /// Baseline total tests.
    pub baseline_tests: usize,
}

/// Runs the experiment.
pub fn run() -> Fig7Result {
    let config_v1 = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
        .with_style(BaseFuncsStyle::V1Only);

    // The environment as history left it: v1-only wrappers, v1 ROM.
    let env = es_env(config_v1);
    let all_pass_v1 = env
        .cells()
        .iter()
        .all(|c| run_cell(&env, c.id()).map(|r| r.passed()).unwrap_or(false));
    assert!(all_pass_v1, "the pre-change environment must be green");

    // Event: the ES team ships v2. The un-refactored environment runs
    // against the new ROM.
    let stale = port_env(&env, config_v1.with_es_version(EsVersion::V2)).env;
    let broken_before_fix = stale
        .cells()
        .iter()
        .filter(|c| {
            !run_cell(&stale, c.id())
                .map(|r| r.passed())
                .unwrap_or(false)
        })
        .count();

    // The ADVM fix: refactor the base functions once.
    let fix = port_env(
        &stale,
        stale.config().with_style(BaseFuncsStyle::VersionAware),
    );
    let advm_pass_after = fix
        .env
        .cells()
        .iter()
        .filter(|c| {
            run_cell(&fix.env, c.id())
                .map(|r| r.passed())
                .unwrap_or(false)
        })
        .count();

    // The baseline: rewrite every convention-dependent hardwired test.
    let base_config = SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let base_suite = direct_es_suite(base_config);
    let (base_ported, base_changes) = port_suite(
        &base_suite,
        base_config.with_es_version(EsVersion::V2),
        direct_es_suite,
    );
    let baseline_pass_after = base_ported
        .cells()
        .iter()
        .filter(|(id, _)| {
            run_direct_test(&base_ported, id)
                .map(|r| r.passed())
                .unwrap_or(false)
        })
        .count();

    let mut table = Table::new(
        "Figure 7: ES v1 -> v2 (swapped input registers) under SC88-A",
        &[
            "approach",
            "files touched",
            "test files touched",
            "tests broken before fix",
            "tests passing after",
        ],
    );
    table.row(&[
        "ADVM (refactor Base_Functions once)".to_owned(),
        fix.changes.files_touched().to_string(),
        test_files_touched(&fix.changes).to_string(),
        format!("{broken_before_fix}/{}", stale.cells().len()),
        format!("{advm_pass_after}/{}", fix.env.cells().len()),
    ]);
    table.row(&[
        "baseline (rewrite each hardwired test)".to_owned(),
        base_changes.files_touched().to_string(),
        base_changes.files_touched().to_string(),
        "n/a".to_owned(),
        format!("{baseline_pass_after}/{}", base_ported.cells().len()),
    ]);

    Fig7Result {
        table,
        broken_before_fix,
        advm_tests: env.cells().len(),
        advm_files: fix.changes.files_touched(),
        advm_test_files: test_files_touched(&fix.changes),
        advm_pass_after,
        baseline_files: base_changes.files_touched(),
        baseline_pass_after,
        baseline_tests: base_ported.cells().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn es_change_shape_matches_paper() {
        let result = run();
        // The v2 release breaks the convention-dependent tests (4 of 5).
        assert!(result.broken_before_fix >= 3, "{result:?}");
        assert!(
            result.broken_before_fix < result.advm_tests,
            "init test survives"
        );
        // The ADVM fix touches the abstraction layer only…
        assert_eq!(result.advm_test_files, 0);
        assert!(result.advm_files <= 2);
        // …and restores green.
        assert_eq!(result.advm_pass_after, result.advm_tests);
        // The baseline rewrites every convention-dependent test file.
        assert_eq!(result.baseline_files, 4);
        assert_eq!(result.baseline_pass_after, result.baseline_tests);
    }
}
