//! Snapshot-fork benchmark: the fault-audit sweep with and without the
//! shared-prefix [`PrefixPool`](advm::prefix::PrefixPool).
//!
//! The audit matrix re-runs the same images once per (fault, platform)
//! cell; with forking enabled each image's fault-free prefix executes
//! once per platform and every safe cell resumes from the snapshot.
//! Verdicts are byte-identical either way (the campaign proves that in
//! its tests), so the delta is pure execution cost. The margin is
//! modest by construction: fork-safety demands the prefix end before
//! the faulted module's first MMIO touch, and this suite's tests reach
//! their peripheral within a couple hundred instructions, so each fork
//! skips the boot preamble and nothing more. What the harness guards is
//! the machinery, not a headline number: `BENCH_snapshot_fork.json` is
//! the committed baseline, and CI re-measures in smoke mode. The
//! primary gate is `prefix_saved` — the instructions forking skipped,
//! an exact, machine-invariant count that must match the committed
//! number — plus a loose no-regression check on wall throughput and a
//! fork-path-alive check (zero forked runs would mean every cell
//! silently fell back to from-reset execution). Wall-clock *speedup*
//! is deliberately not gated: on this workload it sits within host
//! noise, and a near-1.0 ratio gate flakes without measuring anything.

use std::time::{Duration, Instant};

use advm::audit::{FaultAudit, FaultAuditReport};
use advm::presets::{default_config, page_env, uart_env};
use advm_sim::PlatformFault;
use advm_soc::PlatformId;

/// Runs one audit sweep of the benchmark matrix.
fn audit(fork: bool) -> FaultAuditReport {
    FaultAudit::new()
        .suite([page_env(default_config(), 1), uart_env(default_config())])
        .faults([
            PlatformFault::PageActiveOffByOne,
            PlatformFault::PageSelectDropsLowBit,
            PlatformFault::PageMapWriteIgnored,
            PlatformFault::UartDropsBytes,
            PlatformFault::UartTxStuckBusy,
            PlatformFault::UartDuplicatesBytes,
            PlatformFault::TimerNeverExpires,
        ])
        .platforms([PlatformId::RtlSim, PlatformId::ProductSilicon])
        .escape_rounds(0)
        .fuel(200_000)
        .workers(2)
        .fork_prefix(fork)
        .run()
        .expect("benchmark audit runs")
}

/// One measured execution mode.
#[derive(Debug, Clone)]
pub struct ModeSample {
    /// Whether prefix forking was enabled.
    pub forked: bool,
    /// Simulated instructions across all repetitions (forked runs count
    /// their skipped prefix: the simulated workload is identical).
    pub insns: u64,
    /// Wall time of the repetitions.
    pub wall: Duration,
    /// Prefix instructions whose re-execution forking skipped, per
    /// sweep — the sweep is deterministic, so this is an exact,
    /// machine-invariant count whatever the rep count.
    pub prefix_saved: u64,
    /// Runs that resumed from a snapshot instead of resetting, per
    /// sweep.
    pub forked_runs: u64,
}

impl ModeSample {
    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        if self.forked {
            "forked"
        } else {
            "from_reset"
        }
    }

    /// Simulated instructions per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        advm::campaign::CampaignPerf {
            instructions: self.insns,
            wall: self.wall,
            ..advm::campaign::CampaignPerf::default()
        }
        .steps_per_sec()
    }
}

/// The sealed measurement.
#[derive(Debug, Clone)]
pub struct SnapshotForkReport {
    /// The from-reset sweep.
    pub from_reset: ModeSample,
    /// The prefix-forking sweep.
    pub forked: ModeSample,
}

impl SnapshotForkReport {
    /// Renders the committed-baseline JSON document. The per-sweep
    /// fork counters are the primary gate; steps/sec is recorded for
    /// the loose no-regression check only. A wall-clock speedup ratio
    /// is deliberately not recorded — on this workload it is within
    /// host noise and gating on it flaked.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"modes\":[");
        for (i, sample) in [&self.from_reset, &self.forked].into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"mode\":\"{}\",\"steps_per_sec\":{:.0},\
                 \"prefix_saved\":{},\"forked_runs\":{}}}",
                sample.name(),
                sample.steps_per_sec(),
                sample.prefix_saved,
                sample.forked_runs
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Measures both modes over `reps` audit sweeps each (after one warm-up
/// sweep per mode) and seals the report.
pub fn run(reps: usize) -> SnapshotForkReport {
    let measure = |forked: bool| {
        audit(forked); // warm-up
        let started = Instant::now();
        let mut insns = 0;
        let mut prefix_saved = 0;
        let mut forked_runs = 0;
        for _ in 0..reps.max(1) {
            let report = audit(forked);
            insns += report.perf().instructions;
            prefix_saved += report.perf().prefix_saved;
            forked_runs += report.perf().forked_runs;
        }
        ModeSample {
            forked,
            insns,
            wall: started.elapsed(),
            // Every sweep saves the same count (the sweep is
            // deterministic), so store the per-sweep number: it is
            // exact and independent of how many reps were measured.
            prefix_saved: prefix_saved / reps.max(1) as u64,
            forked_runs: forked_runs / reps.max(1) as u64,
        }
    };
    SnapshotForkReport {
        from_reset: measure(false),
        forked: measure(true),
    }
}

/// Pulls `"key":number` out of a flat JSON document — enough to read
/// the committed baseline without a JSON dependency.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The steps/sec a baseline document records for one mode.
pub fn baseline_steps_per_sec(json: &str, mode: &str) -> Option<f64> {
    baseline_number(json, mode, "steps_per_sec")
}

/// A numeric field from one mode's entry in a baseline document.
pub fn baseline_number(json: &str, mode: &str, key: &str) -> Option<f64> {
    let marker = format!("\"mode\":\"{mode}\"");
    let at = json.find(&marker)?;
    json_number(&json[at..], key)
}

/// Gates a fresh measurement against the committed baseline. The
/// primary gate is exact: the forked sweep's per-sweep `prefix_saved`
/// (and `forked_runs`) must equal the committed counts — the sweep is
/// deterministic, so these are machine-invariant and any drift means
/// the forking machinery changed behaviour. On top of that, the fork
/// path must be alive (at least one run forked) and the forked sweep's
/// steps/sec must be within `tolerance` (e.g. `0.8` = no more than 20%
/// slower) of the committed number as a loose no-regression wall check.
///
/// # Errors
///
/// A human-readable explanation of the first failed gate.
pub fn check_against(
    report: &SnapshotForkReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), String> {
    if report.forked.forked_runs == 0 || report.forked.prefix_saved == 0 {
        return Err(format!(
            "fork path is dead: {} forked runs, {} prefix insns saved \
             (every cell fell back to from-reset execution)",
            report.forked.forked_runs, report.forked.prefix_saved
        ));
    }
    let committed_saved = baseline_number(baseline_json, "forked", "prefix_saved")
        .ok_or("baseline JSON lacks a forked prefix_saved entry")?;
    if report.forked.prefix_saved as f64 != committed_saved {
        return Err(format!(
            "fork coverage drift: {} prefix insns saved per sweep vs committed {} \
             (this count is deterministic and machine-invariant; a change means \
             the prefix machinery itself changed)",
            report.forked.prefix_saved, committed_saved
        ));
    }
    let committed_forks = baseline_number(baseline_json, "forked", "forked_runs")
        .ok_or("baseline JSON lacks a forked forked_runs entry")?;
    if report.forked.forked_runs as f64 != committed_forks {
        return Err(format!(
            "fork coverage drift: {} forked runs per sweep vs committed {}",
            report.forked.forked_runs, committed_forks
        ));
    }
    let measured = report.forked.steps_per_sec();
    let committed = baseline_steps_per_sec(baseline_json, "forked")
        .ok_or("baseline JSON lacks a forked steps_per_sec entry")?;
    if measured < committed * tolerance {
        return Err(format!(
            "forked-audit regression: {measured:.0} steps/s vs committed {committed:.0} \
             (allowed floor {:.0})",
            committed * tolerance
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_simulate_the_same_workload() {
        let report = run(1);
        assert_eq!(
            report.from_reset.insns, report.forked.insns,
            "forked runs count their skipped prefix"
        );
        assert_eq!(report.from_reset.forked_runs, 0);
        assert!(report.forked.forked_runs > 0);
        assert!(report.forked.prefix_saved > 0);
    }

    #[test]
    fn json_roundtrips_through_the_baseline_reader() {
        let report = run(1);
        let json = report.to_json();
        let read = baseline_steps_per_sec(&json, "forked").unwrap();
        let actual = report.forked.steps_per_sec();
        assert!((read - actual).abs() <= 1.0, "{read} vs {actual}");
        let saved = baseline_number(&json, "forked", "prefix_saved").unwrap();
        assert_eq!(saved, report.forked.prefix_saved as f64);
        let forks = baseline_number(&json, "forked", "forked_runs").unwrap();
        assert_eq!(forks, report.forked.forked_runs as f64);
    }

    #[test]
    fn check_gates_on_drift_regression_and_dead_fork_path() {
        let report = run(1);
        // Own JSON always passes: the counts match exactly and the
        // wall check compares the measurement with itself.
        check_against(&report, &report.to_json(), 0.8).unwrap();

        let err = check_against(
            &report,
            &format!(
                "{{\"modes\":[{{\"mode\":\"forked\",\"steps_per_sec\":1,\
                 \"prefix_saved\":{},\"forked_runs\":{}}}]}}",
                report.forked.prefix_saved + 1,
                report.forked.forked_runs
            ),
            0.8,
        )
        .unwrap_err();
        assert!(err.contains("fork coverage drift"), "{err}");

        let fast = format!(
            "{{\"modes\":[{{\"mode\":\"forked\",\"steps_per_sec\":{:.0},\
             \"prefix_saved\":{},\"forked_runs\":{}}}]}}",
            report.forked.steps_per_sec() * 100.0,
            report.forked.prefix_saved,
            report.forked.forked_runs
        );
        let err = check_against(&report, &fast, 0.8).unwrap_err();
        assert!(err.contains("forked-audit regression"), "{err}");
        assert!(check_against(&report, "{}", 0.8).is_err(), "missing key");

        let mut dead = report.clone();
        dead.forked.forked_runs = 0;
        let err = check_against(&dead, &report.to_json(), 0.8).unwrap_err();
        assert!(err.contains("fork path is dead"), "{err}");
    }
}
