//! **E11 / §2–3 claim** — releases stabilise regressions.
//!
//! *"The test environment is not stable during any development of the
//! abstraction layer, unless frozen via a release label."* The
//! experiment freezes a labelled release, lets development continue on
//! the live environment (an abstraction-layer change), and shows:
//! regressions run from the frozen label are bit-identical before and
//! after the mutation, the live environment no longer matches the label,
//! and a system release composes per-environment sub-labels.

use advm::campaign::Campaign;
use advm::env::EnvConfig;
use advm::presets::{page_env, standard_system};
use advm::release::ReleaseStore;
use advm::system::SystemVerificationEnv;
use advm_metrics::Table;
use advm_soc::{DerivativeId, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct ReleaseResult {
    /// Step-by-step narrative table.
    pub table: Table,
    /// Frozen-regression pass counts before/after the live mutation.
    pub frozen_before: usize,
    /// Pass count from the frozen release after the live mutation.
    pub frozen_after: usize,
    /// Whether the live env still matches the label after mutation.
    pub live_matches_after: bool,
    /// Components in the composed system release.
    pub system_components: usize,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on build failures (the catalogued suite always builds).
pub fn run() -> ReleaseResult {
    let config = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let mut store = ReleaseStore::new();
    let mut table = Table::new("Release labels under live development", &["step", "result"]);

    // Freeze a label.
    let mut live = page_env(config, 3);
    store.freeze("PAGE-1.0", &live).expect("fresh label");
    table.row(&["freeze PAGE-1.0", "ok"]);

    // Regression from the frozen label.
    let frozen_env = store.release("PAGE-1.0").unwrap().thaw().unwrap();
    let smoke = |env| {
        Campaign::new()
            .env(env)
            .platform(PlatformId::GoldenModel)
            .workers(1)
            .run()
    };
    let before = smoke(frozen_env).expect("builds");
    table.row(&[
        "regression from frozen label".to_owned(),
        format!("{}/{} pass", before.passed(), before.total()),
    ]);

    // Development continues: the live abstraction layer is re-targeted.
    live.reconfigure(EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel));
    let live_matches_after = store.release("PAGE-1.0").unwrap().matches(&live);
    table.row(&[
        "live env re-targeted to SC88-C".to_owned(),
        format!("still matches label: {live_matches_after}"),
    ]);

    // The frozen label is unaffected.
    let frozen_env = store.release("PAGE-1.0").unwrap().thaw().unwrap();
    let after = smoke(frozen_env).expect("builds");
    table.row(&[
        "regression from frozen label (again)".to_owned(),
        format!("{}/{} pass", after.passed(), after.total()),
    ]);

    // Compose a system release of sub-labels.
    let sys = SystemVerificationEnv::new(
        "ADVM_System_Verification_Environment",
        standard_system(config),
    );
    let system = sys
        .compose_release(&mut store, "SYS-1.0")
        .expect("labels fresh");
    let system_components = system.components().len();
    table.row(&[
        "compose SYS-1.0 from sub-labels".to_owned(),
        format!("{system_components} components"),
    ]);

    ReleaseResult {
        table,
        frozen_before: before.passed(),
        frozen_after: after.passed(),
        live_matches_after,
        system_components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_release_is_immune_to_live_changes() {
        let result = run();
        assert_eq!(result.frozen_before, result.frozen_after);
        assert!(result.frozen_before >= 3);
        assert!(
            !result.live_matches_after,
            "mutation must invalidate the label"
        );
        assert_eq!(result.system_components, 8);
    }
}
