//! **E14 / §1 motivation** — register coverage of the directed suite.
//!
//! Directed testing's goal is "to cover as many functional modes of
//! operation as possible"; the most basic measurable proxy is which of
//! the chip's registers the suite exercises. The experiment shows
//! coverage growing as module environments are added, and names the
//! remaining holes.

use advm::campaign::Campaign;
use advm::coverage::RegisterCoverage;
use advm::env::EnvConfig;
use advm::presets::{page_env, standard_system};
use advm_metrics::Table;
use advm_soc::{Derivative, DerivativeId, PlatformId};

/// Structured result.
#[derive(Debug)]
pub struct CoverageResult {
    /// Coverage growth as environments are added.
    pub growth_table: Table,
    /// Full per-module coverage of the complete suite.
    pub final_table: Table,
    /// Overall ratio with only the PAGE environment.
    pub page_only_ratio: f64,
    /// Overall ratio with the complete catalogued system.
    pub full_ratio: f64,
    /// Remaining untouched register count.
    pub holes: usize,
}

/// Runs the experiment on the golden model.
///
/// # Panics
///
/// Panics on build failures (the catalogued suite always builds).
pub fn run() -> CoverageResult {
    let config = EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
    let derivative = Derivative::sc88a();
    let smoke = |envs: Vec<advm::ModuleTestEnv>| {
        Campaign::new()
            .envs(envs)
            .platform(PlatformId::GoldenModel)
            .workers(1)
            .run()
    };

    let mut growth_table = Table::new(
        "Register coverage as module environments are added",
        &["suite", "tests", "overall coverage"],
    );

    // PAGE only.
    let page_report = smoke(vec![page_env(config, 3)]).expect("builds");
    let page_coverage = RegisterCoverage::of_regression(&derivative, &page_report);
    growth_table.row(&[
        "PAGE only".to_owned(),
        page_report.total().to_string(),
        format!("{:.0}%", 100.0 * page_coverage.overall_ratio()),
    ]);

    // Cumulative: add one environment at a time.
    let all = standard_system(config);
    let mut included = Vec::new();
    let mut full_coverage = page_coverage.clone();
    for env in all {
        included.push(env);
        let report = smoke(included.clone()).expect("builds");
        full_coverage = RegisterCoverage::of_regression(&derivative, &report);
        growth_table.row(&[
            format!("+ {}", included.last().unwrap().name()),
            report.total().to_string(),
            format!("{:.0}%", 100.0 * full_coverage.overall_ratio()),
        ]);
    }

    let holes = full_coverage
        .modules()
        .iter()
        .map(|m| m.missing.len())
        .sum();
    CoverageResult {
        growth_table,
        final_table: full_coverage.table(),
        page_only_ratio: page_coverage.overall_ratio(),
        full_ratio: full_coverage.overall_ratio(),
        holes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_grows_with_the_suite() {
        let result = run();
        assert!(result.full_ratio > result.page_only_ratio);
        assert!(
            result.full_ratio >= 0.99,
            "the catalogued suite was coverage-closed to 100%"
        );
        assert_eq!(result.holes, 0);
        assert!(
            result.page_only_ratio < 0.6,
            "one env cannot cover the chip"
        );
    }
}
