//! # advm-bench — experiment harness and benchmarks
//!
//! One module per paper artifact (figure or claim); each exposes a `run`
//! function returning structured results plus rendered tables, so the
//! `exp_*` binaries print them and the integration tests assert their
//! shapes. See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for expected-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
