//! Regenerates the ablation experiment (E13): how much change each layer
//! of ADVM discipline absorbs (defines vs wrappers vs nothing).

fn main() {
    let result = advm_bench::experiments::ablation_wrappers::run();
    println!("{}", result.table);
    println!("Defines absorb hardware changes; wrappers additionally absorb");
    println!("embedded-software interface changes; hardwired tests absorb neither.");
}
