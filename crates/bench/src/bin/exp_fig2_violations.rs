//! Regenerates the Figure 2 experiment (E2): the cost of bypassing the
//! abstraction layer, swept over the number of abusive tests.

fn main() {
    let result = advm_bench::experiments::fig2_violations::run(10, &[0, 2, 5, 10]);
    println!("{}", result.table);
    println!("Clean tests survive the port untouched; every abusive test breaks.");
}
