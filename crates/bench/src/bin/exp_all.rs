//! Runs every experiment in sequence — regenerates all tables recorded
//! in EXPERIMENTS.md in one go.

use advm_bench::experiments as e;

fn main() {
    let fig1 = e::fig1_structure::run(5);
    println!("{}\n{}", fig1.layer_table, fig1.reuse_table);

    println!("{}", e::fig2_violations::run(10, &[0, 2, 5, 10]).table);

    let fig3 = e::fig3_layout::run();
    println!("{}", fig3.validation_table);

    let fig4 = e::fig4_system::run();
    println!("{}\n{}", fig4.env_table, fig4.tree_table);

    println!(
        "{}",
        e::fig6_spec_change::run(&[5, 10, 20, 50, 100], 10).table
    );
    println!("{}", e::fig7_es_change::run().table);

    let platforms = e::platforms::run();
    println!("{}\n{}", platforms.matrix, platforms.summary);

    println!("{}", e::effort::run(10).table);
    println!("{}", e::devcost::run(60).table);
    println!("{}", e::release_labels::run().table);
    println!("{}", e::random_globals::run(64).table);
    println!("{}", e::ablation_wrappers::run().table);

    let throughput = e::sim_throughput::run(3);
    for mode in e::sim_throughput::DecodeMode::ALL {
        println!(
            "sim throughput [{}]: {:.0} steps/s",
            mode.name(),
            throughput.sample(mode).steps_per_sec()
        );
    }
    println!(
        "sim throughput speedup (predecoded vs uncached): {:.2}x",
        throughput.speedup()
    );
}
