//! Regenerates the Figure 6 experiment (E6): port cost under the
//! paper's specification change (field moved) and derivative change
//! (field widened), ADVM vs the hardwired baseline.

fn main() {
    let result = advm_bench::experiments::fig6_spec_change::run(&[5, 10, 20, 50, 100], 10);
    println!("{}", result.table);
    println!("ADVM: O(1) abstraction-layer files; baseline: every test refactored.");
}
