//! Measures constrained-random program generation and encode-check
//! throughput and maintains `BENCH_fuzz_gen.json`, the committed perf
//! trajectory of the fuzzing subsystem's front end.
//!
//! ```text
//! exp_fuzz_gen [--smoke] [--out FILE] [--check BASELINE [--tolerance F]]
//! ```
//!
//! `--smoke` runs 3 repetitions instead of 10 (CI). `--check` compares
//! the fresh measurement against a committed baseline and exits nonzero
//! on a generation regression beyond the tolerance (default 0.8 = 20%
//! slower) or a dead mining path (zero mined checkers).

use std::process::ExitCode;

use advm_bench::experiments::fuzz_gen::{check_against, run};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let reps = if args.iter().any(|a| a == "--smoke") {
        3
    } else {
        10
    };

    let report = run(reps);
    eprintln!(
        "  generate: {:>12.0} insns/s ({:.0} programs/s, {} programs, {} insns in {:.1}ms)",
        report.generate.insns_per_sec(),
        report.programs_per_sec(),
        report.programs,
        report.generate.insns,
        report.generate.wall.as_secs_f64() * 1e3,
    );
    eprintln!(
        "    encode: {:>12.0} insns/s ({} insns in {:.1}ms)",
        report.encode_check.insns_per_sec(),
        report.encode_check.insns,
        report.encode_check.wall.as_secs_f64() * 1e3,
    );
    eprintln!(
        "    mining: {} checker(s) from the liveness pass over {} reps",
        report.mined_checkers, reps
    );

    let json = report.to_json();
    match flag_value("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("exp_fuzz_gen: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(baseline_path) = flag_value("--check") {
        let tolerance: f64 = match flag_value("--tolerance").map(str::parse) {
            Some(Ok(t)) => t,
            Some(Err(_)) => {
                eprintln!("exp_fuzz_gen: bad --tolerance value");
                return ExitCode::FAILURE;
            }
            None => 0.8,
        };
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("exp_fuzz_gen: reading {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(reason) = check_against(&report, &baseline, tolerance) {
            eprintln!("exp_fuzz_gen: FAIL: {reason}");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed (tolerance {tolerance})");
    }
    ExitCode::SUCCESS
}
