//! Regenerates the development-cost experiment (E10): marginal cost of
//! writing a new test with and without the base-function library.

fn main() {
    let result = advm_bench::experiments::devcost::run(60);
    println!("{}", result.table);
    println!(
        "per-test lines: ADVM {} vs baseline {} (library: {} lines, break-even at {:?} tests)",
        result.advm_lines_per_test,
        result.baseline_lines_per_test,
        result.library_lines,
        result.break_even_tests
    );
}
