//! Regenerates the register-coverage experiment (E14): which of the
//! chip's registers the directed suite exercises, and where the holes
//! are.

fn main() {
    let result = advm_bench::experiments::coverage::run();
    println!("{}", result.growth_table);
    println!("{}", result.final_table);
    println!(
        "overall: {:.0}% of registers exercised, {} hole(s) remaining",
        100.0 * result.full_ratio,
        result.holes
    );
}
