//! Regenerates the release experiment (E11): frozen labels keep
//! regressions stable while the live abstraction layer changes.

fn main() {
    let result = advm_bench::experiments::release_labels::run();
    println!("{}", result.table);
}
