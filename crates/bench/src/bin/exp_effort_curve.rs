//! Regenerates the effort experiment (E9): cumulative engineer effort
//! across platform bring-ups and derivative ports; the crossover point
//! is where the abstraction layer's up-front cost is recovered.

fn main() {
    for n in [10, 20] {
        let result = advm_bench::experiments::effort::run(n);
        println!("{}", result.table);
        match result.crossover_stage {
            Some(stage) => println!(
                "ADVM pulls ahead at stage {stage} (`{}`).\n",
                result.stages[stage].stage
            ),
            None => println!("no crossover within the modelled history\n"),
        }
    }
}
