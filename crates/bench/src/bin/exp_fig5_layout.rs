//! Regenerates the Figure 5 experiment (E5): the system directory
//! structure rendered from the composed environment.

fn main() {
    let result = advm_bench::experiments::fig4_system::run();
    println!("{}", result.tree_table);
    println!(
        "total tests in the system environment: {}",
        result.total_tests
    );
}
