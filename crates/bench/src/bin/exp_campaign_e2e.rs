//! Measures end-to-end campaign throughput (fuzz-style verification
//! session: nominal + fault sweeps across all six platforms) and
//! maintains `BENCH_campaign_e2e.json`, the committed perf trajectory
//! of the orchestration stack.
//!
//! ```text
//! exp_campaign_e2e [--smoke] [--out FILE] [--baseline-cold RUNS_PER_SEC]
//!                  [--check BASELINE [--tolerance F]]
//! ```
//!
//! `--smoke` runs 2 repetitions instead of 6 (CI). `--baseline-cold`
//! records the cold runs/sec measured on the pre-optimisation parent
//! commit into the emitted JSON, so the committed document carries its
//! own speedup evidence. `--check` compares the fresh measurement
//! against a committed baseline and exits nonzero when the pooled cold
//! session regresses beyond the tolerance (default 0.8 = 20% slower) or
//! when machine pooling / the parallel front-end regress throughput.

use std::process::ExitCode;

use advm_bench::experiments::campaign_e2e::{check_against, run};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let reps = if args.iter().any(|a| a == "--smoke") {
        2
    } else {
        6
    };
    let baseline_cold: f64 = match flag_value("--baseline-cold").map(str::parse) {
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("exp_campaign_e2e: bad --baseline-cold value");
            return ExitCode::FAILURE;
        }
        None => 0.0,
    };

    let report = run(reps, baseline_cold);
    for sample in [
        &report.cold_pooled,
        &report.warm_pooled,
        &report.cold_fresh,
        &report.cold_serial,
    ] {
        eprintln!(
            "{:>20}: {:>8.0} runs/s ({} runs; build {:.1}ms exec {:.1}ms report {:.2}ms)",
            sample.mode,
            sample.runs_per_sec(),
            sample.runs,
            sample.build.as_secs_f64() * 1e3,
            sample.exec.as_secs_f64() * 1e3,
            sample.report.as_secs_f64() * 1e3,
        );
    }
    eprintln!(
        "pooled-vs-fresh {:.2}x, parallel-vs-serial {:.2}x, vs recorded baseline {:.2}x ({} reps)",
        report.pooled_vs_fresh(),
        report.parallel_vs_serial(),
        report.speedup_vs_baseline(),
        reps
    );

    let json = report.to_json();
    match flag_value("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("exp_campaign_e2e: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(baseline_path) = flag_value("--check") {
        let tolerance: f64 = match flag_value("--tolerance").map(str::parse) {
            Some(Ok(t)) => t,
            Some(Err(_)) => {
                eprintln!("exp_campaign_e2e: bad --tolerance value");
                return ExitCode::FAILURE;
            }
            None => 0.8,
        };
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("exp_campaign_e2e: reading {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(reason) = check_against(&report, &baseline, tolerance) {
            eprintln!("exp_campaign_e2e: FAIL: {reason}");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed (tolerance {tolerance})");
    }
    ExitCode::SUCCESS
}
