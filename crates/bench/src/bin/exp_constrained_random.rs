//! Regenerates the constrained-random experiment (E12): seeded random
//! Globals.inc instances, page coverage, and deterministic passes.

fn main() {
    let result = advm_bench::experiments::random_globals::run(64);
    println!("{}", result.table);
    println!(
        "{} / {} instances passed; final page coverage {:.0}%",
        result.passed,
        result.instances,
        100.0 * result.final_coverage
    );
}
