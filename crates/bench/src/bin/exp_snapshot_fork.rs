//! Measures the snapshot-fork audit sweep (shared-prefix forking on vs
//! off) and maintains `BENCH_snapshot_fork.json`, the committed perf
//! trajectory of the SaveState subsystem.
//!
//! ```text
//! exp_snapshot_fork [--smoke] [--out FILE] [--check BASELINE [--tolerance F]]
//! ```
//!
//! `--smoke` runs 3 repetitions instead of 10 (CI). `--check` compares
//! the fresh measurement against a committed baseline and exits nonzero
//! when the per-sweep `prefix_saved`/`forked_runs` counts drift from
//! the committed (machine-invariant) numbers, on a wall regression
//! beyond the tolerance (default 0.8 = 20% slower), or on a dead fork
//! path (zero forked runs).

use std::process::ExitCode;

use advm_bench::experiments::snapshot_fork::{check_against, run};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let reps = if args.iter().any(|a| a == "--smoke") {
        3
    } else {
        10
    };

    let report = run(reps);
    for sample in [&report.from_reset, &report.forked] {
        eprintln!(
            "{:>10}: {:>12.0} steps/s ({} insns in {:.1}ms over {} reps; \
             per sweep: {} forked runs, {} prefix insns saved)",
            sample.name(),
            sample.steps_per_sec(),
            sample.insns,
            sample.wall.as_secs_f64() * 1e3,
            reps,
            sample.forked_runs,
            sample.prefix_saved,
        );
    }

    let json = report.to_json();
    match flag_value("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("exp_snapshot_fork: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(baseline_path) = flag_value("--check") {
        let tolerance: f64 = match flag_value("--tolerance").map(str::parse) {
            Some(Ok(t)) => t,
            Some(Err(_)) => {
                eprintln!("exp_snapshot_fork: bad --tolerance value");
                return ExitCode::FAILURE;
            }
            None => 0.8,
        };
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("exp_snapshot_fork: reading {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(reason) = check_against(&report, &baseline, tolerance) {
            eprintln!("exp_snapshot_fork: FAIL: {reason}");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed (tolerance {tolerance})");
    }
    ExitCode::SUCCESS
}
