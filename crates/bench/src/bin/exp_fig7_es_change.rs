//! Regenerates the Figure 7 experiment (E7): the embedded-software team
//! swaps input registers (v1 -> v2); the abstraction layer absorbs it at
//! a single point.

fn main() {
    let result = advm_bench::experiments::fig7_es_change::run();
    println!("{}", result.table);
    println!(
        "Before the fix, {}/{} wrapped tests broke under the v2 ROM.",
        result.broken_before_fix, result.advm_tests
    );
}
