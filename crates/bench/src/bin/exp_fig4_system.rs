//! Regenerates the Figure 4 experiment (E4): the complete system test
//! environment, its shared global layer and isolation rules.

fn main() {
    let result = advm_bench::experiments::fig4_system::run();
    println!("{}", result.env_table);
    println!(
        "clean system issues: {} | injected cross-env include detections: {}",
        result.clean_issues, result.rogue_issues
    );
}
