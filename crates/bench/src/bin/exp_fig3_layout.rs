//! Regenerates the Figure 3 experiment (E3): the module directory
//! structure and its validation rules.

fn main() {
    let result = advm_bench::experiments::fig3_layout::run();
    println!("{}", result.tree_table);
    println!("{}", result.validation_table);
}
