//! Measures simulator throughput (the no-fault six-platform sweep, all
//! four decode modes) and maintains `BENCH_sim_throughput.json`, the
//! committed perf trajectory.
//!
//! ```text
//! exp_sim_throughput [--smoke] [--out FILE] [--check BASELINE [--tolerance F]]
//! ```
//!
//! `--smoke` runs 3 repetitions instead of 20 (CI). `--check` compares
//! the fresh measurement against a committed baseline and exits nonzero
//! on any mode regressing beyond the tolerance (default 0.8 = 20%
//! slower), a predecoded-vs-uncached speedup below 2×, or a
//! superblock-vs-predecoded speedup below 2×.

use std::process::ExitCode;

use advm_bench::experiments::sim_throughput::{check_against, run, DecodeMode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let reps = if args.iter().any(|a| a == "--smoke") {
        3
    } else {
        20
    };

    let report = run(reps);
    for mode in DecodeMode::ALL {
        let sample = report.sample(mode);
        eprintln!(
            "{:>10}: {:>12.0} steps/s ({} insns in {:.1}ms)",
            mode.name(),
            sample.steps_per_sec(),
            sample.insns,
            sample.wall.as_secs_f64() * 1e3,
        );
    }
    eprintln!(
        "speedup (predecoded vs uncached): {:.2}x over {} reps",
        report.speedup(),
        reps
    );
    eprintln!(
        "speedup (superblock vs predecoded): {:.2}x over {} reps",
        report.block_speedup(),
        reps
    );

    let json = report.to_json();
    match flag_value("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("exp_sim_throughput: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(baseline_path) = flag_value("--check") {
        let tolerance: f64 = match flag_value("--tolerance").map(str::parse) {
            Some(Ok(t)) => t,
            Some(Err(_)) => {
                eprintln!("exp_sim_throughput: bad --tolerance value");
                return ExitCode::FAILURE;
            }
            None => 0.8,
        };
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("exp_sim_throughput: reading {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(reason) = check_against(&report, &baseline, tolerance) {
            eprintln!("exp_sim_throughput: FAIL: {reason}");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed (tolerance {tolerance})");
    }
    ExitCode::SUCCESS
}
