//! Regenerates the Figure 1 experiment (E1): layer decomposition and
//! base-function reuse of a module test environment.

fn main() {
    let result = advm_bench::experiments::fig1_structure::run(5);
    println!("{}", result.layer_table);
    println!("{}", result.reuse_table);
    println!(
        "{} base functions serve {} call sites across the test layer.",
        result.base_functions_used, result.call_sites
    );
}
