//! Regenerates the platform experiment (E8): one suite across the six
//! platforms of the paper's section 1, plus fault-injection divergence.

fn main() {
    let result = advm_bench::experiments::platforms::run();
    println!("{}", result.matrix);
    println!("{}", result.summary);
    println!(
        "clean failures: {} / {} runs | injected RTL fault -> {} divergent test(s) on {:?}",
        result.clean_failures,
        result.total_runs,
        result.fault_divergences,
        result.divergent_platforms
    );
}
