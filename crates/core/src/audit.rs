//! Suite-strength auditing — mutation-testing the testbench itself.
//!
//! ADVM's central claim (§1 of the paper) is that running one assembler
//! suite across all simulation domains *detects* platform bugs as
//! cross-platform divergences. Nothing else in this repo measures whether
//! the suite actually would — a suite can be green everywhere and still
//! be blind. [`FaultAudit`] answers the question the way module-level
//! mutation testing does: inject every fault of the
//! [`PlatformFault`] catalog into each audited platform, run the suite
//! as a [`Campaign`] against the golden reference, and classify every
//! `(fault, platform)` cell:
//!
//! * **detected** — a divergence surfaced and blamed the faulted
//!   platform: the suite kills this bug;
//! * **masked** — the suite passed despite the bug: an *escape*;
//! * **broken** — failures occurred but the divergence analysis did not
//!   attribute them to the faulted platform (a suite or harness
//!   problem, not a verdict about the fault).
//!
//! Escapes then close the loop with the scenario engine: the escaped
//! faults' modules become [`CoverageFeedback`] weak modules, a
//! [`CoverageDirected`] source generates scenarios aimed at them (whose
//! environments carry the
//! [`fault_hunter_cells`](crate::stimulus::fault_hunter_cells)
//! stimulus), and the surviving cells are re-audited against the
//! generated suite. The
//! sealed [`FaultAuditReport`] carries the detection matrix, per-test
//! kill counts, the escape list and a JSON rendering; `advm-cli audit`
//! is a thin veneer over it.
//!
//! ```no_run
//! use advm::audit::FaultAudit;
//! use advm_soc::PlatformId;
//!
//! # fn main() -> Result<(), advm::audit::AuditError> {
//! let report = FaultAudit::new()
//!     .platforms([PlatformId::RtlSim])
//!     .scenarios(8)
//!     .run()?;
//! println!("{}", report.matrix());
//! println!("kill rate: {:.0}%", 100.0 * report.kill_rate());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use advm_gen::{
    ConstraintError, CoverageDirected, CoverageFeedback, GlobalsConstraints, ScenarioEngine,
};
use advm_metrics::Table;
use advm_sim::{compare, PlatformFault};
use advm_soc::{DerivativeId, PlatformId};

use advm_fuzz::TraceAssertion;

use crate::artifacts::ArtifactStore;
use crate::campaign::{
    default_workers, json_string, Campaign, CampaignError, CampaignPerf, CampaignReport,
    ObserverFactory,
};
use crate::env::ModuleTestEnv;
use crate::prefix::{PrefixPool, DEFAULT_PREFIX_BUDGET};
use crate::presets;

/// A structured audit failure.
#[derive(Debug)]
pub enum AuditError {
    /// The audit has no faults to inject.
    NoFaults,
    /// The audit has no platforms to inject them into (the reference
    /// platform is excluded automatically).
    NoPlatforms,
    /// A campaign failed to build.
    Campaign(CampaignError),
    /// Escape-driven scenario planning hit an unsatisfiable constraint.
    Constraint(ConstraintError),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::NoFaults => f.write_str("audit has no faults to inject"),
            AuditError::NoPlatforms => f.write_str("audit has no platforms to fault"),
            AuditError::Campaign(e) => write!(f, "audit campaign failed: {e}"),
            AuditError::Constraint(e) => write!(f, "escape scenario planning failed: {e}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<CampaignError> for AuditError {
    fn from(e: CampaignError) -> Self {
        AuditError::Campaign(e)
    }
}

impl From<ConstraintError> for AuditError {
    fn from(e: ConstraintError) -> Self {
        AuditError::Constraint(e)
    }
}

/// The classification of one `(fault, platform)` matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// A divergence blamed the faulted platform.
    Detected {
        /// Audit round that killed it: 1 = seed suite, 2 = escape-driven
        /// scenario round.
        round: usize,
        /// `env/test` labels of the tests whose divergence killed it.
        killed_by: Vec<String>,
    },
    /// The suite passed despite the bug — an escape.
    Masked,
    /// Failures occurred but divergence analysis did not attribute them
    /// to the faulted platform.
    Broken {
        /// What went wrong.
        reason: String,
    },
}

impl CellOutcome {
    /// Stable machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Detected { .. } => "detected",
            CellOutcome::Masked => "masked",
            CellOutcome::Broken { .. } => "broken",
        }
    }
}

/// One sealed matrix cell.
#[derive(Debug, Clone)]
pub struct AuditCell {
    /// The injected fault.
    pub fault: PlatformFault,
    /// The platform carrying it.
    pub platform: PlatformId,
    /// The classification.
    pub outcome: CellOutcome,
}

/// The sealed result of a fault-matrix sweep.
#[derive(Debug, Clone)]
pub struct FaultAuditReport {
    reference: PlatformId,
    platforms: Vec<PlatformId>,
    faults: Vec<PlatformFault>,
    cells: Vec<AuditCell>,
    suite_tests: usize,
    scenarios_generated: usize,
    kill_counts: Vec<(String, usize)>,
    perf: CampaignPerf,
}

impl FaultAuditReport {
    /// The reference platform every campaign compared against.
    pub fn reference(&self) -> PlatformId {
        self.reference
    }

    /// The audited (faulted) platforms, in matrix column order.
    pub fn platforms(&self) -> &[PlatformId] {
        &self.platforms
    }

    /// The injected faults, in matrix row order.
    pub fn faults(&self) -> &[PlatformFault] {
        &self.faults
    }

    /// Every matrix cell, fault-major.
    pub fn cells(&self) -> &[AuditCell] {
        &self.cells
    }

    /// Number of test cells in the seed suite.
    pub fn suite_tests(&self) -> usize {
        self.suite_tests
    }

    /// Scenarios generated by the escape-driven round (0 when no escape
    /// round ran).
    pub fn scenarios_generated(&self) -> usize {
        self.scenarios_generated
    }

    /// Execution-performance telemetry aggregated over every campaign
    /// the sweep ran (reference baselines and faulted cells alike).
    pub fn perf(&self) -> &CampaignPerf {
        &self.perf
    }

    /// Looks up one cell.
    pub fn cell(&self, fault: PlatformFault, platform: PlatformId) -> Option<&AuditCell> {
        self.cells
            .iter()
            .find(|c| c.fault == fault && c.platform == platform)
    }

    /// Cells classified as detected.
    pub fn detected(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Detected { .. }))
            .count()
    }

    /// Cells classified as broken.
    pub fn broken(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Broken { .. }))
            .count()
    }

    /// The surviving escapes: cells the suite (plus any escape round)
    /// still masks.
    pub fn escapes(&self) -> Vec<&AuditCell> {
        self.cells
            .iter()
            .filter(|c| c.outcome == CellOutcome::Masked)
            .collect()
    }

    /// Whether a fault is killed: detected on *every* platform it was
    /// injected into.
    pub fn killed(&self, fault: PlatformFault) -> bool {
        let mut any = false;
        for cell in self.cells.iter().filter(|c| c.fault == fault) {
            any = true;
            if !matches!(cell.outcome, CellOutcome::Detected { .. }) {
                return false;
            }
        }
        any
    }

    /// Fraction of catalog faults killed on every audited platform.
    pub fn kill_rate(&self) -> f64 {
        if self.faults.is_empty() {
            return 1.0;
        }
        let killed = self.faults.iter().filter(|&&f| self.killed(f)).count();
        killed as f64 / self.faults.len() as f64
    }

    /// Per-test kill counts, strongest killer first: how many matrix
    /// cells each `env/test` contributed to detecting.
    pub fn kill_counts(&self) -> &[(String, usize)] {
        &self.kill_counts
    }

    /// Renders the faults × platforms detection matrix.
    pub fn matrix(&self) -> Table {
        let mut headers: Vec<String> = vec!["fault".to_owned(), "module".to_owned()];
        headers.extend(self.platforms.iter().map(ToString::to_string));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new("Fault detection matrix", &header_refs);
        for &fault in &self.faults {
            let mut row = vec![fault.to_string(), fault.module().unwrap_or("-").to_owned()];
            for &p in &self.platforms {
                row.push(match self.cell(fault, p).map(|c| &c.outcome) {
                    Some(CellOutcome::Detected { round, .. }) => format!("KILL@{round}"),
                    Some(CellOutcome::Masked) => "ESCAPE".to_owned(),
                    Some(CellOutcome::Broken { .. }) => "BROKEN".to_owned(),
                    None => "-".to_owned(),
                });
            }
            table.row(&row);
        }
        table
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"reference\":\"{}\",\"suite_tests\":{},\"scenarios\":{},",
            self.reference.name(),
            self.suite_tests,
            self.scenarios_generated
        ));
        s.push_str("\"platforms\":[");
        for (i, p) in self.platforms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", p.name()));
        }
        s.push_str("],\"matrix\":[");
        for (i, &fault) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"fault\":\"{fault}\",\"module\":{},\"cells\":[",
                json_string(fault.module().unwrap_or(""))
            ));
            let mut first = true;
            for cell in self.cells.iter().filter(|c| c.fault == fault) {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "{{\"platform\":\"{}\",\"outcome\":\"{}\"",
                    cell.platform.name(),
                    cell.outcome.label()
                ));
                match &cell.outcome {
                    CellOutcome::Detected { round, killed_by } => {
                        s.push_str(&format!(",\"round\":{round},\"killed_by\":["));
                        for (j, t) in killed_by.iter().enumerate() {
                            if j > 0 {
                                s.push(',');
                            }
                            s.push_str(&json_string(t));
                        }
                        s.push(']');
                    }
                    CellOutcome::Broken { reason } => {
                        s.push_str(&format!(",\"reason\":{}", json_string(reason)));
                    }
                    CellOutcome::Masked => {}
                }
                s.push('}');
            }
            s.push_str("]}");
        }
        s.push_str("],\"kill_counts\":[");
        for (i, (test, kills)) in self.kill_counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"test\":{},\"kills\":{kills}}}",
                json_string(test)
            ));
        }
        s.push_str("],\"escapes\":[");
        for (i, cell) in self.escapes().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"fault\":\"{}\",\"platform\":\"{}\"}}",
                cell.fault,
                cell.platform.name()
            ));
        }
        let killed = self.faults.iter().filter(|&&f| self.killed(f)).count();
        s.push_str(&format!(
            "],\"perf\":{},\"detected\":{},\"broken\":{},\"killed\":{killed},\"kill_rate\":{:.4}}}",
            self.perf.to_json(),
            self.detected(),
            self.broken(),
            self.kill_rate()
        ));
        s
    }
}

impl fmt::Display for FaultAuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.matrix())
    }
}

/// Builder for a fault-matrix suite-strength sweep.
///
/// Defaults: the full catalogued [`presets::standard_system`] suite, the
/// whole [`PlatformFault::ALL`] catalog, the RTL simulation as the
/// audited platform, the golden model as reference, one escape-driven
/// round of 8 scenarios.
#[derive(Clone)]
pub struct FaultAudit {
    suite: Vec<ModuleTestEnv>,
    faults: Vec<PlatformFault>,
    platforms: Vec<PlatformId>,
    reference: PlatformId,
    scenarios: usize,
    escape_rounds: usize,
    seed: u64,
    workers: usize,
    fuel: u64,
    decode: bool,
    machine_pool: bool,
    fork_prefix: bool,
    prefix_budget: u64,
    checkers: Vec<TraceAssertion>,
    artifact_store: Option<Arc<ArtifactStore>>,
    observer_factory: Option<ObserverFactory>,
}

impl std::fmt::Debug for FaultAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultAudit")
            .field("suite", &self.suite.len())
            .field("faults", &self.faults)
            .field("platforms", &self.platforms)
            .field("reference", &self.reference)
            .field("scenarios", &self.scenarios)
            .field("escape_rounds", &self.escape_rounds)
            .field("seed", &self.seed)
            .field("workers", &self.workers)
            .field("fuel", &self.fuel)
            .field("decode", &self.decode)
            .field("machine_pool", &self.machine_pool)
            .field("fork_prefix", &self.fork_prefix)
            .field("prefix_budget", &self.prefix_budget)
            .field("checkers", &self.checkers.len())
            .field("artifact_store", &self.artifact_store.is_some())
            .field("observer_factory", &self.observer_factory.is_some())
            .finish()
    }
}

impl Default for FaultAudit {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultAudit {
    /// An audit over the catalogued seed suite and the full fault
    /// catalog.
    pub fn new() -> Self {
        Self {
            suite: presets::standard_system(presets::default_config()),
            faults: PlatformFault::ALL.to_vec(),
            platforms: vec![PlatformId::RtlSim],
            reference: PlatformId::GoldenModel,
            scenarios: 8,
            escape_rounds: 1,
            seed: 0xFA017,
            workers: default_workers(),
            fuel: advm_sim::DEFAULT_FUEL,
            decode: true,
            machine_pool: true,
            fork_prefix: true,
            prefix_budget: DEFAULT_PREFIX_BUDGET,
            checkers: Vec::new(),
            artifact_store: None,
            observer_factory: None,
        }
    }

    /// Replaces the seed suite.
    pub fn suite(mut self, envs: impl IntoIterator<Item = ModuleTestEnv>) -> Self {
        self.suite = envs.into_iter().collect();
        self
    }

    /// Replaces the fault list.
    pub fn faults(mut self, faults: impl IntoIterator<Item = PlatformFault>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Replaces the audited platforms. The reference platform is never
    /// faulted; it is filtered out if listed.
    pub fn platforms(mut self, platforms: impl IntoIterator<Item = PlatformId>) -> Self {
        self.platforms = platforms.into_iter().collect();
        self
    }

    /// Sets the reference platform campaigns compare against.
    pub fn reference(mut self, reference: PlatformId) -> Self {
        self.reference = reference;
        self
    }

    /// Sets the scenario batch size of the escape-driven round
    /// (minimum 1).
    pub fn scenarios(mut self, scenarios: usize) -> Self {
        self.scenarios = scenarios.max(1);
        self
    }

    /// Sets the maximum number of escape-driven rounds: 0 disables the
    /// loop, 1 (the default) runs one generation round over the escapes,
    /// higher values keep drawing fresh batches (a new seed per round)
    /// at the surviving cells. The loop stops early once nothing
    /// escapes.
    pub fn escape_rounds(mut self, rounds: usize) -> Self {
        self.escape_rounds = rounds;
        self
    }

    /// Sets the master seed of the escape-driven scenario plan.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the campaign worker count (minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-run instruction budget. Faults that hang software
    /// (stuck-busy polling) burn the whole budget on the faulted
    /// platform, so audits over large suites may want a smaller one.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Enables or disables the predecoded-instruction cache in every
    /// campaign the sweep runs (default: enabled). The detection matrix
    /// is identical either way; disabling recovers the pre-refactor
    /// simulation baseline.
    pub fn decode_cache(mut self, enabled: bool) -> Self {
        self.decode = enabled;
        self
    }

    /// Enables or disables worker-local machine pooling in every
    /// campaign the sweep runs (default: enabled). Pooling is
    /// perf-only — see [`Campaign::machine_pool`]: detection matrices,
    /// kill counts and report JSON are byte-identical either way.
    pub fn machine_pool(mut self, enabled: bool) -> Self {
        self.machine_pool = enabled;
        self
    }

    /// Enables or disables snapshot-based prefix forking (default:
    /// enabled). When enabled, one [`PrefixPool`] is shared by every
    /// faulted campaign of the sweep: each deduplicated image's shared
    /// fault-free prefix executes once per platform and every matrix
    /// cell forks from the snapshot when that is provably
    /// byte-identical to running from reset. The detection matrix,
    /// verdicts and kill counts are identical either way — only the
    /// `prefix_saved`/`forked_runs` perf counters and wall time change.
    pub fn fork_prefix(mut self, enabled: bool) -> Self {
        self.fork_prefix = enabled;
        self
    }

    /// Sets the instruction budget of the shared prefix (default
    /// [`DEFAULT_PREFIX_BUDGET`]); ignored when forking is disabled.
    pub fn prefix_budget(mut self, budget: u64) -> Self {
        self.prefix_budget = budget;
        self
    }

    /// Arms mined [`TraceAssertion`] checkers on every campaign of the
    /// sweep — the reference baselines and the faulted cells alike. A
    /// faulted run that violates a checker the fault-free baseline
    /// satisfies counts as a *detection* in [`CellOutcome::Detected`]'s
    /// `killed_by` (labelled `checker:<name>`), even when the
    /// differential verdict sees nothing: checkers grade exactly the
    /// symptoms the pass/fail comparison is blind to, such as an MMIO
    /// readback consumed by a sink register. Arming checkers disables
    /// prefix forking inside each campaign (snapshots lack the MMIO
    /// monitor); classifications that do not depend on checkers are
    /// unchanged.
    pub fn checkers(mut self, checkers: impl IntoIterator<Item = TraceAssertion>) -> Self {
        self.checkers = checkers.into_iter().collect();
        self
    }

    /// Attaches a shared [`ArtifactStore`] to every campaign the sweep
    /// runs: builds, predecode artifacts and prefix snapshots are
    /// reused across the whole matrix *and* across audits sharing the
    /// store. With a store attached its prefix pool replaces the
    /// sweep-local one ([`FaultAudit::prefix_budget`] is superseded by
    /// the store's). Detection matrices and kill counts are identical
    /// with or without a store.
    pub fn artifact_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.artifact_store = Some(store);
        self
    }

    /// Attaches an observer factory: each internal campaign of the
    /// sweep gets one fresh observer built by `factory`, so its
    /// [`CampaignEvent`](crate::campaign::CampaignEvent)s stream out
    /// live (the daemon's per-job NDJSON feed).
    pub fn observe_with(mut self, factory: ObserverFactory) -> Self {
        self.observer_factory = Some(factory);
        self
    }

    /// Runs the fault-free reference baseline for a stimulus set — once,
    /// shared by every matrix cell of the sweep, instead of re-simulating
    /// the reference inside each faulted campaign.
    fn baseline(
        &self,
        envs: &[ModuleTestEnv],
        scenarios: &[advm_gen::Scenario],
    ) -> Result<CampaignReport, CampaignError> {
        self.dress(
            Campaign::new()
                .envs(envs.iter().cloned())
                .scenarios(scenarios.iter().cloned())
                .platform(self.reference)
                .workers(self.workers)
                .fuel(self.fuel)
                .decode_cache(self.decode)
                .machine_pool(self.machine_pool),
        )
        .run()
    }

    /// Attaches the sweep-wide store and a fresh observer (when
    /// configured) to one internal campaign.
    fn dress(&self, mut campaign: Campaign) -> Campaign {
        if !self.checkers.is_empty() {
            campaign = campaign.checkers(self.checkers.iter().copied());
        }
        if let Some(store) = &self.artifact_store {
            campaign = campaign.artifact_store(Arc::clone(store));
        }
        if let Some(factory) = &self.observer_factory {
            campaign = campaign.observe(factory());
        }
        campaign
    }

    /// Runs one (fault, platform) campaign over the given stimulus on
    /// the faulted platform only.
    fn faulted(
        &self,
        fault: PlatformFault,
        platform: PlatformId,
        envs: &[ModuleTestEnv],
        scenarios: &[advm_gen::Scenario],
        pool: Option<&Arc<PrefixPool>>,
    ) -> Result<CampaignReport, CampaignError> {
        let mut campaign = Campaign::new()
            .envs(envs.iter().cloned())
            .scenarios(scenarios.iter().cloned())
            .platform(platform)
            .workers(self.workers)
            .fuel(self.fuel)
            .decode_cache(self.decode)
            .machine_pool(self.machine_pool)
            .fault(platform, fault);
        if let Some(pool) = pool {
            campaign = campaign.prefix_pool(Arc::clone(pool));
        }
        self.dress(campaign).run()
    }

    /// Classifies one cell by comparing every test's faulted run against
    /// the shared reference baseline (golden-anchored 1-vs-1 votes).
    fn classify(
        &self,
        platform: PlatformId,
        round: usize,
        baseline: &CampaignReport,
        faulted: &CampaignReport,
    ) -> CellOutcome {
        let mut killed_by = Vec::new();
        let mut missing = 0usize;
        for (env, test) in faulted.tests() {
            let Some(f) = faulted.run_of(env, test, platform) else {
                continue;
            };
            let Some(g) = baseline.run_of(env, test, self.reference) else {
                missing += 1;
                continue;
            };
            if let Ok(report) = compare(&[g.result.clone(), f.result.clone()]) {
                if !report.consistent && report.divergent.contains(&platform) {
                    killed_by.push(format!("{env}/{test}"));
                }
            }
        }
        // Mined-checker kills: a violation on the faulted platform that
        // the fault-free baseline does not reproduce is a detection in
        // its own right — checkers see MMIO symptoms the differential
        // verdict is blind to.
        for v in faulted.checker_violations() {
            if v.platform != platform {
                continue;
            }
            let clean = baseline
                .checker_violations()
                .iter()
                .any(|b| b.env == v.env && b.test_id == v.test_id && b.checker == v.checker);
            if clean {
                continue;
            }
            let label = format!("{}/{} checker:{}", v.env, v.test_id, v.checker);
            if !killed_by.contains(&label) {
                killed_by.push(label);
            }
        }
        if missing > 0 {
            return CellOutcome::Broken {
                reason: format!("{missing} run(s) missing from the reference baseline"),
            };
        }
        if !killed_by.is_empty() {
            return CellOutcome::Detected { round, killed_by };
        }
        if faulted.failed() > 0 {
            return CellOutcome::Broken {
                reason: format!(
                    "{} run(s) failed identically on the reference — a suite problem, not a divergence",
                    faulted.failed()
                ),
            };
        }
        CellOutcome::Masked
    }

    /// Sweeps the (fault × platform) matrix through the campaign
    /// pipeline, then closes the loop: escapes feed the scenario engine
    /// and the surviving cells are re-audited against the generated
    /// stimulus.
    ///
    /// # Errors
    ///
    /// [`AuditError::NoFaults`] / [`AuditError::NoPlatforms`] for an
    /// unrunnable plan; build and constraint failures are propagated.
    pub fn run(&self) -> Result<FaultAuditReport, AuditError> {
        if self.faults.is_empty() {
            return Err(AuditError::NoFaults);
        }
        // Never fault the reference, and audit each platform once —
        // duplicates would double matrix cells and kill counts.
        let mut platforms: Vec<PlatformId> = Vec::new();
        for &p in &self.platforms {
            if p != self.reference && !platforms.contains(&p) {
                platforms.push(p);
            }
        }
        if platforms.is_empty() {
            return Err(AuditError::NoPlatforms);
        }

        let mut kill_counts: HashMap<String, usize> = HashMap::new();
        let mut tally = |outcome: &CellOutcome| {
            if let CellOutcome::Detected { killed_by, .. } = outcome {
                for test in killed_by {
                    *kill_counts.entry(test.clone()).or_default() += 1;
                }
            }
        };

        // Round 1: the seed suite against every (fault, platform) cell.
        // The reference runs the suite exactly once; each cell simulates
        // only its faulted platform and compares against that baseline.
        // One prefix pool for the whole sweep: the matrix re-runs the
        // same images dozens of times (13 faults × platforms), so the
        // shared fault-free prefixes pay for themselves many times
        // over. The fault-free baselines are excluded — they are run
        // once anyway, and they are what the snapshots must be proven
        // against.
        // With a shared store attached, its own pool plays this role
        // (and outlives the sweep); a sweep-local pool would shadow it.
        let pool = (self.fork_prefix && self.artifact_store.is_none())
            .then(|| Arc::new(PrefixPool::new(self.prefix_budget)));
        let mut perf = CampaignPerf::default();
        let suite_baseline = self.baseline(&self.suite, &[])?;
        perf.absorb(suite_baseline.perf());
        let mut cells: Vec<AuditCell> = Vec::new();
        for &fault in &self.faults {
            for &platform in &platforms {
                let report = self.faulted(fault, platform, &self.suite, &[], pool.as_ref())?;
                perf.absorb(report.perf());
                let outcome = self.classify(platform, 1, &suite_baseline, &report);
                tally(&outcome);
                cells.push(AuditCell {
                    fault,
                    platform,
                    outcome,
                });
            }
        }

        // Rounds 2..: escapes drive generation. The escaped faults'
        // modules become weak-module feedback; a coverage-directed
        // source draws scenarios whose environments carry the module's
        // stimulus cell plus its fault hunters, and only the surviving
        // cells re-run. Each round draws a fresh batch (new seed) until
        // the budget runs out or nothing escapes.
        let mut scenarios_generated = 0;
        for round in 0..self.escape_rounds {
            let escaped: Vec<usize> = cells
                .iter()
                .enumerate()
                .filter(|(_, c)| c.outcome == CellOutcome::Masked)
                .map(|(i, _)| i)
                .collect();
            if escaped.is_empty() {
                break;
            }
            let mut weak: Vec<&str> = Vec::new();
            for &i in &escaped {
                if let Some(module) = cells[i].fault.module() {
                    if !weak.contains(&module) {
                        weak.push(module);
                    }
                }
            }
            let derivative = self
                .suite
                .first()
                .map(|e| e.config().derivative)
                .unwrap_or(DerivativeId::Sc88A);
            let constraints =
                GlobalsConstraints::new(derivative, self.reference).with_test_page_count(2);
            let feedback = CoverageFeedback::new().with_weak_modules(weak.iter().copied());
            let plan = ScenarioEngine::new(self.seed.wrapping_add(round as u64))
                .source(CoverageDirected::new(constraints, feedback))
                .batch(self.scenarios)
                .plan()?;
            scenarios_generated += plan.len();
            let scenario_baseline = self.baseline(&[], plan.scenarios())?;
            perf.absorb(scenario_baseline.perf());
            for i in escaped {
                let (fault, platform) = (cells[i].fault, cells[i].platform);
                let report = self.faulted(fault, platform, &[], plan.scenarios(), pool.as_ref())?;
                perf.absorb(report.perf());
                let outcome = self.classify(platform, 2 + round, &scenario_baseline, &report);
                if outcome != CellOutcome::Masked {
                    tally(&outcome);
                    cells[i].outcome = outcome;
                }
            }
        }

        let mut kill_counts: Vec<(String, usize)> = kill_counts.into_iter().collect();
        kill_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(FaultAuditReport {
            reference: self.reference,
            platforms,
            faults: self.faults.clone(),
            cells,
            suite_tests: self.suite.iter().map(|e| e.cells().len()).sum(),
            scenarios_generated,
            kill_counts,
            perf,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::env::EnvConfig;

    use super::*;

    fn tiny_suite() -> Vec<ModuleTestEnv> {
        vec![
            presets::page_env(presets::default_config(), 1),
            presets::uart_env(presets::default_config()),
        ]
    }

    #[test]
    fn detected_fault_names_its_killing_tests() {
        let report = FaultAudit::new()
            .suite(tiny_suite())
            .faults([PlatformFault::PageActiveOffByOne])
            .platforms([PlatformId::RtlSim])
            .escape_rounds(0)
            .workers(2)
            .run()
            .unwrap();
        let cell = report
            .cell(PlatformFault::PageActiveOffByOne, PlatformId::RtlSim)
            .unwrap();
        match &cell.outcome {
            CellOutcome::Detected { round, killed_by } => {
                assert_eq!(*round, 1);
                assert!(
                    killed_by.iter().any(|t| t.contains("TEST_PAGE_SELECT_01")),
                    "{killed_by:?}"
                );
            }
            other => panic!("expected detection, got {other:?}"),
        }
        assert!(report.killed(PlatformFault::PageActiveOffByOne));
        assert!((report.kill_rate() - 1.0).abs() < 1e-9);
        assert!(!report.kill_counts().is_empty());
    }

    #[test]
    fn masked_fault_is_an_escape_without_the_loop() {
        // The tiny suite never writes PAGE_MAP, so the dead write-enable
        // escapes; with the escape round disabled it stays an escape.
        let report = FaultAudit::new()
            .suite(tiny_suite())
            .faults([PlatformFault::PageMapWriteIgnored])
            .platforms([PlatformId::RtlSim])
            .escape_rounds(0)
            .workers(2)
            .run()
            .unwrap();
        assert_eq!(report.escapes().len(), 1);
        assert!(!report.killed(PlatformFault::PageMapWriteIgnored));
        assert_eq!(report.kill_rate(), 0.0);
    }

    #[test]
    fn escape_round_kills_the_map_write_fault() {
        let report = FaultAudit::new()
            .suite(tiny_suite())
            .faults([PlatformFault::PageMapWriteIgnored])
            .platforms([PlatformId::RtlSim])
            .scenarios(2)
            .workers(2)
            .run()
            .unwrap();
        let cell = report
            .cell(PlatformFault::PageMapWriteIgnored, PlatformId::RtlSim)
            .unwrap();
        match &cell.outcome {
            CellOutcome::Detected { round, killed_by } => {
                assert_eq!(*round, 2, "killed by generated stimulus");
                assert!(
                    killed_by.iter().any(|t| t.contains("TEST_HUNT_PAGE_MAP")),
                    "{killed_by:?}"
                );
            }
            other => panic!("expected round-2 detection, got {other:?}"),
        }
        assert!(report.scenarios_generated() > 0);
        assert!(report.escapes().is_empty());
    }

    #[test]
    fn armed_checkers_kill_the_map_write_fault_in_round_one() {
        // A cell that writes PAGE_MAP and reads it back into a sink
        // register: the faulted readback never reaches the verdict, so
        // the differential layer passes everywhere.
        let sink = ModuleTestEnv::new(
            "MAPSINK",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![crate::env::TestCell::new(
                "TEST_MAP_SINK",
                "map readback into a sink register",
                "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #0x1234
    STORE [PAGE_MAP_ADDR], d1
    LOAD d2, [PAGE_MAP_ADDR]
    CALL Base_Report_Pass
    RETURN
",
            )],
        );
        let mut suite = tiny_suite();
        suite.push(sink);
        let base = FaultAudit::new()
            .suite(suite)
            .faults([PlatformFault::PageMapWriteIgnored])
            .platforms([PlatformId::RtlSim])
            .escape_rounds(0)
            .workers(2);

        // Without checkers the fault escapes round 1 outright — the
        // seed suite needs the round-2 escape loop to kill it (see
        // escape_round_kills_the_map_write_fault).
        let blind = base.clone().run().unwrap();
        assert_eq!(blind.escapes().len(), 1);

        // With a readback checker armed, the same stimulus kills it in
        // round 1: strictly fewer rounds than the blind audit.
        let armed = base
            .checkers([TraceAssertion::ReadbackEquals {
                addr: 0xE0108,
                mask: 0xFFFF,
            }])
            .run()
            .unwrap();
        let cell = armed
            .cell(PlatformFault::PageMapWriteIgnored, PlatformId::RtlSim)
            .unwrap();
        match &cell.outcome {
            CellOutcome::Detected { round, killed_by } => {
                assert_eq!(*round, 1, "checker kill needs no escape round");
                assert!(
                    killed_by
                        .iter()
                        .any(|t| t.contains("checker:readback[0xe0108")),
                    "{killed_by:?}"
                );
            }
            other => panic!("expected round-1 checker detection, got {other:?}"),
        }
        assert!(armed.killed(PlatformFault::PageMapWriteIgnored));
        let json = armed.to_json();
        assert!(json.contains("checker:readback[0xe0108"), "{json}");
    }

    #[test]
    fn duplicate_platforms_audit_once() {
        let report = FaultAudit::new()
            .suite(tiny_suite())
            .faults([PlatformFault::PageActiveOffByOne])
            .platforms([
                PlatformId::RtlSim,
                PlatformId::RtlSim,
                PlatformId::GoldenModel,
            ])
            .escape_rounds(0)
            .workers(2)
            .run()
            .unwrap();
        assert_eq!(report.platforms(), [PlatformId::RtlSim]);
        assert_eq!(report.cells().len(), 1, "one cell per distinct platform");
    }

    #[test]
    fn escape_rounds_run_up_to_the_budget_with_fresh_batches() {
        // The one-shot poll cell cannot observe a periodic-reload bug,
        // and the TIMER stimulus the escape round generates is the same
        // one-shot poll — so the fault survives every round and the loop
        // must draw a fresh batch per configured round.
        let report = FaultAudit::new()
            .suite([presets::page_env(presets::default_config(), 1)])
            .faults([PlatformFault::TimerPeriodicNoReload])
            .platforms([PlatformId::RtlSim])
            .escape_rounds(2)
            .scenarios(2)
            .workers(2)
            .run()
            .unwrap();
        assert_eq!(report.escapes().len(), 1);
        assert_eq!(
            report.scenarios_generated(),
            4,
            "two rounds of two scenarios each"
        );
    }

    #[test]
    fn broken_suite_is_not_counted_as_detection() {
        // A suite that fails on the reference too produces failures with
        // no divergence — that is a broken cell, not a kill.
        let failing = ModuleTestEnv::new(
            "ALWAYS",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![crate::env::TestCell::new(
                "TEST_ALWAYS_FAILS",
                "fails everywhere",
                ".INCLUDE Globals.inc\n_main:\n    LOAD ArgA, #9\n    CALL Base_Report_Fail\n    RETURN\n",
            )],
        );
        let report = FaultAudit::new()
            .suite([failing])
            .faults([PlatformFault::PageMapWriteIgnored])
            .platforms([PlatformId::RtlSim])
            .escape_rounds(0)
            .workers(2)
            .run()
            .unwrap();
        assert_eq!(report.broken(), 1);
        assert_eq!(report.detected(), 0);
    }

    #[test]
    fn empty_plans_are_rejected_and_reference_is_never_faulted() {
        assert!(matches!(
            FaultAudit::new().faults([]).run(),
            Err(AuditError::NoFaults)
        ));
        assert!(matches!(
            FaultAudit::new().platforms([PlatformId::GoldenModel]).run(),
            Err(AuditError::NoPlatforms)
        ));
    }

    #[test]
    fn forked_audit_matrix_matches_from_reset_and_saves_prefix_work() {
        let from_reset = FaultAudit::new()
            .suite(tiny_suite())
            .faults([
                PlatformFault::PageActiveOffByOne,
                PlatformFault::UartDropsBytes,
                PlatformFault::TimerNeverExpires,
            ])
            .platforms([PlatformId::RtlSim, PlatformId::ProductSilicon])
            .escape_rounds(0)
            .workers(2)
            .fork_prefix(false)
            .run()
            .unwrap();
        assert_eq!(from_reset.perf().prefix_saved, 0);
        assert_eq!(from_reset.perf().forked_runs, 0);

        let forked = FaultAudit::new()
            .suite(tiny_suite())
            .faults([
                PlatformFault::PageActiveOffByOne,
                PlatformFault::UartDropsBytes,
                PlatformFault::TimerNeverExpires,
            ])
            .platforms([PlatformId::RtlSim, PlatformId::ProductSilicon])
            .escape_rounds(0)
            .workers(2)
            .run()
            .unwrap();
        assert!(
            forked.perf().prefix_saved > 0,
            "shared prefixes must skip re-execution: {:?}",
            forked.perf()
        );
        assert!(forked.perf().forked_runs > 0);
        let json = forked.to_json();
        assert!(json.contains("\"prefix_saved\":"), "{json}");

        // Cell-for-cell identical classifications and kill counts.
        assert_eq!(forked.cells().len(), from_reset.cells().len());
        for cell in from_reset.cells() {
            let twin = forked.cell(cell.fault, cell.platform).unwrap();
            assert_eq!(
                twin.outcome, cell.outcome,
                "{:?} on {:?}",
                cell.fault, cell.platform
            );
        }
        assert_eq!(forked.kill_counts(), from_reset.kill_counts());
        assert_eq!(forked.kill_rate(), from_reset.kill_rate());
    }

    #[test]
    fn json_report_is_balanced_and_typed() {
        let report = FaultAudit::new()
            .suite(tiny_suite())
            .faults([
                PlatformFault::PageActiveOffByOne,
                PlatformFault::PageMapWriteIgnored,
            ])
            .platforms([PlatformId::RtlSim])
            .escape_rounds(0)
            .workers(2)
            .run()
            .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(
            json.contains("\"fault\":\"page-active-off-by-one\""),
            "{json}"
        );
        assert!(json.contains("\"outcome\":\"detected\""), "{json}");
        assert!(json.contains("\"outcome\":\"masked\""), "{json}");
        assert!(json.contains("\"kill_rate\":0.5000"), "{json}");
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
        let matrix = report.matrix().to_string();
        assert!(matrix.contains("KILL@1"), "{matrix}");
        assert!(matrix.contains("ESCAPE"), "{matrix}");
    }
}
