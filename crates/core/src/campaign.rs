//! The campaign execution pipeline — the regression layer, redesigned.
//!
//! A *campaign* runs every test cell of one or more environments across a
//! set of platforms. Per the methodology, each (environment, platform)
//! pair gets its own abstraction-layer build — re-targeting is a
//! `Globals.inc` regeneration, never a test edit — and per-test results
//! are compared across platforms for divergence.
//!
//! This module replaces the old `run_regression` free function with a
//! builder-driven pipeline:
//!
//! * **Assembly on the workers.** Job planning only generates source
//!   text; the expensive assemble-and-link happens inside the worker
//!   pool, overlapped across jobs.
//! * **Content-keyed build cache.** Jobs whose effective source content
//!   is identical (e.g. a platform-independent cell targeted at two
//!   platforms with the same abstraction-layer knobs) share one build.
//!   The key hashes only content that can reach the emitted image:
//!   comments are ignored, and `Globals.inc` defines count only when the
//!   rest of the unit references them.
//! * **Event streaming.** Typed [`CampaignEvent`]s (job started / built /
//!   finished, planned cache hits, divergences) stream to pluggable
//!   [`CampaignObserver`]s while the campaign runs.
//! * **Indexed report.** [`CampaignReport`] pre-indexes runs by test and
//!   platform, so [`CampaignReport::matrix`] and
//!   [`CampaignReport::divergences`] are lookups, not rescans.
//!
//! ```
//! use advm::campaign::Campaign;
//! use advm::env::{EnvConfig, ModuleTestEnv, TestCell};
//! use advm_soc::{DerivativeId, PlatformId};
//!
//! # fn main() -> Result<(), advm::campaign::CampaignError> {
//! let env = ModuleTestEnv::new(
//!     "PAGE",
//!     EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
//!     vec![TestCell::new(
//!         "TEST_SMOKE",
//!         "passes everywhere",
//!         ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
//!     )],
//! );
//! let report = Campaign::new()
//!     .env(env)
//!     .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
//!     .workers(2)
//!     .run()?;
//! assert_eq!(report.total(), 2);
//! assert_eq!(report.failed(), 0);
//! // Golden model and RTL share the abstraction-layer knobs, so the
//! // platform-independent cell is assembled once and reused.
//! assert_eq!(report.cache_hits(), 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use advm_asm::{AsmError, Image, SourceSet};
use advm_fuzz::TraceAssertion;
use advm_gen::{Scenario, ScenarioMeta};
use advm_metrics::Table;
use advm_sim::diverge::{compare, DivergenceReport};
use advm_sim::{
    bisect_divergence, DecodedProgram, EndReason, FirstDivergence, Platform, PlatformFault,
    RunResult, SaveState,
};
use advm_soc::{Derivative, DerivativeId, PlatformId};
use parking_lot::Mutex;

use crate::artifacts::ArtifactStore;
use crate::build::{es_rom_source, link_programs, unit_sources};
use crate::env::{EnvConfig, ModuleTestEnv, GLOBALS_FILE};
use crate::prefix::{PrefixEntry, PrefixPool};

/// Default capacity of the per-run MMIO monitor armed when a campaign
/// carries mined checkers (see [`Campaign::checkers`]).
///
/// Mining and checking must observe traffic through rings of the *same*
/// capacity: a truncation-aware temporal checker skips windows that
/// precede the ring's oldest retained record, so equal capacities make
/// "zero spurious violations on the mining inputs" a guarantee rather
/// than a heuristic.
pub const DEFAULT_MONITOR_CAPACITY: usize = 4096;

/// One mined-checker violation: a run whose MMIO trace broke a
/// [`TraceAssertion`].
///
/// Violations are recorded even when the differential verdict passes —
/// that is their purpose: a fault whose symptom is differentially
/// invisible (a page `MAP` write silently ignored, read back into a
/// sink register) still breaks the invariant mined from fault-free
/// traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerViolation {
    /// Environment name.
    pub env: String,
    /// Test cell id.
    pub test_id: String,
    /// Platform the violating run executed on.
    pub platform: PlatformId,
    /// The checker's pinned name (see [`TraceAssertion::name`]).
    pub checker: String,
    /// Human-readable violation detail.
    pub detail: String,
}

/// Picks a worker count from the machine's available parallelism.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// One executed test run.
#[derive(Debug, Clone)]
pub struct TestRun {
    /// Environment name.
    pub env: String,
    /// Test cell id.
    pub test_id: String,
    /// Platform the run executed on.
    pub platform: PlatformId,
    /// The execution result.
    pub result: RunResult,
    /// Provenance of the scenario that produced this run's stimulus;
    /// `None` for runs from hand-built environments.
    pub scenario: Option<ScenarioMeta>,
}

/// A typed event streamed to [`CampaignObserver`]s while a campaign runs.
///
/// Job-level events are emitted from worker threads, so their order
/// interleaves under parallel execution; their *content* is deterministic
/// for a given campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignEvent {
    /// The campaign's job graph is planned and the worker pool is about
    /// to start.
    Started {
        /// Total jobs (cells × platforms, across all environments).
        jobs: usize,
        /// Distinct assemblies the build cache will perform.
        unique_builds: usize,
        /// Worker threads about to spawn.
        workers: usize,
    },
    /// A worker picked up a job.
    JobStarted {
        /// Environment name.
        env: String,
        /// Test cell id.
        test_id: String,
        /// Target platform.
        platform: PlatformId,
    },
    /// A job's image is ready (assembled here or served from the cache).
    JobBuilt {
        /// Environment name.
        env: String,
        /// Test cell id.
        test_id: String,
        /// Target platform.
        platform: PlatformId,
        /// Whether the image was deduplicated by the build cache.
        cache_hit: bool,
    },
    /// A job executed to completion.
    JobFinished {
        /// Environment name.
        env: String,
        /// Test cell id.
        test_id: String,
        /// Target platform.
        platform: PlatformId,
        /// Whether the run passed.
        passed: bool,
    },
    /// A job could not be built.
    JobFailed {
        /// Environment name.
        env: String,
        /// Test cell id.
        test_id: String,
        /// Target platform.
        platform: PlatformId,
        /// The build error, rendered.
        error: String,
    },
    /// A run's MMIO trace broke a mined checker (emitted from worker
    /// threads as runs finish; only possible when the campaign carries
    /// [`Campaign::checkers`]).
    CheckerViolation {
        /// Environment name.
        env: String,
        /// Test cell id.
        test_id: String,
        /// Platform the violating run executed on.
        platform: PlatformId,
        /// The checker's pinned name.
        checker: String,
        /// Human-readable violation detail.
        detail: String,
    },
    /// Platforms disagreed on a test (emitted during report analysis).
    DivergenceDetected {
        /// `env/test` label.
        test: String,
        /// Platforms that disagree with the majority.
        divergent: Vec<PlatformId>,
    },
    /// The campaign finished and the report is sealed.
    Finished {
        /// Total runs.
        total: usize,
        /// Passing runs.
        passed: usize,
        /// Failing runs.
        failed: usize,
        /// Build-cache hits.
        cache_hits: usize,
    },
}

impl CampaignEvent {
    /// The event's wire-format tag (the `"type"` field of its JSON
    /// form).
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignEvent::Started { .. } => "started",
            CampaignEvent::JobStarted { .. } => "job_started",
            CampaignEvent::JobBuilt { .. } => "job_built",
            CampaignEvent::JobFinished { .. } => "job_finished",
            CampaignEvent::JobFailed { .. } => "job_failed",
            CampaignEvent::CheckerViolation { .. } => "checker_violation",
            CampaignEvent::DivergenceDetected { .. } => "divergence",
            CampaignEvent::Finished { .. } => "finished",
        }
    }

    /// Renders the event as one compact JSON object — the line format
    /// of the NDJSON event stream `advm-serve` sends to watchers. The
    /// encoding is a stable contract: every variant round-trips through
    /// [`CampaignEvent::from_json`] and is pinned by golden tests.
    pub fn to_json(&self) -> String {
        match self {
            CampaignEvent::Started {
                jobs,
                unique_builds,
                workers,
            } => format!(
                "{{\"type\":\"started\",\"jobs\":{jobs},\
                 \"unique_builds\":{unique_builds},\"workers\":{workers}}}"
            ),
            CampaignEvent::JobStarted {
                env,
                test_id,
                platform,
            } => format!(
                "{{\"type\":\"job_started\",\"env\":{},\"test\":{},\"platform\":\"{}\"}}",
                json_string(env),
                json_string(test_id),
                platform.name()
            ),
            CampaignEvent::JobBuilt {
                env,
                test_id,
                platform,
                cache_hit,
            } => format!(
                "{{\"type\":\"job_built\",\"env\":{},\"test\":{},\
                 \"platform\":\"{}\",\"cache_hit\":{cache_hit}}}",
                json_string(env),
                json_string(test_id),
                platform.name()
            ),
            CampaignEvent::JobFinished {
                env,
                test_id,
                platform,
                passed,
            } => format!(
                "{{\"type\":\"job_finished\",\"env\":{},\"test\":{},\
                 \"platform\":\"{}\",\"passed\":{passed}}}",
                json_string(env),
                json_string(test_id),
                platform.name()
            ),
            CampaignEvent::JobFailed {
                env,
                test_id,
                platform,
                error,
            } => format!(
                "{{\"type\":\"job_failed\",\"env\":{},\"test\":{},\
                 \"platform\":\"{}\",\"error\":{}}}",
                json_string(env),
                json_string(test_id),
                platform.name(),
                json_string(error)
            ),
            CampaignEvent::CheckerViolation {
                env,
                test_id,
                platform,
                checker,
                detail,
            } => format!(
                "{{\"type\":\"checker_violation\",\"env\":{},\"test\":{},\
                 \"platform\":\"{}\",\"checker\":{},\"detail\":{}}}",
                json_string(env),
                json_string(test_id),
                platform.name(),
                json_string(checker),
                json_string(detail)
            ),
            CampaignEvent::DivergenceDetected { test, divergent } => {
                let names: Vec<String> = divergent
                    .iter()
                    .map(|p| format!("\"{}\"", p.name()))
                    .collect();
                format!(
                    "{{\"type\":\"divergence\",\"test\":{},\"divergent\":[{}]}}",
                    json_string(test),
                    names.join(",")
                )
            }
            CampaignEvent::Finished {
                total,
                passed,
                failed,
                cache_hits,
            } => format!(
                "{{\"type\":\"finished\",\"total\":{total},\"passed\":{passed},\
                 \"failed\":{failed},\"cache_hits\":{cache_hits}}}"
            ),
        }
    }

    /// Parses one event back from its [`CampaignEvent::to_json`] line.
    ///
    /// # Errors
    ///
    /// [`WireError`](crate::wire::WireError) for malformed JSON, an
    /// unknown `"type"` tag, or a missing/mistyped field.
    pub fn from_json(text: &str) -> Result<Self, crate::wire::WireError> {
        use crate::wire::{JsonValue, WireError};
        let parse_platform = |value: &JsonValue| -> Result<PlatformId, WireError> {
            let name = value.str_field("platform")?;
            PlatformId::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| WireError::shape(format!("unknown platform `{name}`")))
        };
        let value = JsonValue::parse(text)?;
        let event = match value.str_field("type")? {
            "started" => CampaignEvent::Started {
                jobs: value.u64_field("jobs")? as usize,
                unique_builds: value.u64_field("unique_builds")? as usize,
                workers: value.u64_field("workers")? as usize,
            },
            "job_started" => CampaignEvent::JobStarted {
                env: value.str_field("env")?.to_owned(),
                test_id: value.str_field("test")?.to_owned(),
                platform: parse_platform(&value)?,
            },
            "job_built" => CampaignEvent::JobBuilt {
                env: value.str_field("env")?.to_owned(),
                test_id: value.str_field("test")?.to_owned(),
                platform: parse_platform(&value)?,
                cache_hit: value.bool_field("cache_hit")?,
            },
            "job_finished" => CampaignEvent::JobFinished {
                env: value.str_field("env")?.to_owned(),
                test_id: value.str_field("test")?.to_owned(),
                platform: parse_platform(&value)?,
                passed: value.bool_field("passed")?,
            },
            "job_failed" => CampaignEvent::JobFailed {
                env: value.str_field("env")?.to_owned(),
                test_id: value.str_field("test")?.to_owned(),
                platform: parse_platform(&value)?,
                error: value.str_field("error")?.to_owned(),
            },
            "checker_violation" => CampaignEvent::CheckerViolation {
                env: value.str_field("env")?.to_owned(),
                test_id: value.str_field("test")?.to_owned(),
                platform: parse_platform(&value)?,
                checker: value.str_field("checker")?.to_owned(),
                detail: value.str_field("detail")?.to_owned(),
            },
            "divergence" => {
                let divergent = value
                    .get("divergent")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| WireError::shape("missing `divergent` array"))?
                    .iter()
                    .map(|item| {
                        let name = item
                            .as_str()
                            .ok_or_else(|| WireError::shape("non-string platform name"))?;
                        PlatformId::ALL
                            .into_iter()
                            .find(|p| p.name() == name)
                            .ok_or_else(|| WireError::shape(format!("unknown platform `{name}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                CampaignEvent::DivergenceDetected {
                    test: value.str_field("test")?.to_owned(),
                    divergent,
                }
            }
            "finished" => CampaignEvent::Finished {
                total: value.u64_field("total")? as usize,
                passed: value.u64_field("passed")? as usize,
                failed: value.u64_field("failed")? as usize,
                cache_hits: value.u64_field("cache_hits")? as usize,
            },
            other => return Err(WireError::shape(format!("unknown event type `{other}`"))),
        };
        Ok(event)
    }
}

/// A sink for [`CampaignEvent`]s.
///
/// Observers are invoked under a dispatch lock, so implementations may
/// keep mutable state without their own synchronisation; they must be
/// `Send` because events originate on worker threads.
pub trait CampaignObserver: Send {
    /// Receives one event.
    fn on_event(&mut self, event: &CampaignEvent);
}

impl CampaignObserver for Box<dyn CampaignObserver> {
    fn on_event(&mut self, event: &CampaignEvent) {
        (**self).on_event(event);
    }
}

/// Builds a fresh observer for each campaign a multi-campaign driver
/// runs. [`FaultAudit`](crate::audit::FaultAudit) and
/// [`Exploration`](crate::stimulus::Exploration) spin up many internal
/// campaigns; a factory (rather than one observer) lets every one of
/// them stream events to its own sink — e.g. the daemon's per-job
/// NDJSON stream — without the driver knowing the sink type.
pub type ObserverFactory = Arc<dyn Fn() -> Box<dyn CampaignObserver> + Send + Sync>;

/// An observer that prints one progress line per finished job to stderr.
///
/// Used by `advm-cli regress` for live feedback; output goes to stderr so
/// machine-readable stdout (e.g. `--json`) stays clean.
#[derive(Debug, Default)]
pub struct ProgressObserver {
    done: usize,
    total: usize,
    cached: HashMap<(String, String, PlatformId), bool>,
}

impl ProgressObserver {
    /// Creates the observer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CampaignObserver for ProgressObserver {
    fn on_event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::Started { jobs, workers, .. } => {
                self.total = *jobs;
                eprintln!("campaign: {jobs} jobs on {workers} workers");
            }
            CampaignEvent::JobBuilt {
                env,
                test_id,
                platform,
                cache_hit,
            } => {
                self.cached
                    .insert((env.clone(), test_id.clone(), *platform), *cache_hit);
            }
            CampaignEvent::JobFinished {
                env,
                test_id,
                platform,
                passed,
            } => {
                self.done += 1;
                let verdict = if *passed { "pass" } else { "FAIL" };
                let origin = match self
                    .cached
                    .remove(&(env.clone(), test_id.clone(), *platform))
                {
                    Some(true) => " (cached)",
                    _ => "",
                };
                eprintln!(
                    "[{}/{}] {env}/{test_id} @ {platform} {verdict}{origin}",
                    self.done, self.total
                );
            }
            CampaignEvent::JobFailed {
                env,
                test_id,
                platform,
                error,
            } => {
                self.done += 1;
                eprintln!(
                    "[{}/{}] {env}/{test_id} @ {platform} BUILD ERROR: {error}",
                    self.done, self.total
                );
            }
            CampaignEvent::CheckerViolation {
                env,
                test_id,
                platform,
                checker,
                ..
            } => {
                eprintln!("checker violation: {env}/{test_id} @ {platform} {checker}");
            }
            CampaignEvent::DivergenceDetected { test, divergent } => {
                let names: Vec<&str> = divergent.iter().map(|p| p.name()).collect();
                eprintln!("divergence: {test} (odd platforms: {})", names.join(", "));
            }
            CampaignEvent::Finished {
                passed,
                failed,
                cache_hits,
                ..
            } => {
                eprintln!("campaign: {passed} passed, {failed} failed, {cache_hits} cache hits");
            }
            CampaignEvent::JobStarted { .. } => {}
        }
    }
}

/// An observer that records every event for later inspection.
///
/// Cloning the log clones the *handle*: all clones share one event list,
/// so a test can keep a handle, hand a clone to the campaign, and read
/// the stream afterwards.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<CampaignEvent>>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<CampaignEvent> {
        self.events.lock().clone()
    }
}

impl CampaignObserver for EventLog {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.lock().push(event.clone());
    }
}

/// A structured campaign failure.
#[derive(Debug)]
pub enum CampaignError {
    /// The campaign has neither environments nor scenarios to run.
    NoEnvironments,
    /// The campaign has no target platforms.
    NoPlatforms,
    /// A job failed to build. Execution failures are results, not
    /// errors; this is an assembler or link problem.
    Build {
        /// Environment name.
        env: String,
        /// Test cell id.
        test_id: String,
        /// Target platform.
        platform: PlatformId,
        /// The underlying assembler error.
        source: AsmError,
    },
}

impl CampaignError {
    /// Converts into the bare [`AsmError`] the deprecated
    /// `run_regression` shim still promises.
    pub fn into_asm_error(self) -> AsmError {
        match self {
            CampaignError::Build { source, .. } => source,
            other => AsmError::general(other.to_string()),
        }
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::NoEnvironments => f.write_str("campaign has no environments"),
            CampaignError::NoPlatforms => f.write_str("campaign has no target platforms"),
            CampaignError::Build {
                env,
                test_id,
                platform,
                source,
            } => write!(
                f,
                "build failed for {env}/{test_id} on {platform}: {source}"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Execution-performance telemetry for one campaign (or an aggregate
/// over several, see [`CampaignPerf::absorb`]).
///
/// The simulated-instruction total and decode-cache counters are
/// deterministic for a given campaign; wall time and the derived
/// steps-per-second rate are measured and vary run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignPerf {
    /// Instructions retired across every run.
    pub instructions: u64,
    /// Wall-clock time of the execution phase (planning excluded).
    pub wall: Duration,
    /// Decode-cache hits summed over every run.
    pub decode_hits: u64,
    /// Decode-cache misses summed over every run.
    pub decode_misses: u64,
    /// Decode slots seeded from shared predecode artifacts.
    pub decode_preloaded: u64,
    /// Superblocks built by the block tier, summed over every run.
    pub blocks_built: u64,
    /// Whole-block dispatches taken by the straight-line fast path.
    pub block_dispatches: u64,
    /// Instructions retired inside block dispatches (a subset of
    /// `decode_hits`).
    pub block_insns: u64,
    /// Prefix instructions runs skipped by forking from a shared
    /// snapshot instead of re-executing from reset (see
    /// [`crate::prefix::PrefixPool`]).
    pub prefix_saved: u64,
    /// Runs that started from a forked snapshot rather than reset.
    pub forked_runs: u64,
    /// Distinct content keys served by a shared
    /// [`ArtifactStore`] — builds this campaign reused from (or shared
    /// with) *other* campaigns. Zero without a store attached; nonzero
    /// on a warm run against a resident daemon.
    pub artifact_hits: u64,
    /// Wall-clock time of the build phase: scenario materialisation,
    /// job planning and every image assembly (the front-end runs on the
    /// worker pool, see [`Campaign::parallel_frontend`]).
    pub build_wall: Duration,
    /// Wall-clock time of the execution phase — identical to
    /// [`wall`](CampaignPerf::wall), named for symmetry with the other
    /// phase counters.
    pub exec_wall: Duration,
    /// Wall-clock time of report sealing: divergence comparison,
    /// indexing and (when enabled) bisection.
    pub report_wall: Duration,
}

impl CampaignPerf {
    /// Simulated instructions per wall-clock second (0.0 for an
    /// unmeasured or empty campaign).
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / secs
        }
    }

    /// Decode-cache hit rate in `0.0..=1.0` (1.0 when nothing fetched).
    pub fn decode_hit_rate(&self) -> f64 {
        advm_sim::DecodeStats {
            hits: self.decode_hits,
            misses: self.decode_misses,
            ..advm_sim::DecodeStats::default()
        }
        .hit_rate()
    }

    /// Folds another perf block into this one (used by multi-campaign
    /// drivers such as the fault audit).
    pub fn absorb(&mut self, other: &CampaignPerf) {
        self.instructions += other.instructions;
        self.wall += other.wall;
        self.decode_hits += other.decode_hits;
        self.decode_misses += other.decode_misses;
        self.decode_preloaded += other.decode_preloaded;
        self.blocks_built += other.blocks_built;
        self.block_dispatches += other.block_dispatches;
        self.block_insns += other.block_insns;
        self.prefix_saved += other.prefix_saved;
        self.forked_runs += other.forked_runs;
        self.artifact_hits += other.artifact_hits;
        self.build_wall += other.build_wall;
        self.exec_wall += other.exec_wall;
        self.report_wall += other.report_wall;
    }

    /// Renders the JSON object embedded in report documents.
    pub(crate) fn to_json(self) -> String {
        format!(
            "{{\"instructions\":{},\"wall_ms\":{:.3},\"steps_per_sec\":{:.0},\
             \"decode_hits\":{},\"decode_misses\":{},\"decode_preloaded\":{},\
             \"decode_hit_rate\":{:.4},\"blocks_built\":{},\
             \"block_dispatches\":{},\"block_insns\":{},\"prefix_saved\":{},\
             \"forked_runs\":{},\"artifact_hits\":{},\"build_wall_ms\":{:.3},\
             \"exec_wall_ms\":{:.3},\"report_wall_ms\":{:.3}}}",
            self.instructions,
            self.wall.as_secs_f64() * 1e3,
            self.steps_per_sec(),
            self.decode_hits,
            self.decode_misses,
            self.decode_preloaded,
            self.decode_hit_rate(),
            self.blocks_built,
            self.block_dispatches,
            self.block_insns,
            self.prefix_saved,
            self.forked_runs,
            self.artifact_hits,
            self.build_wall.as_secs_f64() * 1e3,
            self.exec_wall.as_secs_f64() * 1e3,
            self.report_wall.as_secs_f64() * 1e3
        )
    }
}

/// The collected campaign results, pre-indexed for lookup.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    runs: Vec<TestRun>,
    /// Distinct scenario provenance records, in run order.
    scenarios: Vec<ScenarioMeta>,
    /// Distinct `(env, test)` pairs in run order.
    tests: Vec<(String, String)>,
    /// Distinct platforms in run order.
    platforms: Vec<PlatformId>,
    /// `(env, test) -> test index`.
    test_of: HashMap<(String, String), usize>,
    /// `platform -> platform index`.
    platform_of: HashMap<PlatformId, usize>,
    /// `(test index, platform index) -> run index`.
    cell_index: HashMap<(usize, usize), usize>,
    divergences: Vec<(String, DivergenceReport)>,
    passed: usize,
    cache_hits: usize,
    unique_builds: usize,
    perf: CampaignPerf,
    /// Number of mined checkers armed on every run (0 = monitor off).
    checkers_armed: usize,
    /// Mined-checker violations, in job order.
    violations: Vec<CheckerViolation>,
}

impl CampaignReport {
    fn new(runs: Vec<TestRun>, cache_hits: usize, unique_builds: usize, wall: Duration) -> Self {
        let mut tests: Vec<(String, String)> = Vec::new();
        let mut platforms: Vec<PlatformId> = Vec::new();
        let mut test_of: HashMap<(String, String), usize> = HashMap::new();
        let mut platform_of: HashMap<PlatformId, usize> = HashMap::new();
        let mut cell_index = HashMap::new();
        let mut runs_by_test: Vec<Vec<usize>> = Vec::new();
        let mut scenarios: Vec<ScenarioMeta> = Vec::new();
        let mut scenario_names: std::collections::HashSet<String> =
            std::collections::HashSet::new();
        let mut passed = 0;
        for (run_idx, run) in runs.iter().enumerate() {
            if let Some(meta) = &run.scenario {
                if scenario_names.insert(meta.name.clone()) {
                    scenarios.push(meta.clone());
                }
            }
            let key = (run.env.clone(), run.test_id.clone());
            let t = *test_of.entry(key.clone()).or_insert_with(|| {
                tests.push(key);
                runs_by_test.push(Vec::new());
                tests.len() - 1
            });
            let p = *platform_of.entry(run.platform).or_insert_with(|| {
                platforms.push(run.platform);
                platforms.len() - 1
            });
            cell_index.insert((t, p), run_idx);
            runs_by_test[t].push(run_idx);
            if run.result.passed() {
                passed += 1;
            }
        }
        let mut perf = CampaignPerf {
            wall,
            ..CampaignPerf::default()
        };
        for run in &runs {
            perf.instructions += run.result.insns;
            perf.decode_hits += run.result.decode.hits;
            perf.decode_misses += run.result.decode.misses;
            perf.decode_preloaded += run.result.decode.preloaded;
            perf.blocks_built += run.result.decode.blocks_built;
            perf.block_dispatches += run.result.decode.block_dispatches;
            perf.block_insns += run.result.decode.block_insns;
        }
        let mut divergences = Vec::new();
        for (t, (env, test)) in tests.iter().enumerate() {
            if runs_by_test[t].len() > 1 {
                let results: Vec<RunResult> = runs_by_test[t]
                    .iter()
                    .map(|&i| runs[i].result.clone())
                    .collect();
                // Silently skipping the divergence check would corrupt
                // the report, so assert the local invariant instead.
                let report = compare(&results).expect("test group holds more than one run");
                if !report.consistent {
                    divergences.push((format!("{env}/{test}"), report));
                }
            }
        }
        Self {
            runs,
            scenarios,
            tests,
            platforms,
            test_of,
            platform_of,
            cell_index,
            divergences,
            passed,
            cache_hits,
            unique_builds,
            perf,
            checkers_armed: 0,
            violations: Vec::new(),
        }
    }

    /// All runs, ordered by environment, platform, test.
    pub fn runs(&self) -> &[TestRun] {
        &self.runs
    }

    /// Total number of runs.
    pub fn total(&self) -> usize {
        self.runs.len()
    }

    /// Number of passing runs.
    pub fn passed(&self) -> usize {
        self.passed
    }

    /// Number of failing runs.
    pub fn failed(&self) -> usize {
        self.total() - self.passed
    }

    /// Pass rate in `0.0..=1.0` (1.0 for an empty campaign).
    pub fn pass_rate(&self) -> f64 {
        if self.runs.is_empty() {
            1.0
        } else {
            self.passed as f64 / self.total() as f64
        }
    }

    /// Build-cache hits: jobs served an image assembled for another job.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Distinct assemblies the campaign performed.
    pub fn unique_builds(&self) -> usize {
        self.unique_builds
    }

    /// Execution-performance telemetry: simulated instructions, wall
    /// time, steps/sec and decode-cache counters.
    pub fn perf(&self) -> &CampaignPerf {
        &self.perf
    }

    /// The distinct `(env, test)` pairs in run order.
    pub fn tests(&self) -> &[(String, String)] {
        &self.tests
    }

    /// Provenance of every scenario that contributed runs, in run
    /// order; empty for campaigns over hand-built environments only.
    pub fn scenarios(&self) -> &[ScenarioMeta] {
        &self.scenarios
    }

    /// The distinct platforms in run order.
    pub fn platforms(&self) -> &[PlatformId] {
        &self.platforms
    }

    /// The run of one test on one platform, if present. An indexed
    /// lookup, not a scan.
    pub fn run_of(&self, env: &str, test_id: &str, platform: PlatformId) -> Option<&TestRun> {
        let t = *self.test_of.get(&(env.to_owned(), test_id.to_owned()))?;
        let p = *self.platform_of.get(&platform)?;
        self.cell_index.get(&(t, p)).map(|&i| &self.runs[i])
    }

    /// Renders the tests × platforms pass/fail matrix.
    pub fn matrix(&self) -> Table {
        let mut headers: Vec<String> = vec!["test".to_owned()];
        headers.extend(self.platforms.iter().map(ToString::to_string));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new("Regression matrix", &header_refs);
        for (t, (env, test)) in self.tests.iter().enumerate() {
            let mut row = vec![format!("{env}/{test}")];
            for p in 0..self.platforms.len() {
                let cell = self
                    .cell_index
                    .get(&(t, p))
                    .map(|&i| {
                        if self.runs[i].result.passed() {
                            "PASS"
                        } else {
                            "FAIL"
                        }
                    })
                    .unwrap_or("-");
                row.push(cell.to_owned());
            }
            table.row(&row);
        }
        table
    }

    /// Per-test cross-platform divergence analysis; returns only tests
    /// where platforms disagree. Computed once when the report is sealed.
    pub fn divergences(&self) -> &[(String, DivergenceReport)] {
        &self.divergences
    }

    /// Number of mined checkers armed on every run of this campaign
    /// (0 when the MMIO monitor was off).
    pub fn checkers_armed(&self) -> usize {
        self.checkers_armed
    }

    /// Every mined-checker violation, in deterministic job order
    /// (independent of worker count). Empty when no checkers were armed
    /// or every run satisfied them.
    pub fn checker_violations(&self) -> &[CheckerViolation] {
        &self.violations
    }

    /// Renders the report as a JSON document (machine-readable form of
    /// the matrix, counters, cache statistics and divergences).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"total\":{},\"passed\":{},\"failed\":{},\"pass_rate\":{:.4},",
            self.total(),
            self.passed(),
            self.failed(),
            self.pass_rate()
        ));
        s.push_str(&format!(
            "\"cache\":{{\"hits\":{},\"unique_builds\":{}}},",
            self.cache_hits, self.unique_builds
        ));
        s.push_str(&format!("\"perf\":{},", self.perf.to_json()));
        // Emitted only when checkers were armed: campaigns without a
        // monitor keep their pre-existing byte-stable layout.
        if self.checkers_armed > 0 {
            s.push_str(&format!(
                "\"checkers\":{{\"armed\":{},\"violations\":[",
                self.checkers_armed
            ));
            for (i, v) in self.violations.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"env\":{},\"test\":{},\"platform\":\"{}\",\
                     \"checker\":{},\"detail\":{}}}",
                    json_string(&v.env),
                    json_string(&v.test_id),
                    v.platform.name(),
                    json_string(&v.checker),
                    json_string(&v.detail)
                ));
            }
            s.push_str("]},");
        }
        s.push_str("\"scenarios\":[");
        for (i, meta) in self.scenarios.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"kind\":\"{}\",\"seed\":{},\"detail\":{}}}",
                json_string(&meta.name),
                meta.kind.name(),
                meta.seed,
                json_string(&meta.detail)
            ));
        }
        s.push_str("],");
        s.push_str("\"platforms\":[");
        for (i, p) in self.platforms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", p.name()));
        }
        s.push_str("],\"tests\":[");
        for (t, (env, test)) in self.tests.iter().enumerate() {
            if t > 0 {
                s.push(',');
            }
            let scenario = self
                .platforms
                .iter()
                .enumerate()
                .find_map(|(p, _)| self.cell_index.get(&(t, p)))
                .and_then(|&i| self.runs[i].scenario.as_ref());
            let scenario_field = scenario
                .map(|m| format!("\"scenario\":{},", json_string(&m.name)))
                .unwrap_or_default();
            s.push_str(&format!(
                "{{\"env\":{},\"test\":{},{scenario_field}\"results\":{{",
                json_string(env),
                json_string(test)
            ));
            let mut first = true;
            for (p, platform) in self.platforms.iter().enumerate() {
                if let Some(&i) = self.cell_index.get(&(t, p)) {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    let verdict = if self.runs[i].result.passed() {
                        "pass"
                    } else {
                        "fail"
                    };
                    s.push_str(&format!("\"{}\":\"{verdict}\"", platform.name()));
                }
            }
            s.push_str("}}");
        }
        s.push_str("],\"divergences\":[");
        for (i, (test, report)) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"test\":{},\"ambiguous\":{},\"divergent\":[",
                json_string(test),
                report.ambiguous
            ));
            for (j, p) in report.divergent.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\"", p.name()));
            }
            s.push(']');
            if let Some(b) = &report.bisection {
                s.push_str(&format!(
                    ",\"bisection\":{{\"step\":{},\"platform_a\":\"{}\",\
                     \"platform_b\":\"{}\",\"pc_a\":\"0x{:05X}\",\"pc_b\":\"0x{:05X}\",\
                     \"insn_a\":{},\"insn_b\":{}}}",
                    b.step,
                    b.platform_a.name(),
                    b.platform_b.name(),
                    b.pc_a,
                    b.pc_b,
                    json_string(&b.insn_a),
                    json_string(&b.insn_b)
                ));
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string for JSON embedding (the shared wire-layer routine).
pub(crate) use crate::wire::json_string;

/// FNV-1a, the build cache's content hash: deterministic across runs,
/// platforms and worker counts (unlike `DefaultHasher`, whose keys are
/// unspecified).
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Collects the identifier tokens of one line into `out`.
fn collect_tokens(line: &str, out: &mut std::collections::HashSet<String>) {
    let mut token = String::new();
    for c in line.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            token.push(c);
        } else if !token.is_empty() {
            out.insert(std::mem::take(&mut token));
        }
    }
    if !token.is_empty() {
        out.insert(token);
    }
}

/// Whether a line is pure comment or blank (cannot reach the image).
fn is_inert_line(line: &str) -> bool {
    let trimmed = line.trim_start();
    trimmed.is_empty() || trimmed.starts_with(';')
}

/// The platform-invariant half of a cell's content key: the hash of
/// every non-comment line of the unit sources *except* `Globals.inc`
/// (the one file re-targeting regenerates), plus the ES ROM source, plus
/// the set of identifier tokens those lines reference. Computed once per
/// (environment, cell) and reused across every target platform.
struct CellFingerprint {
    invariant_hash: u64,
    referenced: std::collections::HashSet<String>,
}

impl CellFingerprint {
    fn new(sources: &SourceSet, es_source: &str) -> Self {
        let mut referenced = std::collections::HashSet::new();
        let mut hash = 0;
        for (name, text) in sources.iter() {
            if name == GLOBALS_FILE {
                continue;
            }
            hash = fnv1a(hash, name.as_bytes());
            for line in text.lines().filter(|l| !is_inert_line(l)) {
                collect_tokens(line, &mut referenced);
                hash = fnv1a(hash, line.as_bytes());
                hash = fnv1a(hash, b"\n");
            }
        }
        hash = fnv1a(hash, b"\x00es\x00");
        for line in es_source.lines().filter(|l| !is_inert_line(l)) {
            hash = fnv1a(hash, line.as_bytes());
            hash = fnv1a(hash, b"\n");
        }
        Self {
            invariant_hash: hash,
            referenced,
        }
    }

    /// Completes the content key against one platform's generated
    /// `Globals.inc`.
    ///
    /// The key must be *sound*: equal keys must imply equal images.
    /// `Globals.inc` is a pure define file, so a define can only reach
    /// the emitted image if the rest of the unit mentions its name; only
    /// those live defines are hashed. A platform-independent cell
    /// therefore keys identically on two platforms whose referenced
    /// abstraction-layer knobs agree, and the campaign assembles it once.
    fn content_key(&self, globals_text: &str) -> u64 {
        // Parse the define list: `NAME .EQU value` puts the name first,
        // `.DEFINE NAME value` puts it second.
        let defines: Vec<(&str, &str)> = globals_text
            .lines()
            .filter(|l| !is_inert_line(l))
            .map(|line| {
                let mut words = line.split_whitespace();
                let first = words.next().unwrap_or("");
                let defined = if first.eq_ignore_ascii_case(".DEFINE") {
                    words.next().unwrap_or("")
                } else {
                    first
                };
                (defined, line)
            })
            .collect();
        // A define is live if the unit references its name — directly,
        // or transitively through another live define's value expression
        // (the assembler resolves symbolic `.EQU` expressions, so a live
        // define's value tokens are references too).
        let mut live = vec![false; defines.len()];
        let mut extra: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut changed = true;
        while changed {
            changed = false;
            for (i, (name, line)) in defines.iter().enumerate() {
                if !live[i] && (self.referenced.contains(*name) || extra.contains(*name)) {
                    live[i] = true;
                    collect_tokens(line, &mut extra);
                    changed = true;
                }
            }
        }
        let mut hash = self.invariant_hash;
        for (i, (_, line)) in defines.iter().enumerate() {
            if live[i] {
                hash = fnv1a(hash, line.as_bytes());
                hash = fnv1a(hash, b"\n");
            }
        }
        hash
    }
}

/// One deduplicated build product: the linked image plus its shared
/// predecode artifact. The artifact is built exactly once per distinct
/// image (behind the same content key that dedupes the assembly) and
/// every worker seeds its platform's decode cache from the same `Arc` —
/// decode once per deduped image, not once per test × platform.
pub(crate) struct Prebuilt {
    image: Image,
    /// `None` when the campaign's decode cache is disabled.
    decoded: Option<Arc<DecodedProgram>>,
}

/// Shared build slots. The image slot dedupes whole-image builds across
/// jobs with equal content keys; the ES slot additionally dedupes the
/// embedded-software ROM assembly across *all* jobs that share an ES
/// source (campaign-wide, since the ROM ignores the target platform).
/// With an [`ArtifactStore`] attached, these same slots live in the
/// store and survive the campaign.
pub(crate) type ImageSlot = Arc<OnceLock<Result<Prebuilt, AsmError>>>;
pub(crate) type EsSlot = Arc<OnceLock<Result<advm_asm::Program, AsmError>>>;

/// One planned job: everything a worker needs, plus the shared build
/// slots its content keys mapped to.
struct Job {
    env_name: String,
    test_id: String,
    platform: PlatformId,
    /// Provenance of the scenario whose stimulus this job runs, if any.
    scenario: Option<Arc<ScenarioMeta>>,
    sources: SourceSet,
    es_source: Arc<str>,
    derivative: Arc<Derivative>,
    fault: PlatformFault,
    /// Shared once-cell: the first worker to arrive assembles, everyone
    /// else reuses the image (or the error).
    slot: ImageSlot,
    /// Shared once-cell for the ES ROM program.
    es_slot: EsSlot,
    /// Whether the planner marked this job a cache hit (not the first
    /// job of its content key). Deterministic, independent of scheduling.
    planned_hit: bool,
    /// The build cache's content key, when the cache is enabled; also
    /// keys shared prefix snapshots in a [`PrefixPool`].
    content_key: Option<u64>,
}

impl Job {
    /// Assembles this job's image: unit from its sources, ES ROM from
    /// the shared slot, linked together — then predecodes it once for
    /// every platform the content key covers. Runs on the build pool,
    /// at most once per image slot.
    ///
    /// Both assemblies use the lean parse/encode split: the campaign
    /// only links the programs, so the human-readable listing is never
    /// built. Emitted bytes and diagnostics are identical to
    /// [`advm_asm::assemble`].
    fn build(&self, decode: bool) -> Result<Prebuilt, AsmError> {
        let unit =
            advm_asm::ParsedUnit::parse_lean(crate::build::UNIT_FILE, &self.sources)?.encode()?;
        let es = self
            .es_slot
            .get_or_init(|| {
                let sources = SourceSet::new().with("<input>", &*self.es_source);
                advm_asm::ParsedUnit::parse_lean("<input>", &sources)?.encode()
            })
            .as_ref()
            .map_err(Clone::clone)?;
        let image = link_programs(&unit, es)?;
        let decoded = decode.then(|| Arc::new(DecodedProgram::from_image(&image)));
        Ok(Prebuilt { image, decoded })
    }
}

/// A builder-driven, event-streaming, build-cached execution pipeline
/// over module test environments.
///
/// See the [module docs](self) for the design; see
/// [`Campaign::from_config`] for the bridge from the legacy
/// [`RegressionConfig`](crate::regression::RegressionConfig).
pub struct Campaign {
    /// Environments, each with optional scenario provenance — hand-built
    /// envs carry `None`, [`Campaign::env_with_meta`] envs (e.g. fuzz
    /// programs) carry the meta their runs report.
    envs: Vec<(ModuleTestEnv, Option<Arc<ScenarioMeta>>)>,
    scenarios: Vec<Scenario>,
    platforms: Vec<PlatformId>,
    workers: usize,
    fuel: u64,
    fault: Option<(PlatformId, PlatformFault)>,
    cache: bool,
    decode: bool,
    superblocks: bool,
    machine_pool: bool,
    parallel_frontend: bool,
    prefix_pool: Option<Arc<PrefixPool>>,
    artifact_store: Option<Arc<ArtifactStore>>,
    bisect: bool,
    checkers: Vec<TraceAssertion>,
    monitor_capacity: usize,
    observers: Vec<Box<dyn CampaignObserver>>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("envs", &self.envs.len())
            .field("scenarios", &self.scenarios.len())
            .field("platforms", &self.platforms)
            .field("workers", &self.workers)
            .field("fuel", &self.fuel)
            .field("fault", &self.fault)
            .field("cache", &self.cache)
            .field("machine_pool", &self.machine_pool)
            .field("parallel_frontend", &self.parallel_frontend)
            .field("prefix_pool", &self.prefix_pool.is_some())
            .field("artifact_store", &self.artifact_store.is_some())
            .field("bisect", &self.bisect)
            .field("checkers", &self.checkers.len())
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

impl Campaign {
    /// An empty campaign: all six platforms, machine-derived worker
    /// count, default fuel, build cache enabled.
    pub fn new() -> Self {
        Self {
            envs: Vec::new(),
            scenarios: Vec::new(),
            platforms: PlatformId::ALL.to_vec(),
            workers: default_workers(),
            fuel: advm_sim::DEFAULT_FUEL,
            fault: None,
            cache: true,
            decode: true,
            superblocks: true,
            machine_pool: true,
            parallel_frontend: true,
            prefix_pool: None,
            artifact_store: None,
            bisect: false,
            checkers: Vec::new(),
            monitor_capacity: DEFAULT_MONITOR_CAPACITY,
            observers: Vec::new(),
        }
    }

    /// Bridges from the legacy [`RegressionConfig`]: same environments,
    /// platforms, worker count, fault and fuel.
    ///
    /// [`RegressionConfig`]: crate::regression::RegressionConfig
    pub fn from_config(
        envs: &[ModuleTestEnv],
        config: &crate::regression::RegressionConfig,
    ) -> Self {
        let mut campaign = Self::new()
            .envs(envs.iter().cloned())
            .platforms(config.platforms.iter().copied())
            .workers(config.workers)
            .fuel(config.fuel);
        if let Some((platform, fault)) = config.fault {
            campaign = campaign.fault(platform, fault);
        }
        campaign
    }

    /// Adds one environment.
    pub fn env(mut self, env: ModuleTestEnv) -> Self {
        self.envs.push((env, None));
        self
    }

    /// Adds environments.
    pub fn envs(mut self, envs: impl IntoIterator<Item = ModuleTestEnv>) -> Self {
        self.envs.extend(envs.into_iter().map(|e| (e, None)));
        self
    }

    /// Adds one environment whose runs carry explicit scenario
    /// provenance — used by generated workloads that materialise their
    /// own environments (e.g. fuzz programs) rather than going through
    /// [`Campaign::scenario`].
    pub fn env_with_meta(mut self, env: ModuleTestEnv, meta: ScenarioMeta) -> Self {
        self.envs.push((env, Some(Arc::new(meta))));
        self
    }

    /// Adds one generated scenario. The campaign materialises it into a
    /// synthetic environment (see [`crate::stimulus::scenario_env`])
    /// named after the scenario; its runs carry the scenario's
    /// provenance in [`TestRun::scenario`] and the report's JSON.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Adds generated scenarios (e.g. a whole
    /// [`StimulusPlan`](advm_gen::StimulusPlan) batch).
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.scenarios.extend(scenarios);
        self
    }

    /// Replaces the target platforms (default: all six).
    pub fn platforms(mut self, platforms: impl IntoIterator<Item = PlatformId>) -> Self {
        self.platforms = platforms.into_iter().collect();
        self
    }

    /// Targets a single platform.
    pub fn platform(self, platform: PlatformId) -> Self {
        self.platforms(std::iter::once(platform))
    }

    /// Sets the worker-thread count (minimum 1; default: the machine's
    /// available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-run instruction budget.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Injects a hardware fault into one platform (divergence
    /// experiments).
    pub fn fault(mut self, platform: PlatformId, fault: PlatformFault) -> Self {
        self.fault = Some((platform, fault));
        self
    }

    /// Enables or disables the content-keyed build cache (default:
    /// enabled). Disabling forces every job to assemble its own image —
    /// the uncached baseline the benches compare against.
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache = enabled;
        self
    }

    /// Enables or disables the predecoded-instruction cache (default:
    /// enabled). Disabling skips both the shared predecode artifacts and
    /// every platform's runtime decode cache, re-decoding each fetched
    /// word — the pre-refactor simulation baseline. Verdicts, matrices
    /// and divergences are identical either way.
    pub fn decode_cache(mut self, enabled: bool) -> Self {
        self.decode = enabled;
        self
    }

    /// Enables or disables the superblock dispatch tier on every run
    /// (default: enabled). Purely a performance knob: block-mode and
    /// per-instruction execution are architecturally identical, so
    /// verdicts, traces and digests never depend on it — disabling is
    /// useful for differential testing and for isolating the per-word
    /// path.
    pub fn superblocks(mut self, enabled: bool) -> Self {
        self.superblocks = enabled;
        self
    }

    /// Enables or disables worker-local machine pooling (default:
    /// enabled). A pooled worker keeps one constructed [`Platform`] per
    /// (platform, derivative, injected fault) and resets it through the
    /// snapshot `restore` path instead of rebuilding the whole SoC —
    /// bus, peripherals, decode cache — for every job. Purely a
    /// performance knob: a restored machine is byte-identical to a
    /// freshly constructed one, so verdicts, traces, divergences and
    /// report JSON never depend on it. Runs with armed checkers always
    /// construct fresh machines (snapshots do not carry the MMIO
    /// monitor), as do prefix-pool forks, which have their own reuse
    /// path.
    ///
    /// ```
    /// use advm::campaign::Campaign;
    /// use advm::env::{EnvConfig, ModuleTestEnv, TestCell};
    /// use advm_soc::{DerivativeId, PlatformId};
    ///
    /// # fn main() -> Result<(), advm::campaign::CampaignError> {
    /// let env = ModuleTestEnv::new(
    ///     "PAGE",
    ///     EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
    ///     vec![TestCell::new(
    ///         "TEST_SMOKE",
    ///         "passes everywhere",
    ///         ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
    ///     )],
    /// );
    /// let pooled = Campaign::new().env(env.clone()).run()?;
    /// let fresh = Campaign::new().env(env).machine_pool(false).run()?;
    /// // Pooling is perf-only: every verdict matches fresh construction.
    /// assert_eq!(pooled.total(), fresh.total());
    /// assert_eq!(pooled.passed(), fresh.passed());
    /// # Ok(())
    /// # }
    /// ```
    pub fn machine_pool(mut self, enabled: bool) -> Self {
        self.machine_pool = enabled;
        self
    }

    /// Enables or disables the parallel assembly front-end (default:
    /// enabled). When enabled, the build phase claims distinct image
    /// builds off the worker pool before execution starts, so a
    /// cold-cache campaign (every program unique — the fuzz/explore
    /// shape, and a service's fresh-traffic shape) assembles across all
    /// workers instead of serialising builds behind the first executing
    /// job. Disabling runs the same build phase on the calling thread.
    /// Either way, build errors are attributed to the first failing job
    /// in plan order — never to whichever worker parsed first — and
    /// images are byte-identical.
    pub fn parallel_frontend(mut self, enabled: bool) -> Self {
        self.parallel_frontend = enabled;
        self
    }

    /// Attaches a shared [`PrefixPool`]: runs fork from a shared
    /// fault-free prefix snapshot whenever that is provably
    /// byte-identical to running from reset, skipping the prefix's
    /// re-execution. Requires the build cache (the pool keys on content
    /// keys); with the cache disabled the pool is ignored. Verdicts,
    /// matrices and divergences are identical with or without a pool —
    /// only the `prefix_saved`/`forked_runs` perf counters and wall
    /// time change.
    pub fn prefix_pool(mut self, pool: Arc<PrefixPool>) -> Self {
        self.prefix_pool = Some(pool);
        self
    }

    /// Attaches a shared [`ArtifactStore`]: build slots (images and
    /// their predecode artifacts, the ES ROM) and prefix snapshots are
    /// looked up in — and retained by — the store, so identical content
    /// keys are reused *across* campaigns sharing the store (a resident
    /// daemon's warm runs skip assembly entirely). Requires the build
    /// cache; with the cache disabled the store is ignored. Reuse is
    /// perf-only: verdicts, matrices, divergences and the report-level
    /// `cache_hits`/`unique_builds` counters are identical with or
    /// without a store — only the
    /// [`artifact_hits`](CampaignPerf::artifact_hits) perf counter and
    /// wall time change. The store's own [`PrefixPool`] is used unless
    /// [`Campaign::prefix_pool`] set an explicit one.
    pub fn artifact_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.artifact_store = Some(store);
        self
    }

    /// Enables divergence bisection: for every divergent test, the
    /// sealed report's [`DivergenceReport::bisection`] pinpoints the
    /// first retired instruction at which the divergent platform's
    /// architectural state departs from the majority side
    /// (snapshot-powered binary search, see
    /// [`advm_sim::bisect_divergence`]).
    pub fn bisect(mut self, enabled: bool) -> Self {
        self.bisect = enabled;
        self
    }

    /// Arms mined [`TraceAssertion`] checkers on every run: each job
    /// executes with the per-platform MMIO monitor enabled and its
    /// captured trace is evaluated against every checker after the run.
    /// Violations surface as [`CampaignEvent::CheckerViolation`] events
    /// and in [`CampaignReport::checker_violations`] — independently of
    /// the differential pass/fail verdict, which cannot see
    /// MMIO-sink-only symptoms.
    ///
    /// Checked runs never fork from a [`PrefixPool`] snapshot (snapshots
    /// do not carry the monitor), so arming checkers trades the prefix
    /// optimisation for observability; verdicts are unaffected.
    pub fn checkers(mut self, checkers: impl IntoIterator<Item = TraceAssertion>) -> Self {
        self.checkers = checkers.into_iter().collect();
        self
    }

    /// Sets the MMIO monitor ring capacity used when checkers are armed
    /// (default [`DEFAULT_MONITOR_CAPACITY`]). Mining and checking must
    /// use the same capacity; see the constant's docs.
    ///
    /// A capacity of `0` is honoured, not clamped: every transaction is
    /// counted as dropped, and the truncation-skip rule makes every
    /// checker pass vacuously rather than fire spurious violations.
    pub fn monitor_capacity(mut self, capacity: usize) -> Self {
        self.monitor_capacity = capacity;
        self
    }

    /// Attaches an observer; every [`CampaignEvent`] streams to it.
    pub fn observe(mut self, observer: impl CampaignObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Plans the job graph and runs it on the worker pool.
    ///
    /// Assembly happens inside the pool, deduplicated by the build
    /// cache; results stream to observers; the sealed
    /// [`CampaignReport`] indexes every run.
    ///
    /// # Errors
    ///
    /// [`CampaignError::NoEnvironments`] / [`CampaignError::NoPlatforms`]
    /// for an unrunnable plan, [`CampaignError::Build`] for the first
    /// (in job order) assembler or link failure. Execution failures are
    /// results, not errors.
    pub fn run(self) -> Result<CampaignReport, CampaignError> {
        if self.envs.is_empty() && self.scenarios.is_empty() {
            return Err(CampaignError::NoEnvironments);
        }
        if self.platforms.is_empty() {
            return Err(CampaignError::NoPlatforms);
        }
        let phase_started = Instant::now();

        // Materialise generated scenarios into synthetic environments;
        // their runs carry the scenario's provenance. Names are deduped
        // against the hand-built envs and against each other — separately
        // planned batches can mint the same engine names (`CR_000`, …),
        // and a colliding env name would silently merge report cells.
        let mut planned: Vec<(ModuleTestEnv, Option<Arc<ScenarioMeta>>)> = self.envs.clone();
        let mut used_names: std::collections::HashSet<String> =
            planned.iter().map(|(e, _)| e.name().to_owned()).collect();
        for s in &self.scenarios {
            let mut scenario = s.clone();
            if used_names.contains(scenario.name()) {
                let base = scenario.name().to_owned();
                let mut n = 1;
                let mut candidate = format!("{base}_{n}");
                while used_names.contains(&candidate) {
                    n += 1;
                    candidate = format!("{base}_{n}");
                }
                scenario = scenario.with_name(candidate);
            }
            used_names.insert(scenario.name().to_owned());
            planned.push((
                crate::stimulus::scenario_env(&scenario),
                Some(Arc::new(scenario.meta().clone())),
            ));
        }

        // Plan: generate per-(env, platform) abstraction layers and the
        // job list. Source *generation* is cheap string work and stays
        // serial; source *assembly* is the hot path and moves to the
        // workers below.
        let mut jobs: Vec<Job> = Vec::new();
        // Local slot maps memoise one store lookup per distinct key per
        // campaign, so the store's hit/miss counters measure *cross*-
        // campaign reuse, never within-campaign re-requests.
        let mut slots: HashMap<u64, (ImageSlot, bool)> = HashMap::new();
        let mut es_slots: HashMap<u64, EsSlot> = HashMap::new();
        let mut cache_hits = 0;
        let mut artifact_hits: u64 = 0;
        let store = self
            .cache
            .then_some(self.artifact_store.as_deref())
            .flatten();
        for (env, scenario) in &planned {
            // Per-env invariants: the ES ROM source and the derivative
            // model depend only on derivative/ES release, never on the
            // target platform the loop below re-targets to.
            let es_source: Arc<str> = es_rom_source(env).into();
            let derivative = Arc::new(Derivative::from_id(env.config().derivative));
            let shared_es_slot = self.cache.then(|| {
                let es_key = fnv1a(0, es_source.as_bytes());
                Arc::clone(es_slots.entry(es_key).or_insert_with(|| match store {
                    Some(store) => store.es_slot(es_key),
                    None => EsSlot::default(),
                }))
            });
            // Platform-invariant fingerprints: one pass over each cell's
            // sources, reused by every target platform below.
            let fingerprints: Vec<CellFingerprint> = if self.cache {
                env.cells()
                    .iter()
                    .map(|cell| {
                        unit_sources(env, cell.id())
                            .map(|sources| CellFingerprint::new(&sources, &es_source))
                            .map_err(|source| CampaignError::Build {
                                env: env.name().to_owned(),
                                test_id: cell.id().to_owned(),
                                platform: env.config().platform,
                                source,
                            })
                    })
                    .collect::<Result<_, _>>()?
            } else {
                Vec::new()
            };
            for &platform in &self.platforms {
                let mut ported = env.clone();
                ported.reconfigure(EnvConfig {
                    platform,
                    ..env.config()
                });
                let fault = match self.fault {
                    Some((p, f)) if p == platform => f,
                    _ => PlatformFault::None,
                };
                for (cell_idx, cell) in ported.cells().iter().enumerate() {
                    let sources = unit_sources(&ported, cell.id()).map_err(|source| {
                        CampaignError::Build {
                            env: ported.name().to_owned(),
                            test_id: cell.id().to_owned(),
                            platform,
                            source,
                        }
                    })?;
                    let content_key = self
                        .cache
                        .then(|| fingerprints[cell_idx].content_key(ported.globals_text()));
                    let (slot, planned_hit) = match content_key {
                        Some(key) => match slots.entry(key) {
                            std::collections::hash_map::Entry::Occupied(e) => {
                                // Within-campaign hit: keeps its
                                // store-independent report semantics.
                                cache_hits += 1;
                                (Arc::clone(&e.get().0), true)
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                // First job of this key: consult the
                                // store (a hit there means another
                                // campaign already built — or is
                                // building — this image).
                                let (slot, store_hit) = match store {
                                    Some(store) => store.image_slot(key),
                                    None => (ImageSlot::default(), false),
                                };
                                artifact_hits += u64::from(store_hit);
                                let (slot, _) = e.insert((slot, store_hit));
                                (Arc::clone(slot), store_hit)
                            }
                        },
                        None => (Arc::default(), false),
                    };
                    jobs.push(Job {
                        env_name: ported.name().to_owned(),
                        test_id: cell.id().to_owned(),
                        platform,
                        scenario: scenario.clone(),
                        sources,
                        es_source: Arc::clone(&es_source),
                        derivative: Arc::clone(&derivative),
                        fault,
                        slot,
                        // Without the cache every job assembles its own
                        // ES ROM too, matching the pre-redesign baseline.
                        es_slot: shared_es_slot.clone().unwrap_or_default(),
                        planned_hit,
                        content_key,
                    });
                }
            }
        }
        let unique_builds = jobs.len() - cache_hits;
        let workers = self.workers.min(jobs.len().max(1));

        // Event dispatch: with no observers (the common library case)
        // events are neither constructed nor serialized on the lock.
        let has_observers = !self.observers.is_empty();
        let observers = Mutex::new(self.observers);
        let emit = |make: &dyn Fn() -> CampaignEvent| {
            if !has_observers {
                return;
            }
            let event = make();
            let mut observers = observers.lock();
            for observer in observers.iter_mut() {
                observer.on_event(&event);
            }
        };
        emit(&|| CampaignEvent::Started {
            jobs: jobs.len(),
            unique_builds,
            workers,
        });

        // ---- Build phase ----
        // Every distinct image slot is filled here, before execution
        // starts: on the worker pool when the parallel front-end is
        // enabled, on the calling thread otherwise. Filling every slot
        // (rather than aborting on the first failure) is what makes
        // error attribution deterministic: the error reported below is
        // the first failing job in *plan* order, never whichever worker
        // happened to parse first.
        let build_tasks: Vec<usize> = {
            let mut seen = std::collections::HashSet::new();
            (0..jobs.len())
                .filter(|&index| seen.insert(Arc::as_ptr(&jobs[index].slot)))
                .collect()
        };
        let build_slot = |index: usize| {
            let job = &jobs[index];
            job.slot.get_or_init(|| job.build(self.decode));
        };
        if self.parallel_frontend && workers > 1 && build_tasks.len() > 1 {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers.min(build_tasks.len()) {
                    scope.spawn(|| loop {
                        let task = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&index) = build_tasks.get(task) else {
                            break;
                        };
                        build_slot(index);
                    });
                }
            });
        } else {
            build_tasks.iter().copied().for_each(build_slot);
        }
        for job in &jobs {
            let Some(Err(source)) = job.slot.get() else {
                continue;
            };
            // Terminate the event stream even though the campaign
            // errors: builds fail before anything executes, so the
            // stream records the failing job and an empty completion.
            emit(&|| CampaignEvent::JobStarted {
                env: job.env_name.clone(),
                test_id: job.test_id.clone(),
                platform: job.platform,
            });
            emit(&|| CampaignEvent::JobFailed {
                env: job.env_name.clone(),
                test_id: job.test_id.clone(),
                platform: job.platform,
                error: source.to_string(),
            });
            emit(&|| CampaignEvent::Finished {
                total: 0,
                passed: 0,
                failed: 0,
                cache_hits,
            });
            return Err(CampaignError::Build {
                env: job.env_name.clone(),
                test_id: job.test_id.clone(),
                platform: job.platform,
                source: source.clone(),
            });
        }
        let build_wall = phase_started.elapsed();

        // ---- Execution phase ----
        // An explicit pool wins; otherwise an attached store lends its
        // own, so prefix snapshots also persist across campaigns.
        let prefix_pool = self
            .prefix_pool
            .as_deref()
            .or_else(|| store.map(|s| s.prefix_pool().as_ref()));
        // Workers claim jobs in chunks — one atomic increment and one
        // results-lock per chunk, not per job — sized so every worker
        // still gets several claims for tail balance.
        let next = AtomicUsize::new(0);
        let chunk = (jobs.len() / (workers * 4)).clamp(1, 32);
        let results: Mutex<Vec<Option<TestRun>>> = Mutex::new(vec![None; jobs.len()]);
        // Violations are collected per job index and flattened in job
        // order after the pool drains, so the sealed report (and its
        // JSON) is byte-identical for any worker count.
        let violations_by_job: Mutex<Vec<Vec<(String, String)>>> =
            Mutex::new(vec![Vec::new(); jobs.len()]);
        let prefix_saved = AtomicU64::new(0);
        let forked_runs = AtomicU64::new(0);
        // Per-job event batches, drained strictly in plan order: each
        // worker deposits a finished job's events and flushes whatever
        // prefix of jobs is now complete. Observers see the same
        // deterministic stream at every worker count, and workers never
        // contend on the observer lock mid-job.
        struct EventDrain {
            next: usize,
            ready: Vec<Option<Vec<CampaignEvent>>>,
        }
        let drain = Mutex::new(EventDrain {
            next: 0,
            ready: vec![None; jobs.len()],
        });
        let deposit = |index: usize, batch: Vec<CampaignEvent>| {
            let mut drain = drain.lock();
            drain.ready[index] = Some(batch);
            let mut flush = drain.next;
            while let Some(slot) = drain.ready.get_mut(flush) {
                let Some(batch) = slot.take() else { break };
                flush += 1;
                let mut observers = observers.lock();
                for event in &batch {
                    for observer in observers.iter_mut() {
                        observer.on_event(event);
                    }
                }
            }
            drain.next = flush;
        };
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Worker-local machine pool: each (platform,
                    // derivative, fault) is constructed once and
                    // pristine-restored per job (see
                    // [`Campaign::machine_pool`]).
                    let mut machines = self.machine_pool.then(MachinePool::default);
                    let mut claimed: Vec<(usize, TestRun)> = Vec::with_capacity(chunk);
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs.len() {
                            break;
                        }
                        let end = (start + chunk).min(jobs.len());
                        // Execute the chunk machine-major: the plan
                        // interleaves platforms per env, so a pooled
                        // worker walking it in order would cycle its
                        // whole pool every job and thrash the machines
                        // through cache. Grouping by platform keeps
                        // consecutive jobs on one pooled machine.
                        // Results, violations and events all stay keyed
                        // by plan index — and the event drain flushes
                        // strictly in plan order — so every observable
                        // output is identical at any execution order.
                        let mut order: Vec<usize> = (start..end).collect();
                        if machines.is_some() {
                            order.sort_by_key(|&i| jobs[i].platform.code());
                        }
                        for index in order {
                            let job = &jobs[index];
                            let prebuilt = job
                                .slot
                                .get()
                                .expect("build phase fills every slot")
                                .as_ref()
                                .expect("build errors abort before execution");
                            let mut batch = Vec::new();
                            if has_observers {
                                batch.push(CampaignEvent::JobStarted {
                                    env: job.env_name.clone(),
                                    test_id: job.test_id.clone(),
                                    platform: job.platform,
                                });
                                batch.push(CampaignEvent::JobBuilt {
                                    env: job.env_name.clone(),
                                    test_id: job.test_id.clone(),
                                    platform: job.platform,
                                    cache_hit: job.planned_hit,
                                });
                            }
                            let (result, violations) = if self.checkers.is_empty() {
                                let result = execute_job(
                                    job,
                                    prebuilt,
                                    &ExecCtx {
                                        fuel: self.fuel,
                                        superblocks: self.superblocks,
                                        prefix_pool,
                                        prefix_saved: &prefix_saved,
                                        forked_runs: &forked_runs,
                                    },
                                    machines.as_mut(),
                                );
                                (result, Vec::new())
                            } else {
                                execute_checked(
                                    job,
                                    prebuilt,
                                    self.fuel,
                                    self.superblocks,
                                    &self.checkers,
                                    self.monitor_capacity,
                                )
                            };
                            if has_observers {
                                for (checker, detail) in &violations {
                                    batch.push(CampaignEvent::CheckerViolation {
                                        env: job.env_name.clone(),
                                        test_id: job.test_id.clone(),
                                        platform: job.platform,
                                        checker: checker.clone(),
                                        detail: detail.clone(),
                                    });
                                }
                                batch.push(CampaignEvent::JobFinished {
                                    env: job.env_name.clone(),
                                    test_id: job.test_id.clone(),
                                    platform: job.platform,
                                    passed: result.passed(),
                                });
                                deposit(index, batch);
                            }
                            if !violations.is_empty() {
                                violations_by_job.lock()[index] = violations;
                            }
                            claimed.push((
                                index,
                                TestRun {
                                    env: job.env_name.clone(),
                                    test_id: job.test_id.clone(),
                                    platform: job.platform,
                                    result,
                                    scenario: job.scenario.as_deref().cloned(),
                                },
                            ));
                        }
                        let mut guard = results.lock();
                        for (index, run) in claimed.drain(..) {
                            guard[index] = Some(run);
                        }
                    }
                });
            }
        });

        let wall = started.elapsed();
        let seal_started = Instant::now();
        let runs: Vec<TestRun> = results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every job produces a result"))
            .collect();
        let mut report = CampaignReport::new(runs, cache_hits, unique_builds, wall);
        report.perf.build_wall = build_wall;
        report.perf.exec_wall = wall;
        report.perf.prefix_saved = prefix_saved.into_inner();
        report.perf.forked_runs = forked_runs.into_inner();
        report.perf.artifact_hits = artifact_hits;
        report.checkers_armed = self.checkers.len();
        report.violations = violations_by_job
            .into_inner()
            .into_iter()
            .enumerate()
            .flat_map(|(index, per_job)| {
                let job = &jobs[index];
                per_job
                    .into_iter()
                    .map(move |(checker, detail)| CheckerViolation {
                        env: job.env_name.clone(),
                        test_id: job.test_id.clone(),
                        platform: job.platform,
                        checker,
                        detail,
                    })
            })
            .collect();
        if self.bisect {
            for (test, divergence) in report.divergences.iter_mut() {
                divergence.bisection =
                    bisect_test(self.fuel, self.superblocks, test, divergence, &jobs);
            }
        }
        report.perf.report_wall = seal_started.elapsed();
        for (test, divergence) in report.divergences() {
            emit(&|| CampaignEvent::DivergenceDetected {
                test: test.clone(),
                divergent: divergence.divergent.clone(),
            });
        }
        emit(&|| CampaignEvent::Finished {
            total: report.total(),
            passed: report.passed(),
            failed: report.failed(),
            cache_hits: report.cache_hits(),
        });
        Ok(report)
    }
}

/// A worker-local pool of constructed machines, keyed by everything
/// that determines a pristine platform: target platform, derivative
/// model and injected fault. A `Derivative` is fully determined by its
/// [`DerivativeId`] (campaigns always build them via
/// [`Derivative::from_id`]), so the id is a sound key. Reused machines
/// are reset through the snapshot restore path instead of
/// reconstructing the whole SoC per job.
///
/// The pool deliberately holds ONE machine: keeping a machine per
/// platform resident (6+ machines × several MB of memories, decode
/// slots and block maps) measurably regressed throughput — every job
/// hopped to a cache-cold machine, while the unpooled path kept
/// re-using one hot allocation. A single slot, combined with
/// machine-major chunk execution, gets both: consecutive same-platform
/// jobs share one hot machine, and a platform switch recycles the old
/// machine's freshly freed memory into the new one.
#[derive(Default)]
struct MachinePool {
    slot: Option<MachineSlot>,
}

struct MachineSlot {
    key: (PlatformId, DerivativeId, PlatformFault),
    machine: Platform,
    pristine: SaveState,
}

/// The per-campaign knobs and counters [`execute_job`] needs, bundled
/// so workers hand one context down instead of seven loose arguments.
struct ExecCtx<'a> {
    fuel: u64,
    superblocks: bool,
    prefix_pool: Option<&'a PrefixPool>,
    prefix_saved: &'a AtomicU64,
    forked_runs: &'a AtomicU64,
}

/// Runs one job — forked from a shared prefix snapshot when a pool is
/// attached and the fork is provably byte-identical to running from
/// reset; otherwise from reset, on a pooled pristine-restored machine
/// when the worker carries one, on a freshly constructed platform when
/// not.
fn execute_job(
    job: &Job,
    prebuilt: &Prebuilt,
    ctx: &ExecCtx<'_>,
    machines: Option<&mut MachinePool>,
) -> RunResult {
    let ExecCtx {
        fuel,
        superblocks,
        prefix_pool: pool,
        prefix_saved,
        forked_runs,
    } = *ctx;
    if let (Some(pool), Some(key)) = (pool, job.content_key) {
        let slot = pool.slot(key, job.platform);
        let entry = slot.get_or_init(|| {
            // The shared prefix is always fault-free: every run of the
            // campaign (whatever its fault) forks from the same
            // machine, and per-fault safety is decided below.
            let budget = pool.budget().min(fuel);
            if budget == 0 {
                return None;
            }
            let mut prefix = Platform::new(job.platform, &job.derivative);
            prefix.set_fuel(budget);
            load_into(&mut prefix, prebuilt, superblocks);
            let result = prefix.run();
            // A prefix that ended for any reason other than budget
            // exhaustion finished the test: nothing left to fork.
            (result.end == EndReason::OutOfFuel)
                .then(|| PrefixEntry::capture(&prefix, result.insns, result.dbg_markers))
        });
        // Fork-safety is checked on the captured mask so an unsafe
        // fault falls back to from-reset without ever deserializing
        // the snapshot.
        if let Some(entry) = entry.as_ref().filter(|e| e.fork_safe(job.fault)) {
            let continuation = |platform: &mut Platform| -> RunResult {
                platform.set_fuel(fuel);
                // The superblock knob is runtime config, never part of
                // the snapshot: re-apply it to the restored machine.
                platform.set_superblocks(superblocks);
                if let Some(decoded) = &prebuilt.decoded {
                    // The snapshot restores decode *stats* but not
                    // slots; re-seed from the shared artifact so the
                    // continuation stays hot.
                    platform.bus().seed_decoded(decoded);
                }
                let mut result = platform.run();
                // Markers are collected per run() call; the
                // continuation inherits the prefix's.
                let mut markers = entry.dbg_markers.clone();
                markers.append(&mut result.dbg_markers);
                result.dbg_markers = markers;
                prefix_saved.fetch_add(entry.retired, Ordering::Relaxed);
                forked_runs.fetch_add(1, Ordering::Relaxed);
                result
            };
            // Forked runs always build a fresh machine: a fork pays a
            // full snapshot decode whichever machine receives it, so a
            // pooled machine would save only the (cheap) construction
            // while keeping an extra multi-MB machine resident — which
            // measurably slowed every run sharing the worker's cache.
            // The pool serves the from-reset paths below instead.
            if let Ok(mut platform) =
                Platform::from_snapshot(&entry.state, &job.derivative, job.fault)
            {
                return continuation(&mut platform);
            }
        }
    }
    if let Some(machines) = machines {
        // Pooled from-reset path: restore the pristine snapshot taken
        // at construction instead of rebuilding the SoC. Restoring is
        // byte-exact (memories, peripherals, decode state), so the run
        // is indistinguishable from one on a fresh machine.
        let (machine, pristine) = pooled_machine(machines, job);
        machine
            .restore_pristine(&pristine)
            .expect("a machine always accepts its own pristine snapshot");
        machine.set_fuel(fuel);
        load_into(machine, prebuilt, superblocks);
        return machine.run();
    }
    let mut platform = Platform::with_fault(job.platform, &job.derivative, job.fault);
    platform.set_fuel(fuel);
    load_into(&mut platform, prebuilt, superblocks);
    platform.run()
}

/// The worker-local pooled machine (and its pristine snapshot) for a
/// job's (platform, derivative, fault), constructing it on first use.
fn pooled_machine<'p>(machines: &'p mut MachinePool, job: &Job) -> (&'p mut Platform, SaveState) {
    let key = (job.platform, job.derivative.id(), job.fault);
    if machines.slot.as_ref().is_none_or(|s| s.key != key) {
        // Drop the old machine *before* constructing the new one so the
        // allocator hands its still-hot memory straight back.
        machines.slot = None;
        let machine = Platform::with_fault(job.platform, &job.derivative, job.fault);
        let pristine = machine.snapshot();
        machines.slot = Some(MachineSlot {
            key,
            machine,
            pristine,
        });
    }
    let slot = machines.slot.as_mut().expect("slot was just filled");
    (&mut slot.machine, slot.pristine.clone())
}

/// Runs one job from reset with the MMIO monitor armed and evaluates
/// every mined checker on the captured trace.
///
/// Checked runs never fork from a prefix snapshot: snapshots carry only
/// the serialized machine, not the monitor (a perf-neutral observability
/// ring), so a forked run would miss the prefix's MMIO traffic and could
/// mis-anchor a temporal checker. From-reset execution with the same
/// monitor capacity as the mining pass keeps mining and checking inputs
/// identical, which is what guarantees zero spurious violations on
/// fault-free runs.
fn execute_checked(
    job: &Job,
    prebuilt: &Prebuilt,
    fuel: u64,
    superblocks: bool,
    checkers: &[TraceAssertion],
    capacity: usize,
) -> (RunResult, Vec<(String, String)>) {
    let mut platform = Platform::with_fault(job.platform, &job.derivative, job.fault);
    platform.set_fuel(fuel);
    platform.enable_mmio_trace(capacity);
    load_into(&mut platform, prebuilt, superblocks);
    let result = platform.run();
    let mut violations = Vec::new();
    if let Some(trace) = platform.mmio_trace() {
        for checker in checkers {
            let name = checker.name();
            for detail in checker.check(trace) {
                violations.push((name.clone(), detail));
            }
        }
    }
    (result, violations)
}

/// Loads a built image (and its predecode artifact, when enabled) into
/// a fresh platform, applying the campaign's superblock knob.
fn load_into(platform: &mut Platform, prebuilt: &Prebuilt, superblocks: bool) {
    platform.set_superblocks(superblocks);
    match &prebuilt.decoded {
        Some(decoded) => platform.load_prebuilt(&prebuilt.image, decoded),
        None => {
            platform.set_decode_cache(false);
            platform.load_image(&prebuilt.image);
        }
    }
}

/// Bisects one divergent test: re-runs the first divergent platform
/// against a majority-side anchor (the golden model when present) under
/// snapshot binary search, yielding the first retired instruction at
/// which their architectural states depart.
fn bisect_test(
    fuel: u64,
    superblocks: bool,
    test: &str,
    divergence: &DivergenceReport,
    jobs: &[Job],
) -> Option<FirstDivergence> {
    let (env, test_id) = test.split_once('/')?;
    let target = *divergence.divergent.first()?;
    let candidates: Vec<&Job> = jobs
        .iter()
        .filter(|j| j.env_name == env && j.test_id == test_id)
        .collect();
    let anchor = candidates
        .iter()
        .find(|j| {
            j.platform == PlatformId::GoldenModel && !divergence.divergent.contains(&j.platform)
        })
        .or_else(|| {
            candidates
                .iter()
                .find(|j| !divergence.divergent.contains(&j.platform))
        })?;
    let target = candidates.iter().find(|j| j.platform == target)?;
    let fresh = |job: &Job| -> Option<Platform> {
        let prebuilt = job.slot.get()?.as_ref().ok()?;
        let mut platform = Platform::with_fault(job.platform, &job.derivative, job.fault);
        platform.set_fuel(fuel);
        platform.enable_trace(16);
        load_into(&mut platform, prebuilt, superblocks);
        Some(platform)
    };
    let mut a = fresh(anchor)?;
    let mut b = fresh(target)?;
    bisect_divergence(&mut a, &mut b, fuel).ok().flatten()
}

#[cfg(test)]
mod tests {
    use advm_soc::DerivativeId;

    use crate::env::TestCell;

    use super::*;

    fn passing_cell(id: &str) -> TestCell {
        TestCell::new(
            id,
            "passes everywhere",
            ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
        )
    }

    fn failing_cell(id: &str) -> TestCell {
        TestCell::new(
            id,
            "always fails",
            ".INCLUDE Globals.inc\n_main:\n    LOAD ArgA, #9\n    CALL Base_Report_Fail\n    RETURN\n",
        )
    }

    fn env(cells: Vec<TestCell>) -> ModuleTestEnv {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            cells,
        )
    }

    #[test]
    fn full_matrix_runs_every_combination() {
        let e = env(vec![passing_cell("TEST_A"), passing_cell("TEST_B")]);
        let report = Campaign::new().env(e).run().unwrap();
        assert_eq!(report.total(), 2 * 6);
        assert_eq!(report.passed(), 12);
        assert!(report.divergences().is_empty());
        let matrix = report.matrix().to_string();
        assert!(matrix.contains("PAGE/TEST_A"), "{matrix}");
        assert!(matrix.contains("golden"), "{matrix}");
    }

    #[test]
    fn failures_counted_consistently() {
        let e = env(vec![passing_cell("TEST_A"), failing_cell("TEST_F")]);
        let report = Campaign::new()
            .env(e)
            .platform(PlatformId::GoldenModel)
            .run()
            .unwrap();
        assert_eq!(report.total(), 2);
        assert_eq!(report.passed(), 1);
        assert_eq!(report.failed(), 1);
        assert!((report.pass_rate() - 0.5).abs() < 1e-9);
        // Failing everywhere is consistent, not a divergence.
        assert!(report.divergences().is_empty());
    }

    /// A read-back test that exercises the page readback path — the
    /// cell that page-module faults visibly break.
    fn readback_cell() -> TestCell {
        TestCell::new(
            "TEST_READBACK",
            "page readback",
            "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #TEST1_TARGET_PAGE
    CALL Base_Select_Page
    LOAD ArgA, #TEST1_TARGET_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        )
    }

    #[test]
    fn injected_fault_shows_up_as_divergence() {
        let e = env(vec![readback_cell()]);
        let report = Campaign::new()
            .env(e)
            .fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne)
            .run()
            .unwrap();
        let divergences = report.divergences();
        assert_eq!(divergences.len(), 1, "exactly one divergent test");
        assert!(divergences[0].1.divergent.contains(&PlatformId::RtlSim));
    }

    #[test]
    fn parallel_and_serial_agree_including_cache_hits() {
        let e = env(vec![
            passing_cell("TEST_A"),
            failing_cell("TEST_F"),
            passing_cell("TEST_C"),
        ]);
        let serial = Campaign::new().env(e.clone()).workers(1).run().unwrap();
        let parallel = Campaign::new().env(e).workers(8).run().unwrap();
        assert_eq!(serial.total(), parallel.total());
        assert_eq!(serial.passed(), parallel.passed());
        assert_eq!(serial.cache_hits(), parallel.cache_hits());
        assert_eq!(serial.unique_builds(), parallel.unique_builds());
        // Same (env, test, platform) → same verdict, independent of order.
        for run in serial.runs() {
            let twin = parallel
                .run_of(&run.env, &run.test_id, run.platform)
                .expect("same job set");
            assert_eq!(twin.result.passed(), run.result.passed());
        }
    }

    #[test]
    fn cache_dedupes_platform_independent_cells() {
        // Golden model and RTL simulation share every abstraction-layer
        // knob, so a platform-independent cell builds once for both.
        let e = env(vec![passing_cell("TEST_A")]);
        let report = Campaign::new()
            .env(e.clone())
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .run()
            .unwrap();
        assert_eq!(report.total(), 2);
        assert_eq!(report.cache_hits(), 1);
        assert_eq!(report.unique_builds(), 1);

        // Disabling the cache forces per-job assembly.
        let uncached = Campaign::new()
            .env(e)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .cache(false)
            .run()
            .unwrap();
        assert_eq!(uncached.cache_hits(), 0);
        assert_eq!(uncached.unique_builds(), 2);
    }

    #[test]
    fn full_matrix_cache_hits_are_deterministic() {
        let e = env(vec![passing_cell("TEST_A"), passing_cell("TEST_B")]);
        let a = Campaign::new().env(e.clone()).workers(1).run().unwrap();
        let b = Campaign::new().env(e).workers(6).run().unwrap();
        // TEST_A and TEST_B have byte-identical sources, so they share
        // builds with each other on every platform; across platforms
        // only golden/RTL agree on every abstraction-layer knob. That
        // leaves one distinct build per knob set: 5 of 12 jobs.
        assert_eq!(a.unique_builds(), 5);
        assert_eq!(a.cache_hits(), 7);
        assert_eq!(a.cache_hits(), b.cache_hits());
        assert_eq!(a.unique_builds(), b.unique_builds());
    }

    #[test]
    fn decode_artifacts_shared_across_platforms_and_modes_agree() {
        // One platform-independent cell on golden + RTL: the build cache
        // dedupes to a single image, whose predecode artifact seeds both
        // platforms' decode caches — so both runs report preloaded slots
        // and the hot path hits.
        let e = env(vec![passing_cell("TEST_A")]);
        let cached = Campaign::new()
            .env(e.clone())
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .run()
            .unwrap();
        assert_eq!(cached.unique_builds(), 1);
        for run in cached.runs() {
            assert!(
                run.result.decode.preloaded > 0,
                "every run starts from the shared artifact: {:?}",
                run.result.decode
            );
            assert_eq!(
                run.result.decode.misses, 0,
                "predecode covers the whole image: {:?}",
                run.result.decode
            );
        }
        let perf = cached.perf();
        assert!(perf.instructions > 0);
        assert!(perf.decode_hits > 0);
        assert!(perf.decode_hit_rate() > 0.99, "{perf:?}");

        // Disabling the decode cache must not change any verdict.
        let uncached = Campaign::new()
            .env(e)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .decode_cache(false)
            .run()
            .unwrap();
        assert_eq!(uncached.perf().decode_hits, 0);
        assert_eq!(uncached.perf().instructions, perf.instructions);
        for run in cached.runs() {
            let twin = uncached
                .run_of(&run.env, &run.test_id, run.platform)
                .expect("same job set");
            assert_eq!(twin.result.passed(), run.result.passed());
            assert_eq!(twin.result.insns, run.result.insns);
            assert_eq!(twin.result.cycles, run.result.cycles);
        }
    }

    #[test]
    fn perf_block_appears_in_json() {
        let e = env(vec![passing_cell("TEST_A")]);
        let report = Campaign::new()
            .env(e)
            .platform(PlatformId::GoldenModel)
            .run()
            .unwrap();
        let json = report.to_json();
        assert!(json.contains("\"perf\":{\"instructions\":"), "{json}");
        assert!(json.contains("\"steps_per_sec\":"), "{json}");
        assert!(json.contains("\"decode_hit_rate\":"), "{json}");
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn forked_campaign_is_run_for_run_identical_to_from_reset() {
        let e = env(vec![
            passing_cell("TEST_A"),
            failing_cell("TEST_F"),
            readback_cell(),
        ]);
        let baseline = Campaign::new().env(e.clone()).run().unwrap();
        assert_eq!(baseline.perf().forked_runs, 0);
        assert_eq!(baseline.perf().prefix_saved, 0);

        // An 8-instruction prefix stops mid-preamble: every fault-free
        // run forks from the shared snapshot instead of re-resetting.
        let pool = Arc::new(PrefixPool::new(8));
        let forked = Campaign::new()
            .env(e)
            .prefix_pool(Arc::clone(&pool))
            .run()
            .unwrap();
        assert!(forked.perf().forked_runs > 0, "{:?}", forked.perf());
        assert!(forked.perf().prefix_saved > 0, "{:?}", forked.perf());
        assert!(!pool.is_empty());

        // Forking is perf-only: every observable per-run result is
        // byte-identical to the from-reset campaign.
        assert_eq!(forked.total(), baseline.total());
        assert_eq!(forked.perf().instructions, baseline.perf().instructions);
        for run in baseline.runs() {
            let twin = forked
                .run_of(&run.env, &run.test_id, run.platform)
                .expect("same job set");
            assert_eq!(twin.result.passed(), run.result.passed());
            assert_eq!(twin.result.insns, run.result.insns);
            assert_eq!(twin.result.cycles, run.result.cycles);
            assert_eq!(twin.result.dbg_markers, run.result.dbg_markers);
            assert_eq!(twin.result.console, run.result.console);
            assert_eq!(twin.result.uart_tx, run.result.uart_tx);
        }
        assert_eq!(
            forked.divergences().len(),
            baseline.divergences().len(),
            "forking must not invent or hide divergences"
        );
    }

    #[test]
    fn faulted_campaign_with_pool_keeps_its_divergence() {
        // The page fault's divergence survives prefix forking: the
        // faulted job either forks safely (prefix never touched the
        // page module) or silently falls back to from-reset.
        let e = env(vec![readback_cell()]);
        let pool = Arc::new(PrefixPool::new(8));
        let report = Campaign::new()
            .env(e)
            .fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne)
            .prefix_pool(pool)
            .run()
            .unwrap();
        let divergences = report.divergences();
        assert_eq!(divergences.len(), 1);
        assert!(divergences[0].1.divergent.contains(&PlatformId::RtlSim));
        assert!(report.perf().forked_runs > 0, "{:?}", report.perf());
    }

    #[test]
    fn bisect_pinpoints_first_divergent_step_in_report_and_json() {
        let e = env(vec![readback_cell()]);
        let report = Campaign::new()
            .env(e)
            .fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne)
            .bisect(true)
            .run()
            .unwrap();
        let divergences = report.divergences();
        assert_eq!(divergences.len(), 1);
        let bisection = divergences[0]
            .1
            .bisection
            .as_ref()
            .expect("bisect(true) fills the report");
        assert!(bisection.step > 0);
        assert_eq!(bisection.platform_a, PlatformId::GoldenModel);
        assert_eq!(bisection.platform_b, PlatformId::RtlSim);
        assert!(!bisection.insn_b.is_empty());

        let json = report.to_json();
        assert!(json.contains("\"ambiguous\":false"), "{json}");
        assert!(json.contains("\"bisection\":{\"step\":"), "{json}");
        assert!(json.contains("\"platform_b\":\"rtl\""), "{json}");
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn events_stream_in_order_with_deterministic_content() {
        let log = EventLog::new();
        let e = env(vec![passing_cell("TEST_A")]);
        let report = Campaign::new()
            .env(e)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(1)
            .observe(log.clone())
            .run()
            .unwrap();
        let events = log.events();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::Started {
                jobs: 2,
                unique_builds: 1,
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(CampaignEvent::Finished {
                total: 2,
                failed: 0,
                cache_hits: 1,
                ..
            })
        ));
        let built: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::JobBuilt { cache_hit, .. } => Some(*cache_hit),
                _ => None,
            })
            .collect();
        assert_eq!(built, vec![false, true], "second job reuses the build");
        assert_eq!(report.cache_hits(), 1);
    }

    #[test]
    fn build_error_is_structured() {
        let e = env(vec![TestCell::new(
            "TEST_BROKEN",
            "does not assemble",
            ".INCLUDE Globals.inc\n_main:\n    FROB d1\n    RETURN\n",
        )]);
        let log = EventLog::new();
        let err = Campaign::new()
            .env(e)
            .platform(PlatformId::GoldenModel)
            .observe(log.clone())
            .run()
            .unwrap_err();
        // The event stream still terminates on the error path.
        let events = log.events();
        assert!(matches!(
            events.last(),
            Some(CampaignEvent::Finished { .. })
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, CampaignEvent::JobFailed { .. })));
        match &err {
            CampaignError::Build {
                env,
                test_id,
                platform,
                ..
            } => {
                assert_eq!(env, "PAGE");
                assert_eq!(test_id, "TEST_BROKEN");
                assert_eq!(*platform, PlatformId::GoldenModel);
            }
            other => panic!("expected Build error, got {other:?}"),
        }
        assert!(err.to_string().contains("PAGE/TEST_BROKEN"));
    }

    #[test]
    fn empty_plans_are_rejected() {
        assert!(matches!(
            Campaign::new().run(),
            Err(CampaignError::NoEnvironments)
        ));
        let e = env(vec![passing_cell("TEST_A")]);
        assert!(matches!(
            Campaign::new().env(e).platforms([]).run(),
            Err(CampaignError::NoPlatforms)
        ));
    }

    #[test]
    fn scenario_campaign_carries_provenance() {
        use advm_gen::{ConstrainedRandom, GlobalsConstraints, ScenarioEngine};
        let plan = ScenarioEngine::new(11)
            .source(ConstrainedRandom::new(GlobalsConstraints::new(
                DerivativeId::Sc88A,
                PlatformId::GoldenModel,
            )))
            .batch(2)
            .plan()
            .unwrap();
        let report = Campaign::new()
            .scenarios(plan.scenarios().iter().cloned())
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .run()
            .unwrap();
        // 2 scenarios × 2 page cells × 2 platforms.
        assert_eq!(report.total(), 8);
        assert_eq!(report.failed(), 0, "{}", report.matrix());
        assert_eq!(report.scenarios().len(), 2);
        assert_eq!(report.scenarios()[0].name, "CR_000");
        for run in report.runs() {
            let meta = run
                .scenario
                .as_ref()
                .expect("scenario runs carry provenance");
            assert_eq!(meta.name, run.env);
            assert_eq!(meta.kind.name(), "constrained-random");
        }
        let json = report.to_json();
        assert!(
            json.contains("\"scenarios\":[{\"name\":\"CR_000\""),
            "{json}"
        );
        assert!(json.contains("\"scenario\":\"CR_001\""), "{json}");
    }

    #[test]
    fn colliding_scenario_names_across_batches_stay_distinct() {
        use advm_gen::{ConstrainedRandom, GlobalsConstraints, ScenarioEngine};
        // Two separately planned batches both mint CR_000; the campaign
        // must keep their envs, runs and provenance distinct rather than
        // silently merging report cells.
        let plan = |seed| {
            ScenarioEngine::new(seed)
                .source(ConstrainedRandom::new(GlobalsConstraints::new(
                    DerivativeId::Sc88A,
                    PlatformId::GoldenModel,
                )))
                .batch(1)
                .plan()
                .unwrap()
        };
        let report = Campaign::new()
            .scenarios(plan(1).into_scenarios())
            .scenarios(plan(2).into_scenarios())
            .platform(PlatformId::GoldenModel)
            .run()
            .unwrap();
        assert_eq!(report.total(), 4, "2 scenarios x 2 page cells");
        assert_eq!(report.scenarios().len(), 2);
        let names: Vec<&str> = report.scenarios().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["CR_000", "CR_000_1"]);
        // Both scenarios' seeds survive in the provenance.
        assert_ne!(report.scenarios()[0].seed, report.scenarios()[1].seed);
        assert!(report
            .run_of("CR_000_1", "TEST_SCN_PAGE_01", PlatformId::GoldenModel)
            .is_some());
    }

    #[test]
    fn scenarios_and_envs_mix_in_one_campaign() {
        use advm_gen::{ConstrainedRandom, GlobalsConstraints, ScenarioSource};
        let scenario = ConstrainedRandom::new(GlobalsConstraints::new(
            DerivativeId::Sc88A,
            PlatformId::GoldenModel,
        ))
        .draw(0, 5)
        .unwrap();
        let report = Campaign::new()
            .env(env(vec![passing_cell("TEST_A")]))
            .scenario(scenario)
            .platform(PlatformId::GoldenModel)
            .run()
            .unwrap();
        assert_eq!(report.total(), 3);
        let plain = report
            .run_of("PAGE", "TEST_A", PlatformId::GoldenModel)
            .unwrap();
        assert!(plain.scenario.is_none());
        assert_eq!(report.scenarios().len(), 1);
    }

    #[test]
    fn json_report_is_well_formed() {
        let e = env(vec![passing_cell("TEST_A"), failing_cell("TEST_F")]);
        let report = Campaign::new()
            .env(e)
            .platform(PlatformId::GoldenModel)
            .run()
            .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"total\":2"), "{json}");
        assert!(json.contains("\"passed\":1"), "{json}");
        assert!(json.contains("\"env\":\"PAGE\""), "{json}");
        assert!(json.contains("\"TEST_F\""), "{json}");
        assert!(json.contains("\"golden\":\"fail\""), "{json}");
        // Balanced braces/brackets — the cheap structural check.
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn content_key_tracks_referenced_alias_defines() {
        let sources = SourceSet::new()
            .with(GLOBALS_FILE, "")
            .with("test.asm", "_main:\n    MOV CallAddr, d1\n    RETURN\n");
        let fp = CellFingerprint::new(&sources, "");
        // `.DEFINE NAME value` lines put the name second; a changed alias
        // binding must change the key (equal keys must imply equal
        // images), while an unreferenced define must not.
        let a = fp.content_key("X .EQU 0x1\n.DEFINE CallAddr a12\n");
        let b = fp.content_key("X .EQU 0x2\n.DEFINE CallAddr a12\n");
        let c = fp.content_key("X .EQU 0x1\n.DEFINE CallAddr a10\n");
        assert_eq!(a, b, "unreferenced .EQU must not affect the key");
        assert_ne!(a, c, "referenced alias binding must affect the key");
    }

    #[test]
    fn content_key_follows_transitive_define_references() {
        let sources = SourceSet::new()
            .with(GLOBALS_FILE, "")
            .with("test.asm", "_main:\n    LOAD d1, #TIMEOUT\n    RETURN\n");
        let fp = CellFingerprint::new(&sources, "");
        // The unit references only TIMEOUT, but TIMEOUT's value is a
        // symbolic expression over POLL_LIMIT — a changed POLL_LIMIT
        // changes the emitted image, so it must change the key.
        let a = fp.content_key("TIMEOUT .EQU POLL_LIMIT\nPOLL_LIMIT .EQU 0x100\n");
        let b = fp.content_key("TIMEOUT .EQU POLL_LIMIT\nPOLL_LIMIT .EQU 0x200\n");
        assert_ne!(a, b, "transitively referenced define must affect the key");
    }

    #[test]
    fn json_escaping_handles_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    /// One exemplar of every event variant — the wire-format tests below
    /// must cover the whole enum (a new variant fails the match here).
    fn every_event() -> Vec<CampaignEvent> {
        let exemplar = |variant: &CampaignEvent| match variant {
            CampaignEvent::Started { .. }
            | CampaignEvent::JobStarted { .. }
            | CampaignEvent::JobBuilt { .. }
            | CampaignEvent::JobFinished { .. }
            | CampaignEvent::JobFailed { .. }
            | CampaignEvent::CheckerViolation { .. }
            | CampaignEvent::DivergenceDetected { .. }
            | CampaignEvent::Finished { .. } => {}
        };
        let events = vec![
            CampaignEvent::Started {
                jobs: 12,
                unique_builds: 5,
                workers: 4,
            },
            CampaignEvent::JobStarted {
                env: "PAGE".into(),
                test_id: "TEST_A".into(),
                platform: PlatformId::GoldenModel,
            },
            CampaignEvent::JobBuilt {
                env: "PAGE".into(),
                test_id: "TEST_A".into(),
                platform: PlatformId::RtlSim,
                cache_hit: true,
            },
            CampaignEvent::JobFinished {
                env: "PAGE".into(),
                test_id: "TEST_A".into(),
                platform: PlatformId::GateSim,
                passed: false,
            },
            CampaignEvent::JobFailed {
                env: "PAGE".into(),
                test_id: "TEST_\"Q\"".into(),
                platform: PlatformId::Accelerator,
                error: "unknown mnemonic \"FROB\"\nline 2".into(),
            },
            CampaignEvent::CheckerViolation {
                env: "FUZZ_0003".into(),
                test_id: "TEST_FUZZ_0003".into(),
                platform: PlatformId::RtlSim,
                checker: "readback[0xe0108&0x0000ffff]".into(),
                detail: "read 0x0 at cycle 41, expected 0x1234".into(),
            },
            CampaignEvent::DivergenceDetected {
                test: "PAGE/TEST_READBACK".into(),
                divergent: vec![PlatformId::RtlSim, PlatformId::Bondout],
            },
            CampaignEvent::Finished {
                total: 12,
                passed: 10,
                failed: 2,
                cache_hits: 7,
            },
        ];
        events.iter().for_each(exemplar);
        events
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for event in every_event() {
            let json = event.to_json();
            let back = CampaignEvent::from_json(&json).unwrap_or_else(|e| {
                panic!("{json} failed to parse back: {e}");
            });
            assert_eq!(back, event, "{json}");
            // The wire form is itself well-formed JSON with a type tag.
            let value = crate::wire::JsonValue::parse(&json).unwrap();
            assert_eq!(value.str_field("type").unwrap(), event.kind());
        }
    }

    #[test]
    fn event_wire_format_is_a_stable_contract() {
        // Golden strings: changing any of these breaks every deployed
        // NDJSON consumer, so a diff here must be a deliberate protocol
        // bump, not a refactor side-effect.
        let golden = [
            r#"{"type":"started","jobs":12,"unique_builds":5,"workers":4}"#,
            r#"{"type":"job_started","env":"PAGE","test":"TEST_A","platform":"golden"}"#,
            r#"{"type":"job_built","env":"PAGE","test":"TEST_A","platform":"rtl","cache_hit":true}"#,
            r#"{"type":"job_finished","env":"PAGE","test":"TEST_A","platform":"gate","passed":false}"#,
            r#"{"type":"job_failed","env":"PAGE","test":"TEST_\"Q\"","platform":"accel","error":"unknown mnemonic \"FROB\"\nline 2"}"#,
            r#"{"type":"checker_violation","env":"FUZZ_0003","test":"TEST_FUZZ_0003","platform":"rtl","checker":"readback[0xe0108&0x0000ffff]","detail":"read 0x0 at cycle 41, expected 0x1234"}"#,
            r#"{"type":"divergence","test":"PAGE/TEST_READBACK","divergent":["rtl","bondout"]}"#,
            r#"{"type":"finished","total":12,"passed":10,"failed":2,"cache_hits":7}"#,
        ];
        for (event, expected) in every_event().iter().zip(golden) {
            assert_eq!(event.to_json(), expected);
        }
    }

    #[test]
    fn malformed_events_are_rejected_with_shape_errors() {
        for bad in [
            "",
            "{}",
            r#"{"type":"nope"}"#,
            r#"{"type":"started","jobs":1}"#,
            r#"{"type":"job_started","env":"E","test":"T","platform":"vax"}"#,
            r#"{"type":"finished","total":-1,"passed":0,"failed":0,"cache_hits":0}"#,
        ] {
            assert!(CampaignEvent::from_json(bad).is_err(), "{bad:?}");
        }
    }

    /// Writes PAGE_MAP and reads it back into a sink register without
    /// ever branching on the value: a map-write fault changes only the
    /// sink read, which the differential verdict cannot see.
    fn sink_readback_cell() -> TestCell {
        TestCell::new(
            "TEST_MAP_SINK",
            "map readback into a sink register",
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #0x1234
    STORE [PAGE_MAP_ADDR], d1
    LOAD d2, [PAGE_MAP_ADDR]
    CALL Base_Report_Pass
    RETURN
",
        )
    }

    /// The sc88a page module's MAP register, 16 writable bits.
    fn map_checker() -> TraceAssertion {
        TraceAssertion::ReadbackEquals {
            addr: 0xE0108,
            mask: 0xFFFF,
        }
    }

    #[test]
    fn checkers_catch_differentially_invisible_faults() {
        let e = env(vec![sink_readback_cell()]);
        let log = EventLog::new();
        let report = Campaign::new()
            .env(e)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .fault(PlatformId::RtlSim, PlatformFault::PageMapWriteIgnored)
            .checkers([map_checker()])
            .observe(log.clone())
            .run()
            .unwrap();
        // The verdict passes everywhere and no divergence is raised —
        // the fault is invisible to the differential layer...
        assert_eq!(report.failed(), 0, "{}", report.matrix());
        assert!(report.divergences().is_empty());
        // ...but the mined checker sees the ignored write.
        assert_eq!(report.checkers_armed(), 1);
        let violations = report.checker_violations();
        assert!(!violations.is_empty());
        for v in violations {
            assert_eq!(v.platform, PlatformId::RtlSim, "{v:?}");
            assert_eq!(v.env, "PAGE");
            assert_eq!(v.test_id, "TEST_MAP_SINK");
            assert!(v.checker.starts_with("readback[0xe0108"), "{v:?}");
        }
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, CampaignEvent::CheckerViolation { .. })));
        let json = report.to_json();
        assert!(json.contains("\"checkers\":{\"armed\":1,"), "{json}");
        assert!(json.contains("\"checker\":\"readback[0xe0108"), "{json}");
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn fault_free_runs_satisfy_armed_checkers() {
        let e = env(vec![sink_readback_cell()]);
        let report = Campaign::new()
            .env(e)
            .checkers([map_checker()])
            .run()
            .unwrap();
        assert_eq!(report.total(), 6);
        assert_eq!(report.failed(), 0);
        assert!(report.checker_violations().is_empty());
        assert!(report.to_json().contains("\"violations\":[]"));
    }

    #[test]
    fn zero_and_one_capacity_monitors_never_fire_spurious_violations() {
        // Capacity 0 retains nothing (every transaction is "dropped");
        // capacity 1 retains only the newest. Both must run the checker
        // campaign to completion with no panic and no violations: every
        // checker anchors on *retained* writes, so a truncated ring
        // degrades to a vacuous pass, never a false positive.
        let baseline = Campaign::new()
            .env(env(vec![sink_readback_cell()]))
            .run()
            .unwrap();
        for capacity in [0usize, 1] {
            let report = Campaign::new()
                .env(env(vec![sink_readback_cell()]))
                .checkers([map_checker()])
                .monitor_capacity(capacity)
                .run()
                .unwrap();
            assert_eq!(report.total(), baseline.total(), "capacity {capacity}");
            assert_eq!(report.failed(), baseline.failed(), "capacity {capacity}");
            assert!(
                report.checker_violations().is_empty(),
                "capacity {capacity}: truncation must skip, not fire"
            );
            // Verdicts are checker-independent.
            for run in baseline.runs() {
                let twin = report
                    .run_of(&run.env, &run.test_id, run.platform)
                    .expect("same job set");
                assert_eq!(twin.result.passed(), run.result.passed());
            }
        }
    }

    #[test]
    fn checked_runs_never_fork_and_unchecked_reports_omit_the_block() {
        let e = env(vec![sink_readback_cell()]);
        // A prefix pool is attached but checkers force from-reset
        // execution: snapshots do not carry the MMIO monitor.
        let pool = Arc::new(PrefixPool::new(8));
        let checked = Campaign::new()
            .env(e.clone())
            .prefix_pool(Arc::clone(&pool))
            .checkers([map_checker()])
            .monitor_capacity(256)
            .run()
            .unwrap();
        assert_eq!(checked.perf().forked_runs, 0, "{:?}", checked.perf());
        assert_eq!(checked.perf().prefix_saved, 0);
        assert!(checked.checker_violations().is_empty());

        // Without checkers the report JSON keeps its pre-existing
        // layout: no "checkers" block at all.
        let plain = Campaign::new().env(e).run().unwrap();
        assert_eq!(plain.checkers_armed(), 0);
        assert!(!plain.to_json().contains("\"checkers\""));
    }

    #[test]
    fn artifact_store_reuse_is_perf_only_and_counted() {
        let e = env(vec![passing_cell("TEST_A"), failing_cell("TEST_F")]);
        let baseline = Campaign::new().env(e.clone()).run().unwrap();

        let store = Arc::new(ArtifactStore::new(64));
        let cold = Campaign::new()
            .env(e.clone())
            .artifact_store(Arc::clone(&store))
            .run()
            .unwrap();
        assert_eq!(cold.perf().artifact_hits, 0, "cold run populates");
        let after_cold = store.stats();
        assert_eq!(after_cold.hits, 0);
        assert_eq!(after_cold.misses as usize, cold.unique_builds());

        let warm = Campaign::new()
            .env(e)
            .artifact_store(Arc::clone(&store))
            .run()
            .unwrap();
        assert_eq!(
            warm.perf().artifact_hits as usize,
            warm.unique_builds(),
            "every distinct key is served by the store on the warm run"
        );
        assert_eq!(store.stats().hits, warm.perf().artifact_hits);

        // Reuse is perf-only: report-level counters and every verdict
        // match both the cold store run and the storeless baseline.
        for report in [&cold, &warm] {
            assert_eq!(report.total(), baseline.total());
            assert_eq!(report.cache_hits(), baseline.cache_hits());
            assert_eq!(report.unique_builds(), baseline.unique_builds());
            for run in baseline.runs() {
                let twin = report
                    .run_of(&run.env, &run.test_id, run.platform)
                    .expect("same job set");
                assert_eq!(twin.result.passed(), run.result.passed());
                assert_eq!(twin.result.insns, run.result.insns);
            }
        }
    }
}
