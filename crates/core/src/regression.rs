//! The parallel regression runner.
//!
//! A regression runs every test cell of one or more environments across a
//! set of platforms. Per the methodology, each (environment, platform)
//! pair gets its own abstraction-layer build — that is the whole point:
//! re-targeting is a `Globals.inc` regeneration, never a test edit — and
//! per-test results are compared across platforms for divergence.

use std::sync::atomic::{AtomicUsize, Ordering};

use advm_asm::AsmError;
use advm_metrics::Table;
use advm_sim::diverge::{compare, DivergenceReport};
use advm_sim::{Platform, PlatformFault, RunResult};
use advm_soc::{Derivative, PlatformId};
use parking_lot::Mutex;

use crate::build::build_cell;
use crate::env::{EnvConfig, ModuleTestEnv};

/// Configuration of one regression run.
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Platforms to run on.
    pub platforms: Vec<PlatformId>,
    /// Worker threads.
    pub workers: usize,
    /// Optional fault injected into one platform's hardware (divergence
    /// experiments).
    pub fault: Option<(PlatformId, PlatformFault)>,
    /// Instruction budget per run.
    pub fuel: u64,
}

impl RegressionConfig {
    /// All six platforms, four workers, no fault.
    pub fn full() -> Self {
        Self {
            platforms: PlatformId::ALL.to_vec(),
            workers: 4,
            fault: None,
            fuel: advm_sim::DEFAULT_FUEL,
        }
    }

    /// A single-platform smoke regression.
    pub fn smoke(platform: PlatformId) -> Self {
        Self {
            platforms: vec![platform],
            workers: 1,
            fault: None,
            fuel: advm_sim::DEFAULT_FUEL,
        }
    }

    /// Injects a hardware fault into one platform.
    pub fn with_fault(mut self, platform: PlatformId, fault: PlatformFault) -> Self {
        self.fault = Some((platform, fault));
        self
    }
}

impl Default for RegressionConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// One executed test run.
#[derive(Debug, Clone)]
pub struct TestRun {
    /// Environment name.
    pub env: String,
    /// Test cell id.
    pub test_id: String,
    /// Platform the run executed on.
    pub platform: PlatformId,
    /// The execution result.
    pub result: RunResult,
}

/// The collected regression results.
#[derive(Debug, Clone, Default)]
pub struct RegressionReport {
    runs: Vec<TestRun>,
}

impl RegressionReport {
    /// All runs, ordered by environment, test, platform.
    pub fn runs(&self) -> &[TestRun] {
        &self.runs
    }

    /// Total number of runs.
    pub fn total(&self) -> usize {
        self.runs.len()
    }

    /// Number of passing runs.
    pub fn passed(&self) -> usize {
        self.runs.iter().filter(|r| r.result.passed()).count()
    }

    /// Number of failing runs.
    pub fn failed(&self) -> usize {
        self.total() - self.passed()
    }

    /// Pass rate in `0.0..=1.0` (1.0 for an empty regression).
    pub fn pass_rate(&self) -> f64 {
        if self.runs.is_empty() {
            1.0
        } else {
            self.passed() as f64 / self.total() as f64
        }
    }

    /// The distinct `(env, test)` pairs in run order.
    pub fn tests(&self) -> Vec<(String, String)> {
        let mut seen = Vec::new();
        for run in &self.runs {
            let key = (run.env.clone(), run.test_id.clone());
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    }

    /// The distinct platforms in run order.
    pub fn platforms(&self) -> Vec<PlatformId> {
        let mut seen = Vec::new();
        for run in &self.runs {
            if !seen.contains(&run.platform) {
                seen.push(run.platform);
            }
        }
        seen
    }

    /// Renders the tests × platforms pass/fail matrix.
    pub fn matrix(&self) -> Table {
        let platforms = self.platforms();
        let mut headers: Vec<String> = vec!["test".to_owned()];
        headers.extend(platforms.iter().map(ToString::to_string));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new("Regression matrix", &header_refs);
        for (env, test) in self.tests() {
            let mut row = vec![format!("{env}/{test}")];
            for platform in &platforms {
                let cell = self
                    .runs
                    .iter()
                    .find(|r| r.env == env && r.test_id == test && r.platform == *platform)
                    .map(|r| if r.result.passed() { "PASS" } else { "FAIL" })
                    .unwrap_or("-");
                row.push(cell.to_owned());
            }
            table.row(&row);
        }
        table
    }

    /// Per-test cross-platform divergence analysis; returns only tests
    /// where platforms disagree.
    pub fn divergences(&self) -> Vec<(String, DivergenceReport)> {
        let mut out = Vec::new();
        for (env, test) in self.tests() {
            let results: Vec<RunResult> = self
                .runs
                .iter()
                .filter(|r| r.env == env && r.test_id == test)
                .map(|r| r.result.clone())
                .collect();
            if results.len() > 1 {
                let report = compare(&results);
                if !report.consistent {
                    out.push((format!("{env}/{test}"), report));
                }
            }
        }
        out
    }
}

/// Runs a regression over the given environments.
///
/// Each environment is re-targeted (abstraction layer regeneration only)
/// to every requested platform; every cell is built and executed; work is
/// distributed over `config.workers` threads.
///
/// # Errors
///
/// Returns the first *build* error encountered. Execution failures are
/// results, not errors.
pub fn run_regression(
    envs: &[ModuleTestEnv],
    config: &RegressionConfig,
) -> Result<RegressionReport, AsmError> {
    // Prepare per-(env, platform) builds up front; porting is cheap and
    // keeps the hot loop allocation-free.
    struct Job {
        env_name: String,
        test_id: String,
        platform: PlatformId,
        image: advm_asm::Image,
        derivative: Derivative,
        fault: PlatformFault,
    }

    let mut jobs = Vec::new();
    for env in envs {
        for &platform in &config.platforms {
            let mut ported = env.clone();
            ported.reconfigure(EnvConfig {
                platform,
                ..env.config()
            });
            let derivative = Derivative::from_id(ported.config().derivative);
            let fault = match config.fault {
                Some((p, f)) if p == platform => f,
                _ => PlatformFault::None,
            };
            for cell in ported.cells() {
                let image = build_cell(&ported, cell.id())?;
                jobs.push(Job {
                    env_name: ported.name().to_owned(),
                    test_id: cell.id().to_owned(),
                    platform,
                    image,
                    derivative: derivative.clone(),
                    fault,
                });
            }
        }
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<TestRun>>> = Mutex::new(vec![None; jobs.len()]);
    let workers = config.workers.max(1).min(jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                let mut platform = Platform::with_fault(job.platform, &job.derivative, job.fault);
                platform.set_fuel(config.fuel);
                platform.load_image(&job.image);
                let result = platform.run();
                results.lock()[index] = Some(TestRun {
                    env: job.env_name.clone(),
                    test_id: job.test_id.clone(),
                    platform: job.platform,
                    result,
                });
            });
        }
    });

    let runs: Vec<TestRun> = results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every job produces a result"))
        .collect();
    Ok(RegressionReport { runs })
}

#[cfg(test)]
mod tests {
    use advm_soc::DerivativeId;

    use crate::env::TestCell;

    use super::*;

    fn passing_cell(id: &str) -> TestCell {
        TestCell::new(
            id,
            "passes everywhere",
            ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
        )
    }

    fn failing_cell(id: &str) -> TestCell {
        TestCell::new(
            id,
            "always fails",
            ".INCLUDE Globals.inc\n_main:\n    LOAD ArgA, #9\n    CALL Base_Report_Fail\n    RETURN\n",
        )
    }

    fn env(cells: Vec<TestCell>) -> ModuleTestEnv {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            cells,
        )
    }

    #[test]
    fn full_matrix_runs_every_combination() {
        let e = env(vec![passing_cell("TEST_A"), passing_cell("TEST_B")]);
        let report = run_regression(&[e], &RegressionConfig::full()).unwrap();
        assert_eq!(report.total(), 2 * 6);
        assert_eq!(report.passed(), 12);
        assert!(report.divergences().is_empty());
        let matrix = report.matrix().to_string();
        assert!(matrix.contains("PAGE/TEST_A"), "{matrix}");
        assert!(matrix.contains("golden"), "{matrix}");
    }

    #[test]
    fn failures_counted_consistently() {
        let e = env(vec![passing_cell("TEST_A"), failing_cell("TEST_F")]);
        let report =
            run_regression(&[e], &RegressionConfig::smoke(PlatformId::GoldenModel)).unwrap();
        assert_eq!(report.total(), 2);
        assert_eq!(report.passed(), 1);
        assert_eq!(report.failed(), 1);
        assert!((report.pass_rate() - 0.5).abs() < 1e-9);
        // Failing everywhere is consistent, not a divergence.
        assert!(report.divergences().is_empty());
    }

    #[test]
    fn injected_fault_shows_up_as_divergence() {
        // A read-back test that exercises the page readback path.
        let cell = TestCell::new(
            "TEST_READBACK",
            "page readback",
            "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #TEST1_TARGET_PAGE
    CALL Base_Select_Page
    LOAD ArgA, #TEST1_TARGET_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        );
        let e = env(vec![cell]);
        let config = RegressionConfig::full()
            .with_fault(PlatformId::RtlSim, PlatformFault::PageActiveOffByOne);
        let report = run_regression(&[e], &config).unwrap();
        let divergences = report.divergences();
        assert_eq!(divergences.len(), 1, "exactly one divergent test");
        assert!(divergences[0].1.divergent.contains(&PlatformId::RtlSim));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let e = env(vec![
            passing_cell("TEST_A"),
            failing_cell("TEST_F"),
            passing_cell("TEST_C"),
        ]);
        let mut serial_cfg = RegressionConfig::full();
        serial_cfg.workers = 1;
        let mut parallel_cfg = RegressionConfig::full();
        parallel_cfg.workers = 8;
        let serial = run_regression(std::slice::from_ref(&e), &serial_cfg).unwrap();
        let parallel = run_regression(&[e], &parallel_cfg).unwrap();
        assert_eq!(serial.total(), parallel.total());
        assert_eq!(serial.passed(), parallel.passed());
        // Same (env, test, platform) → same verdict, independent of order.
        for run in serial.runs() {
            let twin = parallel
                .runs()
                .iter()
                .find(|r| {
                    r.env == run.env && r.test_id == run.test_id && r.platform == run.platform
                })
                .expect("same job set");
            assert_eq!(twin.result.passed(), run.result.passed());
        }
    }
}
