//! The legacy regression entry point, now a shim over
//! [`crate::campaign`].
//!
//! The parallel runner that used to live here was redesigned into the
//! builder-driven, event-streaming, build-cached [`Campaign`] pipeline.
//! This module keeps the old vocabulary alive for one release:
//! [`RegressionConfig`] remains the plain config carrier (and bridges
//! via [`Campaign::from_config`]), [`RegressionReport`] is an alias of
//! the indexed [`CampaignReport`], and [`run_regression`] forwards into
//! the pipeline behind a deprecation warning.

use advm_asm::AsmError;
use advm_sim::PlatformFault;
use advm_soc::PlatformId;

use crate::campaign::{Campaign, CampaignError};
pub use crate::campaign::{CampaignReport, TestRun};
use crate::env::ModuleTestEnv;

/// The old report name; the campaign redesign kept the surface (`runs`,
/// `matrix`, `divergences`, …) but pre-indexes everything.
pub type RegressionReport = CampaignReport;

/// Configuration of one regression run.
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Platforms to run on.
    pub platforms: Vec<PlatformId>,
    /// Worker threads.
    pub workers: usize,
    /// Optional fault injected into one platform's hardware (divergence
    /// experiments).
    pub fault: Option<(PlatformId, PlatformFault)>,
    /// Instruction budget per run.
    pub fuel: u64,
}

impl RegressionConfig {
    /// All six platforms, no fault, one worker per available core.
    pub fn full() -> Self {
        Self {
            platforms: PlatformId::ALL.to_vec(),
            workers: crate::campaign::default_workers(),
            fault: None,
            fuel: advm_sim::DEFAULT_FUEL,
        }
    }

    /// A single-platform smoke regression.
    pub fn smoke(platform: PlatformId) -> Self {
        Self {
            platforms: vec![platform],
            workers: 1,
            fault: None,
            fuel: advm_sim::DEFAULT_FUEL,
        }
    }

    /// Injects a hardware fault into one platform.
    pub fn with_fault(mut self, platform: PlatformId, fault: PlatformFault) -> Self {
        self.fault = Some((platform, fault));
        self
    }
}

impl Default for RegressionConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Runs a regression over the given environments.
///
/// Deprecated shim over the [`Campaign`] pipeline — build the campaign
/// directly to pick workers/fuel/platforms fluently, stream events, and
/// get structured errors:
///
/// ```
/// # use advm::campaign::Campaign;
/// # use advm::presets::{default_config, page_env};
/// # use advm_soc::PlatformId;
/// let report = Campaign::new()
///     .env(page_env(default_config(), 1))
///     .platform(PlatformId::GoldenModel)
///     .run()
///     .unwrap();
/// assert_eq!(report.failed(), 0);
/// ```
///
/// # Errors
///
/// Returns the first *build* error encountered. Execution failures are
/// results, not errors.
#[deprecated(since = "0.1.0", note = "use advm::campaign::Campaign instead")]
pub fn run_regression(
    envs: &[ModuleTestEnv],
    config: &RegressionConfig,
) -> Result<RegressionReport, AsmError> {
    match Campaign::from_config(envs, config).run() {
        Ok(report) => Ok(report),
        // The old runner treated an empty plan as an empty (passing)
        // report, not an error; the shim preserves that.
        Err(CampaignError::NoEnvironments | CampaignError::NoPlatforms) => {
            Ok(RegressionReport::default())
        }
        Err(err) => Err(err.into_asm_error()),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use advm_soc::DerivativeId;

    use crate::env::{EnvConfig, TestCell};

    use super::*;

    #[test]
    fn shim_matches_campaign_semantics() {
        let env = ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new(
                "TEST_A",
                "passes everywhere",
                ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
            )],
        );
        let report = run_regression(&[env], &RegressionConfig::full()).unwrap();
        assert_eq!(report.total(), 6);
        assert_eq!(report.failed(), 0);
        assert!(report.divergences().is_empty());
    }

    #[test]
    fn shim_flattens_build_errors_to_asm_error() {
        let env = ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new(
                "TEST_BAD",
                "does not assemble",
                "_main:\n    FROB d1\n",
            )],
        );
        let err = run_regression(&[env], &RegressionConfig::smoke(PlatformId::GoldenModel));
        assert!(err.is_err());
    }

    #[test]
    fn full_config_derives_workers_from_the_machine() {
        assert!(RegressionConfig::full().workers >= 1);
    }

    #[test]
    fn empty_inputs_stay_an_empty_passing_report() {
        let report = run_regression(&[], &RegressionConfig::full()).unwrap();
        assert_eq!(report.total(), 0);
        assert!((report.pass_rate() - 1.0).abs() < 1e-9);
    }
}
