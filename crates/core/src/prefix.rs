//! Shared golden-prefix pool — snapshot-based run forking for campaigns.
//!
//! Every run of the same deduplicated image on the same platform retires
//! an identical instruction prefix: reset, the ES ROM's dispatch
//! preamble, the test's own setup. A [`PrefixPool`] executes that prefix
//! **once** per `(content key, platform)` on a fault-free machine,
//! snapshots it ([`advm_sim::Platform::snapshot`]), and lets every later
//! run of the campaign — including fault-injected ones — fork from the
//! snapshot instead of re-executing from reset.
//!
//! Forking is only taken when it is provably byte-identical to running
//! from reset ([`advm_sim::Platform::fork_safe`]): the prefix must have
//! ended by exhausting its budget (not by halting), and the injected
//! fault's module must be untouched by the prefix's MMIO coverage.
//! Otherwise the run silently falls back to from-reset execution —
//! verdicts never depend on whether a fork happened.
//!
//! The pool is shared: [`crate::audit::FaultAudit`] hands one pool to
//! all of its faulted campaigns, so the whole fault × platform matrix
//! pays for each image's prefix exactly once.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use advm_sim::{PlatformFault, SaveState};
use advm_soc::PlatformId;
use parking_lot::Mutex;

/// Default prefix budget: instructions executed before the snapshot
/// point. Long enough to cover reset plus the ES ROM preamble, short
/// enough that the snapshot lands before typical tests start touching
/// the peripheral under test.
pub const DEFAULT_PREFIX_BUDGET: u64 = 64;

/// One captured prefix: the machine snapshot plus the run-local
/// observations a forked continuation must inherit.
pub(crate) struct PrefixEntry {
    /// The machine at the snapshot point.
    pub(crate) state: SaveState,
    /// Instructions the prefix retired (what each fork skips).
    pub(crate) retired: u64,
    /// `DBG` markers the prefix emitted; markers are collected per
    /// `run()` call, so forked continuations prepend these.
    pub(crate) dbg_markers: Vec<u8>,
    /// Per-fault fork-safety verdicts captured from the live prefix
    /// machine (bit `i` = `PlatformFault::ALL[i]` forks safely), so an
    /// unsafe fork is rejected without deserializing the snapshot.
    fork_safe_mask: u16,
}

impl PrefixEntry {
    /// Seals a prefix captured on the live `platform` machine.
    pub(crate) fn capture(
        platform: &advm_sim::Platform,
        retired: u64,
        dbg_markers: Vec<u8>,
    ) -> Self {
        let fork_safe_mask = PlatformFault::ALL
            .iter()
            .enumerate()
            .fold(0u16, |mask, (i, &fault)| {
                mask | (u16::from(platform.fork_safe(fault)) << i)
            });
        Self {
            state: platform.snapshot(),
            retired,
            dbg_markers,
            fork_safe_mask,
        }
    }

    /// Whether forking a `fault`-carrying run from this prefix is
    /// provably byte-identical to running it from reset. Equals what
    /// the restored machine's `fork_safe` would answer — MMIO coverage
    /// round-trips through the snapshot — but costs a bit test instead
    /// of a deserialization.
    pub(crate) fn fork_safe(&self, fault: PlatformFault) -> bool {
        match PlatformFault::ALL.iter().position(|&f| f == fault) {
            Some(i) => self.fork_safe_mask & (1 << i) != 0,
            // Fault-free forks of a live prefix are always safe.
            None => true,
        }
    }
}

/// The shared once-slot for one `(content key, platform)` prefix: the
/// first worker to arrive initializes it; `None` marks an image whose
/// prefix cannot be forked (it halted inside the budget).
pub(crate) type PrefixSlot = Arc<OnceLock<Option<PrefixEntry>>>;

/// A concurrent pool of shared fault-free prefix snapshots, keyed by
/// `(image content key, platform)`.
///
/// Attach one to a [`Campaign`](crate::campaign::Campaign) with
/// [`Campaign::prefix_pool`](crate::campaign::Campaign::prefix_pool);
/// share one `Arc` across several campaigns to share the prefixes too.
pub struct PrefixPool {
    budget: u64,
    entries: Mutex<HashMap<(u64, PlatformId), PrefixSlot>>,
}

impl std::fmt::Debug for PrefixPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixPool")
            .field("budget", &self.budget)
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

impl PrefixPool {
    /// A pool whose prefixes run `budget` instructions before the
    /// snapshot point (clamped to each campaign's fuel at use).
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The configured prefix instruction budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of distinct `(content key, platform)` prefixes captured
    /// (or attempted) so far.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether no prefix has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().len() == 0
    }

    /// The shared once-slot for one `(content key, platform)` prefix.
    /// The first worker to arrive runs the prefix; everyone else reuses
    /// the captured entry (or the `None` marker for unforkable images).
    pub(crate) fn slot(&self, content_key: u64, platform: PlatformId) -> PrefixSlot {
        Arc::clone(
            self.entries
                .lock()
                .entry((content_key, platform))
                .or_default(),
        )
    }

    /// Drops every platform's snapshot for one image content key. Used
    /// by the cross-campaign [`crate::artifacts::ArtifactStore`] when it
    /// evicts the image the snapshots were forked from.
    pub(crate) fn evict_content_key(&self, content_key: u64) {
        self.entries
            .lock()
            .retain(|&(key, _), _| key != content_key);
    }
}

impl Default for PrefixPool {
    fn default() -> Self {
        Self::new(DEFAULT_PREFIX_BUDGET)
    }
}
