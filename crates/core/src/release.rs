//! Release labels and frozen environments.
//!
//! §2–3 of the paper: the abstraction layer controls every test, so the
//! environment *"cannot change during a regression"*; owners release
//! labelled versions, and a system regression is an instance *"composed
//! of sub-labels for each environment"*. This module implements that
//! mechanism: a [`Release`] is an immutable snapshot of an environment
//! tree with an integrity checksum; a [`SystemRelease`] names one label
//! per component environment.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::env::ModuleTestEnv;

/// A frozen, labelled snapshot of one environment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Release {
    label: String,
    env_name: String,
    tree: BTreeMap<String, String>,
    checksum: u64,
}

impl Release {
    /// Freezes an environment under a label.
    pub fn freeze(label: impl Into<String>, env: &ModuleTestEnv) -> Self {
        let tree = env.tree();
        let checksum = tree_checksum(&tree);
        Self {
            label: label.into(),
            env_name: env.name().to_owned(),
            tree,
            checksum,
        }
    }

    /// The release label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The environment the release snapshots.
    pub fn env_name(&self) -> &str {
        &self.env_name
    }

    /// The frozen file tree.
    pub fn tree(&self) -> &BTreeMap<String, String> {
        &self.tree
    }

    /// The integrity checksum of the frozen tree.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Whether the snapshot still matches its checksum (detects tampering
    /// with a release, which the methodology forbids).
    pub fn verify_integrity(&self) -> bool {
        tree_checksum(&self.tree) == self.checksum
    }

    /// Whether a live environment still matches this release.
    pub fn matches(&self, env: &ModuleTestEnv) -> bool {
        env.name() == self.env_name && tree_checksum(&env.tree()) == self.checksum
    }

    /// Thaws the release back into a runnable environment.
    ///
    /// # Errors
    ///
    /// Returns a message if the snapshot is structurally incomplete.
    pub fn thaw(&self) -> Result<ModuleTestEnv, String> {
        ModuleTestEnv::from_tree(&self.env_name, &self.tree)
    }
}

impl fmt::Display for Release {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} ({:016x})",
            self.env_name, self.label, self.checksum
        )
    }
}

/// A system-level release: one label per component environment
/// (the paper's "label composed of sub-labels").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemRelease {
    label: String,
    components: Vec<(String, String)>,
}

impl SystemRelease {
    /// The system release label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// `(environment, label)` pairs.
    pub fn components(&self) -> &[(String, String)] {
        &self.components
    }
}

impl fmt::Display for SystemRelease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.label)?;
        for (i, (env, label)) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{env}@{label}")?;
        }
        write!(f, "]")
    }
}

/// Error from [`ReleaseStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReleaseError {
    /// A label was reused.
    DuplicateLabel(String),
    /// A referenced label does not exist.
    UnknownLabel(String),
    /// A component release failed its integrity check.
    CorruptRelease(String),
}

impl fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReleaseError::DuplicateLabel(l) => write!(f, "label `{l}` already exists"),
            ReleaseError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            ReleaseError::CorruptRelease(l) => {
                write!(f, "release `{l}` failed its integrity check")
            }
        }
    }
}

impl std::error::Error for ReleaseError {}

/// The revision-control stand-in: labelled releases per environment plus
/// composed system releases. A single person owns this in the paper's
/// process ("a single person responsible for the release of a complete
/// regression environment").
#[derive(Debug, Clone, Default)]
pub struct ReleaseStore {
    releases: BTreeMap<String, Release>,
    system_releases: BTreeMap<String, SystemRelease>,
}

impl ReleaseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes an environment under a new label.
    ///
    /// # Errors
    ///
    /// Fails on label reuse — labels are immutable history.
    pub fn freeze(
        &mut self,
        label: impl Into<String>,
        env: &ModuleTestEnv,
    ) -> Result<&Release, ReleaseError> {
        let label = label.into();
        if self.releases.contains_key(&label) {
            return Err(ReleaseError::DuplicateLabel(label));
        }
        let release = Release::freeze(label.clone(), env);
        Ok(self.releases.entry(label).or_insert(release))
    }

    /// Looks up a release by label.
    pub fn release(&self, label: &str) -> Option<&Release> {
        self.releases.get(label)
    }

    /// Composes a system release from per-environment labels.
    ///
    /// # Errors
    ///
    /// Fails if the system label is reused, a component label is unknown,
    /// or a component fails its integrity check.
    pub fn compose_system(
        &mut self,
        label: impl Into<String>,
        component_labels: &[&str],
    ) -> Result<&SystemRelease, ReleaseError> {
        let label = label.into();
        if self.system_releases.contains_key(&label) {
            return Err(ReleaseError::DuplicateLabel(label));
        }
        let mut components = Vec::new();
        for comp in component_labels {
            let release = self
                .releases
                .get(*comp)
                .ok_or_else(|| ReleaseError::UnknownLabel((*comp).to_owned()))?;
            if !release.verify_integrity() {
                return Err(ReleaseError::CorruptRelease((*comp).to_owned()));
            }
            components.push((release.env_name().to_owned(), (*comp).to_owned()));
        }
        let system = SystemRelease {
            label: label.clone(),
            components,
        };
        Ok(self.system_releases.entry(label).or_insert(system))
    }

    /// Looks up a system release.
    pub fn system_release(&self, label: &str) -> Option<&SystemRelease> {
        self.system_releases.get(label)
    }

    /// Thaws every component of a system release into runnable
    /// environments.
    ///
    /// # Errors
    ///
    /// Fails on unknown labels or corrupt snapshots.
    pub fn thaw_system(&self, label: &str) -> Result<Vec<ModuleTestEnv>, ReleaseError> {
        let system = self
            .system_releases
            .get(label)
            .ok_or_else(|| ReleaseError::UnknownLabel(label.to_owned()))?;
        let mut envs = Vec::new();
        for (_, comp_label) in &system.components {
            let release = self
                .releases
                .get(comp_label)
                .ok_or_else(|| ReleaseError::UnknownLabel(comp_label.clone()))?;
            envs.push(
                release
                    .thaw()
                    .map_err(|_| ReleaseError::CorruptRelease(comp_label.clone()))?,
            );
        }
        Ok(envs)
    }
}

fn tree_checksum(tree: &BTreeMap<String, String>) -> u64 {
    // FNV-1a over path/content pairs; deterministic across runs.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (path, content) in tree {
        eat(path.as_bytes());
        eat(&[0]);
        eat(content.as_bytes());
        eat(&[0xFF]);
    }
    hash
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use crate::env::{EnvConfig, TestCell};
    use crate::porting::port_env;

    use super::*;

    fn env() -> ModuleTestEnv {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new(
                "TEST_A",
                "demo",
                ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
            )],
        )
    }

    #[test]
    fn freeze_and_match() {
        let e = env();
        let release = Release::freeze("R1.0", &e);
        assert!(release.verify_integrity());
        assert!(release.matches(&e));
        assert_eq!(release.label(), "R1.0");
    }

    #[test]
    fn mutated_env_no_longer_matches_release() {
        let e = env();
        let release = Release::freeze("R1.0", &e);
        let ported = port_env(
            &e,
            EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel),
        )
        .env;
        assert!(
            !release.matches(&ported),
            "abstraction-layer change must invalidate the frozen label"
        );
    }

    #[test]
    fn thawed_release_equals_original() {
        let e = env();
        let release = Release::freeze("R1.0", &e);
        assert_eq!(release.thaw().unwrap(), e);
    }

    #[test]
    fn store_rejects_duplicate_labels() {
        let mut store = ReleaseStore::new();
        store.freeze("R1.0", &env()).unwrap();
        assert_eq!(
            store.freeze("R1.0", &env()).unwrap_err(),
            ReleaseError::DuplicateLabel("R1.0".into())
        );
    }

    #[test]
    fn system_release_composes_sublabels() {
        let mut store = ReleaseStore::new();
        let page = env();
        let uart = ModuleTestEnv::new(
            "UART",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new(
                "TEST_U",
                "demo",
                ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
            )],
        );
        store.freeze("PAGE-1.0", &page).unwrap();
        store.freeze("UART-1.0", &uart).unwrap();
        let system = store
            .compose_system("SYS-1.0", &["PAGE-1.0", "UART-1.0"])
            .unwrap();
        assert_eq!(system.components().len(), 2);
        assert!(system.to_string().contains("PAGE@PAGE-1.0"));

        let thawed = store.thaw_system("SYS-1.0").unwrap();
        assert_eq!(thawed.len(), 2);
        assert_eq!(thawed[0], page);
        assert_eq!(thawed[1], uart);
    }

    #[test]
    fn unknown_component_label_rejected() {
        let mut store = ReleaseStore::new();
        assert_eq!(
            store.compose_system("SYS", &["NOPE"]).unwrap_err(),
            ReleaseError::UnknownLabel("NOPE".into())
        );
    }

    #[test]
    fn checksum_is_content_sensitive() {
        let e = env();
        let r1 = Release::freeze("A", &e);
        let ported = port_env(
            &e,
            EnvConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel),
        )
        .env;
        let r2 = Release::freeze("B", &ported);
        assert_ne!(r1.checksum(), r2.checksum());
    }
}
