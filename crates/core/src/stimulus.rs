//! Scenario-driven stimulus — the bridge between the generator's
//! [`Scenario`] engine and the campaign pipeline, plus the closed-loop
//! [`Exploration`] driver.
//!
//! §2 of the paper proposes generating constrained-random `Globals.inc`
//! instances "from a higher level language" so random stimulus can chase
//! coverage. This module closes that loop end to end:
//!
//! 1. **generate** — a [`ScenarioEngine`] plans a deterministic batch of
//!    scenarios ([`advm_gen::StimulusPlan`]);
//! 2. **run** — [`scenario_env`] materialises each scenario into a
//!    module test environment (page read-back cells for the drawn
//!    targets, plus stimulus cells for any coverage-targeted modules)
//!    and a [`Campaign`] executes the batch across platforms;
//! 3. **measure** — [`PageCoverage`] and [`RegisterCoverage`] record
//!    what the batch exercised;
//! 4. **refine** — [`coverage_feedback`] folds the measurements into a
//!    [`CoverageFeedback`] and the next round draws from a
//!    [`CoverageDirected`] source biased toward the holes.
//!
//! [`Exploration`] packages rounds 1..N of that cycle behind a builder;
//! `advm-cli explore` is a thin veneer over it.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use advm_gen::{
    ConstrainedRandom, ConstraintError, CoverageDirected, CoverageFeedback, Directed,
    GlobalsConstraints, PageCoverage, Scenario, ScenarioEngine, ScenarioKind,
};
use advm_metrics::Table;
use advm_soc::{Derivative, DerivativeId, PlatformId};

use crate::campaign::{default_workers, json_string, Campaign, CampaignError, CampaignReport};
use crate::coverage::RegisterCoverage;
use crate::env::{EnvConfig, ModuleTestEnv, Stimulus, TestCell};
use crate::presets;
use crate::testplan::Testplan;

/// Materialises a scenario into a runnable module test environment.
///
/// The environment is named after the scenario, carries one page
/// read-back cell per drawn `TESTn_TARGET_PAGE`, one stimulus cell per
/// coverage-targeted module, and pins the scenario's stimulus into the
/// abstraction layer (see [`ModuleTestEnv::with_stimulus`]) so
/// re-targeting across the campaign's platforms regenerates addresses
/// and knobs around the *same* stimulus.
pub fn scenario_env(scenario: &Scenario) -> ModuleTestEnv {
    let config = EnvConfig::new(scenario.derivative(), scenario.platform());
    let mut cells: Vec<TestCell> = (1..=scenario.test_pages().len())
        .map(page_readback_cell)
        .collect();
    for module in scenario.target_modules() {
        let mut targeted: Vec<TestCell> = Vec::new();
        if let Some(cell) = module_stimulus_cell(module, config) {
            targeted.push(cell);
        }
        targeted.extend(fault_hunter_cells(module));
        for cell in targeted {
            if !cells.iter().any(|c| c.id() == cell.id()) {
                cells.push(cell);
            }
        }
    }
    if cells.is_empty() {
        // A scenario with no page targets and no module targets still
        // needs something to execute; the testbench identity check is
        // the cheapest universally green cell.
        cells.push(
            module_stimulus_cell("TB", config).expect("TB stimulus cell is always available"),
        );
    }
    ModuleTestEnv::new(scenario.name(), config, cells).with_stimulus(Stimulus {
        test_pages: scenario.test_pages().to_vec(),
        extra: scenario.knobs().to_vec(),
    })
}

/// The per-page read-back cell of a scenario environment (the Figure 6
/// pattern, driven by the scenario's drawn page target).
fn page_readback_cell(i: usize) -> TestCell {
    TestCell::new(
        format!("TEST_SCN_PAGE_{i:02}"),
        format!("select drawn page target {i} and read it back"),
        format!(
            "\
;; Scenario stimulus: drawn page target {i}
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST{i}_TARGET_PAGE
_main:
    CALL Base_Init_Register
    LOAD ArgA, #TEST_PAGE
    CALL Base_Select_Page
    LOAD ArgA, #TEST_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        ),
    )
}

/// A catalogued stimulus cell for one register-map module, used when a
/// coverage-directed scenario targets that module's holes. Returns
/// `None` for modules without a catalogued stimulus (e.g. `PAGE`, which
/// every scenario already stimulates through its page cells).
pub fn module_stimulus_cell(module: &str, config: EnvConfig) -> Option<TestCell> {
    let (env, id) = match module {
        "UART" => (presets::uart_env(config), "TEST_UART_LOOPBACK"),
        "TIMER" => (presets::timer_env(config), "TEST_TIMER_POLL"),
        "NVMC" => (presets::nvm_env(config), "TEST_NVM_WRITE_READBACK"),
        "CRC" => (presets::crc_env(config), "TEST_CRC_UNIT"),
        "WDT" => (presets::wdt_env(config), "TEST_WDT_SERVICE"),
        "INTC" => (presets::register_env(config), "TEST_INTC_RAISE_ACK"),
        "TB" => (presets::register_env(config), "TEST_TB_IDENTITY"),
        "ES" => (presets::es_env(config), "TEST_ES_INIT"),
        _ => return None,
    };
    env.cell(id).cloned()
}

/// Fault-hunting cells for one register-map module: stimulus that checks
/// behaviours *no seed-suite test* pins down, written to kill the
/// fault-catalog entries that escape the seed suite (see
/// [`crate::audit::FaultAudit`]). Scenario environments targeting a
/// module carry its hunters alongside the catalogued stimulus cell; all
/// hunters pass on every clean platform and derivative.
pub fn fault_hunter_cells(module: &str) -> Vec<TestCell> {
    match module {
        // A write/read-back sweep of the MAP register: reset-value tests
        // pass over a dead write enable, this does not.
        "PAGE" => vec![TestCell::new(
            "TEST_HUNT_PAGE_MAP",
            "PAGE_MAP accepts and returns a written value",
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #0x1234
    STORE [PAGE_MAP_ADDR], d1
    LOAD d2, [PAGE_MAP_ADDR]
    CMP d2, d1
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        )],
        // A clean single-byte echo must not raise OVERRUN: a transmitter
        // that duplicates bytes trips it even though the payload echoes
        // correctly.
        "UART" => vec![TestCell::new(
            "TEST_HUNT_UART_CLEAN",
            "single loopback byte echoes without receive overrun",
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Uart_Init_Loopback
    LOAD ArgA, #0x42
    CALL Base_Uart_Send
    CALL Base_Uart_Recv
    LOAD d1, #0x42
    CMP RetVal, d1
    JNE t_fail
    LOAD d1, [UART_STATUS_ADDR]
    AND d1, d1, #UART_OVERRUN_MASK
    CMP d1, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        )],
        // Relative bus timing: an identical instruction sequence over
        // MMIO and over RAM must cost (about) the same on every clean
        // platform whatever its cost model, because per-instruction
        // charges do not depend on the address. Extra MMIO wait-states
        // blow the MMIO window past twice the RAM window.
        "TB" => vec![TestCell::new(
            "TEST_HUNT_BUS_TIMING",
            "MMIO traffic is not slower than matched RAM traffic",
            "\
.INCLUDE Globals.inc
_main:
    LOAD d10, [TB_TICKS_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d11, [TB_TICKS_ADDR]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d1, [TEST_DATA_BASE]
    LOAD d12, [TB_TICKS_ADDR]
    SUB d13, d11, d10       ; MMIO window
    SUB d14, d12, d11       ; matched RAM window
    ADD d15, d14, d14       ; 2x RAM budget
    CMP d13, d15
    JGT t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        )],
        _ => Vec::new(),
    }
}

/// Bridges a structured [`Testplan`] into a [`Directed`] scenario
/// source for the given configuration.
pub fn directed_source(plan: &Testplan, config: EnvConfig) -> Directed {
    Directed::new(
        GlobalsConstraints::new(config.derivative, config.platform),
        plan.module(),
        plan.entries()
            .iter()
            .map(|e| (e.id.clone(), e.description.clone())),
    )
}

/// Folds measured coverage into the [`CoverageFeedback`] a
/// [`CoverageDirected`] source consumes: the pages prior stimulus
/// already exercised, and the register-map modules that still have
/// holes, worst coverage first.
pub fn coverage_feedback(pages: &PageCoverage, registers: &RegisterCoverage) -> CoverageFeedback {
    let mut weak: Vec<_> = registers
        .modules()
        .iter()
        .filter(|m| m.touched < m.total)
        .collect();
    weak.sort_by(|a, b| {
        a.ratio()
            .partial_cmp(&b.ratio())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    CoverageFeedback::new()
        .with_pages_seen(pages.seen().iter().copied())
        .with_weak_modules(weak.into_iter().map(|m| m.module.clone()))
}

/// A closed-loop exploration failure.
#[derive(Debug)]
pub enum ExplorationError {
    /// The constraint model is unsatisfiable.
    Constraint(ConstraintError),
    /// A campaign round failed to build.
    Campaign(CampaignError),
}

impl fmt::Display for ExplorationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorationError::Constraint(e) => write!(f, "stimulus planning failed: {e}"),
            ExplorationError::Campaign(e) => write!(f, "campaign round failed: {e}"),
        }
    }
}

impl std::error::Error for ExplorationError {}

impl From<ConstraintError> for ExplorationError {
    fn from(e: ConstraintError) -> Self {
        ExplorationError::Constraint(e)
    }
}

impl From<CampaignError> for ExplorationError {
    fn from(e: CampaignError) -> Self {
        ExplorationError::Campaign(e)
    }
}

/// One round of the generate→run→measure→refine cycle.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// Which source family drew the round's stimulus (round 1 is
    /// constrained-random, later rounds are coverage-directed).
    pub kind: ScenarioKind,
    /// Scenarios in the round's batch.
    pub scenarios: usize,
    /// Pages first exercised by this round.
    pub new_pages: usize,
    /// Cumulative distinct pages exercised after this round.
    pub pages_hit: usize,
    /// Cumulative page-space coverage in `0.0..=1.0`.
    pub page_coverage: f64,
    /// Cumulative register coverage in `0.0..=1.0`.
    pub register_coverage: f64,
    /// The round's sealed campaign report.
    pub campaign: CampaignReport,
}

/// The sealed result of a whole exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    derivative: DerivativeId,
    platforms: Vec<PlatformId>,
    page_space: usize,
    rounds: Vec<RoundReport>,
}

impl ExplorationReport {
    /// The derivative explored.
    pub fn derivative(&self) -> DerivativeId {
        self.derivative
    }

    /// The platforms each round's campaign ran on.
    pub fn platforms(&self) -> &[PlatformId] {
        &self.platforms
    }

    /// Size of the legal page space.
    pub fn page_space(&self) -> usize {
        self.page_space
    }

    /// The per-round reports, in order.
    pub fn rounds(&self) -> &[RoundReport] {
        &self.rounds
    }

    /// Final cumulative page coverage.
    pub fn final_page_coverage(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.page_coverage)
    }

    /// Total failing runs across all rounds.
    pub fn failed(&self) -> usize {
        self.rounds.iter().map(|r| r.campaign.failed()).sum()
    }

    /// Renders the per-round coverage table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Coverage exploration",
            &[
                "round",
                "stimulus",
                "scenarios",
                "runs",
                "passed",
                "pages",
                "coverage",
                "registers",
            ],
        );
        for r in &self.rounds {
            table.row(&[
                r.round.to_string(),
                r.kind.name().to_owned(),
                r.scenarios.to_string(),
                r.campaign.total().to_string(),
                r.campaign.passed().to_string(),
                format!("{}/{} (+{})", r.pages_hit, self.page_space, r.new_pages),
                format!("{:.1}%", 100.0 * r.page_coverage),
                format!("{:.1}%", 100.0 * r.register_coverage),
            ]);
        }
        table
    }

    /// Renders the exploration as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"derivative\":{},\"page_space\":{},\"platforms\":[",
            json_string(self.derivative.name()),
            self.page_space
        ));
        for (i, p) in self.platforms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", p.name()));
        }
        s.push_str("],\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"round\":{},\"stimulus\":\"{}\",\"scenarios\":{},\"total\":{},\"passed\":{},\"failed\":{},\"new_pages\":{},\"pages_hit\":{},\"page_coverage\":{:.4},\"register_coverage\":{:.4}}}",
                r.round,
                r.kind.name(),
                r.scenarios,
                r.campaign.total(),
                r.campaign.passed(),
                r.campaign.failed(),
                r.new_pages,
                r.pages_hit,
                r.page_coverage,
                r.register_coverage,
            ));
        }
        s.push_str(&format!(
            "],\"final_page_coverage\":{:.4}}}",
            self.final_page_coverage()
        ));
        s
    }
}

impl fmt::Display for ExplorationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

/// Builder for a closed-loop coverage exploration: round 1 draws
/// constrained-random stimulus, every later round draws
/// coverage-directed stimulus biased toward the holes measured so far.
///
/// Page coverage is cumulative, so it is monotonically non-decreasing
/// by construction; as long as unseen pages remain, a coverage-directed
/// round strictly improves on the constrained-random baseline because
/// its page sampling drains the unseen pool first.
#[derive(Clone)]
pub struct Exploration {
    derivative: DerivativeId,
    platforms: Vec<PlatformId>,
    rounds: usize,
    batch: usize,
    scenario_pages: usize,
    master_seed: u64,
    workers: usize,
    fuel: u64,
    artifact_store: Option<Arc<crate::artifacts::ArtifactStore>>,
    observer_factory: Option<crate::campaign::ObserverFactory>,
}

impl std::fmt::Debug for Exploration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exploration")
            .field("derivative", &self.derivative)
            .field("platforms", &self.platforms)
            .field("rounds", &self.rounds)
            .field("batch", &self.batch)
            .field("scenario_pages", &self.scenario_pages)
            .field("master_seed", &self.master_seed)
            .field("workers", &self.workers)
            .field("fuel", &self.fuel)
            .field("artifact_store", &self.artifact_store.is_some())
            .field("observer_factory", &self.observer_factory.is_some())
            .finish()
    }
}

impl Default for Exploration {
    fn default() -> Self {
        Self::new()
    }
}

impl Exploration {
    /// Defaults: SC88-A, the golden-model + RTL multi-platform preset,
    /// 3 rounds of 4 scenarios × 2 pages, machine-derived workers.
    pub fn new() -> Self {
        Self {
            derivative: DerivativeId::Sc88A,
            platforms: vec![PlatformId::GoldenModel, PlatformId::RtlSim],
            rounds: 3,
            batch: 4,
            scenario_pages: 2,
            master_seed: 0x5EED,
            workers: default_workers(),
            fuel: advm_sim::DEFAULT_FUEL,
            artifact_store: None,
            observer_factory: None,
        }
    }

    /// Sets the derivative to explore.
    pub fn derivative(mut self, derivative: DerivativeId) -> Self {
        self.derivative = derivative;
        self
    }

    /// Replaces the target platforms.
    pub fn platforms(mut self, platforms: impl IntoIterator<Item = PlatformId>) -> Self {
        self.platforms = platforms.into_iter().collect();
        self
    }

    /// Sets the number of closed-loop rounds (minimum 1).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Sets the scenarios drawn per round (minimum 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the page targets drawn per scenario (minimum 1).
    pub fn scenario_pages(mut self, pages: usize) -> Self {
        self.scenario_pages = pages.max(1);
        self
    }

    /// Sets the master seed every round's plan derives from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the campaign worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-run instruction budget.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Attaches a shared [`ArtifactStore`](crate::artifacts::ArtifactStore)
    /// to every round's campaign: generated scenarios that recur across
    /// rounds (or across explorations sharing the store) reuse their
    /// builds, predecode artifacts and prefix snapshots. Coverage and
    /// verdicts are identical with or without a store.
    pub fn artifact_store(mut self, store: Arc<crate::artifacts::ArtifactStore>) -> Self {
        self.artifact_store = Some(store);
        self
    }

    /// Attaches an observer factory: each round's campaign gets one
    /// fresh observer built by `factory`, streaming its
    /// [`CampaignEvent`](crate::campaign::CampaignEvent)s live.
    pub fn observe_with(mut self, factory: crate::campaign::ObserverFactory) -> Self {
        self.observer_factory = Some(factory);
        self
    }

    /// Runs the closed loop: generate → campaign → coverage →
    /// regenerate, for the configured number of rounds.
    ///
    /// # Errors
    ///
    /// Propagates unsatisfiable constraints and campaign build failures.
    pub fn run(&self) -> Result<ExplorationReport, ExplorationError> {
        let base_platform = self
            .platforms
            .first()
            .copied()
            .unwrap_or(PlatformId::GoldenModel);
        let constraints = GlobalsConstraints::new(self.derivative, base_platform)
            .with_test_page_count(self.scenario_pages);
        let derivative = Derivative::from_id(self.derivative);
        let mut pages = PageCoverage::new(&constraints);
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        // Carried across rounds: round k's feedback reuses the register
        // coverage sealed at the end of round k-1 instead of walking the
        // register map a second time over an unchanged touched-set.
        let mut registers = RegisterCoverage::compute(&derivative, &touched);
        let mut rounds: Vec<RoundReport> = Vec::new();

        for round in 1..=self.rounds {
            let seed = self.master_seed.wrapping_add(round as u64);
            let plan = if round == 1 {
                ScenarioEngine::new(seed)
                    .source(ConstrainedRandom::new(constraints.clone()))
                    .batch(self.batch)
                    .plan()?
            } else {
                let feedback = coverage_feedback(&pages, &registers);
                ScenarioEngine::new(seed)
                    .source(CoverageDirected::new(constraints.clone(), feedback))
                    .batch(self.batch)
                    .plan()?
            };

            let mut campaign = Campaign::new()
                .scenarios(plan.scenarios().iter().cloned())
                .platforms(self.platforms.iter().copied())
                .workers(self.workers)
                .fuel(self.fuel);
            if let Some(store) = &self.artifact_store {
                campaign = campaign.artifact_store(Arc::clone(store));
            }
            if let Some(factory) = &self.observer_factory {
                campaign = campaign.observe(factory());
            }
            let report = campaign.run()?;

            let before = pages.pages_hit();
            for scenario in plan.scenarios() {
                pages.record(scenario.globals());
            }
            for run in report.runs() {
                touched.extend(run.result.mmio_touched.iter().copied());
            }
            registers = RegisterCoverage::compute(&derivative, &touched);
            rounds.push(RoundReport {
                round,
                kind: if round == 1 {
                    ScenarioKind::ConstrainedRandom
                } else {
                    ScenarioKind::CoverageDirected
                },
                scenarios: plan.len(),
                new_pages: pages.pages_hit() - before,
                pages_hit: pages.pages_hit(),
                page_coverage: pages.ratio(),
                register_coverage: registers.overall_ratio(),
                campaign: report,
            });
        }

        Ok(ExplorationReport {
            derivative: self.derivative,
            platforms: self.platforms.clone(),
            page_space: constraints.legal_pages().len(),
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use advm_gen::ScenarioSource;

    use super::*;

    fn constraints() -> GlobalsConstraints {
        GlobalsConstraints::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
    }

    #[test]
    fn scenario_env_pins_the_drawn_stimulus() {
        let scenario = ConstrainedRandom::new(constraints()).draw(0, 99).unwrap();
        let env = scenario_env(&scenario);
        assert_eq!(env.name(), scenario.name());
        assert_eq!(env.cells().len(), scenario.test_pages().len());
        let expected = format!("TEST1_TARGET_PAGE .EQU 0x{:X}", scenario.test_pages()[0]);
        assert!(
            env.globals_text().contains(&expected),
            "{}",
            env.globals_text()
        );
        assert!(env.stimulus().is_some());
    }

    #[test]
    fn scenario_env_cells_pass_on_the_golden_model() {
        let scenario = ConstrainedRandom::new(constraints()).draw(0, 7).unwrap();
        let env = scenario_env(&scenario);
        for cell in env.cells() {
            let result = crate::build::run_cell(&env, cell.id()).unwrap();
            assert!(result.passed(), "{}: {result}", cell.id());
        }
    }

    #[test]
    fn targeted_modules_add_stimulus_cells() {
        let feedback = CoverageFeedback::new().with_weak_modules(["UART", "CRC"]);
        let scenario = CoverageDirected::new(constraints(), feedback)
            .draw(0, 3)
            .unwrap();
        assert_eq!(scenario.target_modules(), ["UART", "CRC"]);
        let env = scenario_env(&scenario);
        assert!(env.cell("TEST_UART_LOOPBACK").is_some());
        assert!(env.cell("TEST_CRC_UNIT").is_some());
    }

    #[test]
    fn fault_hunter_cells_pass_clean_on_every_platform() {
        use advm_soc::DerivativeId;
        for module in ["PAGE", "UART", "TB"] {
            let cells = fault_hunter_cells(module);
            assert!(!cells.is_empty(), "{module} has hunters");
            for platform in advm_soc::PlatformId::ALL {
                let env = ModuleTestEnv::new(
                    "HUNT",
                    EnvConfig::new(DerivativeId::Sc88A, platform),
                    cells.clone(),
                );
                for cell in env.cells() {
                    let result = crate::build::run_cell(&env, cell.id()).unwrap();
                    assert!(
                        result.passed(),
                        "{module}/{} on {platform}: {result}",
                        cell.id()
                    );
                }
            }
        }
        assert!(fault_hunter_cells("TIMER").is_empty(), "no hunters needed");
    }

    #[test]
    fn targeted_modules_carry_their_hunters() {
        let feedback = CoverageFeedback::new().with_weak_modules(["PAGE", "UART"]);
        let scenario = CoverageDirected::new(constraints(), feedback)
            .draw(0, 3)
            .unwrap();
        let env = scenario_env(&scenario);
        assert!(env.cell("TEST_HUNT_PAGE_MAP").is_some());
        assert!(env.cell("TEST_HUNT_UART_CLEAN").is_some());
        assert!(env.cell("TEST_UART_LOOPBACK").is_some());
    }

    #[test]
    fn directed_source_bridges_structured_testplans() {
        let plan = Testplan::new("PAGE")
            .with_entry("TEST_PAGE_SELECT_01", "select page 8")
            .with_entry("TEST_PAGE_SELECT_02", "select page 7");
        let source = directed_source(&plan, presets::default_config());
        assert_eq!(source.len_hint(), Some(2));
        let s = source.draw(1, 0).unwrap();
        assert_eq!(s.name(), "DIR_PAGE_SELECT_02");
        assert!(s.meta().detail.contains("testplan PAGE"));
    }

    #[test]
    fn feedback_ranks_weak_modules_worst_first() {
        let mut touched = BTreeSet::new();
        // Touch both PAGE registers the coverage test uses, nothing else.
        touched.insert(0xE_0100);
        touched.insert(0xE_0104);
        let registers = RegisterCoverage::compute(&Derivative::sc88a(), &touched);
        let pages = PageCoverage::new(&constraints());
        let feedback = coverage_feedback(&pages, &registers);
        assert!(!feedback.weak_modules().is_empty());
        // PAGE is partially covered; fully untouched modules come first.
        let page_pos = feedback.weak_modules().iter().position(|m| m == "PAGE");
        if let Some(pos) = page_pos {
            assert_eq!(pos, feedback.weak_modules().len() - 1, "{feedback:?}");
        }
    }

    #[test]
    fn exploration_closes_the_loop_with_monotone_coverage() {
        let report = Exploration::new()
            .rounds(3)
            .batch(3)
            .workers(2)
            .master_seed(0xC0FFEE)
            .run()
            .unwrap();
        assert_eq!(report.rounds().len(), 3);
        assert_eq!(report.failed(), 0, "scenario cells must stay green");
        // Page coverage is cumulative → monotonically non-decreasing.
        for pair in report.rounds().windows(2) {
            assert!(
                pair[1].pages_hit >= pair[0].pages_hit,
                "round {} regressed page coverage",
                pair[1].round
            );
        }
        // Coverage-directed rounds strictly improve on the round-1
        // constrained-random baseline while unseen pages remain.
        let baseline = report.rounds()[0].pages_hit;
        assert!(
            report.rounds()[1..].iter().any(|r| r.pages_hit > baseline),
            "no coverage-directed round improved on the baseline: {report}"
        );
        assert!(report.rounds()[1..]
            .iter()
            .all(|r| r.kind == ScenarioKind::CoverageDirected));
        // Register coverage is cumulative too.
        for pair in report.rounds().windows(2) {
            assert!(pair[1].register_coverage >= pair[0].register_coverage - 1e-9);
        }
    }

    #[test]
    fn exploration_report_json_is_balanced() {
        let report = Exploration::new()
            .rounds(2)
            .batch(2)
            .platforms([PlatformId::GoldenModel])
            .workers(2)
            .run()
            .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"round\":2"), "{json}");
        assert!(
            json.contains("\"stimulus\":\"coverage-directed\""),
            "{json}"
        );
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }
}
