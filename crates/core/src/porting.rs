//! The porting engine: re-targeting an environment to a new derivative,
//! platform or embedded-software release.
//!
//! This is the methodology's headline operation. Porting an ADVM
//! environment *regenerates the abstraction layer and nothing else*; the
//! returned [`ChangeSet`] is the measured cost, which the experiments
//! compare against the hardwired baseline's cost (where every test file
//! must be edited).

use advm_metrics::{diff_trees, ChangeSet};

use crate::env::{EnvConfig, ModuleTestEnv};

/// The result of a porting operation.
#[derive(Debug, Clone)]
pub struct PortOutcome {
    /// The re-targeted environment.
    pub env: ModuleTestEnv,
    /// What changed, file by file.
    pub changes: ChangeSet,
}

/// Ports an environment to a new configuration, returning the new
/// environment and the change-set relative to the old one.
pub fn port_env(env: &ModuleTestEnv, config: EnvConfig) -> PortOutcome {
    let before = env.tree();
    let mut ported = env.clone();
    ported.reconfigure(config);
    let after = ported.tree();
    PortOutcome {
        env: ported,
        changes: diff_trees(&before, &after),
    }
}

/// Counts the test files a change-set touched (anything under a `TEST_*`
/// cell directory) — the quantity the methodology drives to zero.
pub fn test_files_touched(changes: &ChangeSet) -> usize {
    changes
        .changes()
        .iter()
        .filter(|c| {
            c.path
                .split('/')
                .nth(1)
                .is_some_and(|d| d.starts_with("TEST_"))
        })
        .count()
}

/// Counts the abstraction-layer files a change-set touched.
pub fn abstraction_files_touched(changes: &ChangeSet) -> usize {
    changes
        .changes()
        .iter()
        .filter(|c| c.path.contains("/Abstraction_Layer/"))
        .count()
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, EsVersion, PlatformId};

    use crate::basefuncs::BaseFuncsStyle;
    use crate::build::run_cell;
    use crate::env::{EnvConfig, TestCell};

    use super::*;

    fn page_test_source() -> &'static str {
        "\
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST1_TARGET_PAGE
_main:
    CALL Base_Init_Register
    LOAD ArgA, #TEST_PAGE
    CALL Base_Select_Page
    LOAD ArgA, #TEST_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
"
    }

    fn page_env() -> ModuleTestEnv {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new(
                "TEST_PAGE_SELECT",
                "page select/readback",
                page_test_source(),
            )],
        )
    }

    #[test]
    fn port_to_derivative_touches_zero_test_files() {
        let env = page_env();
        for target in [
            DerivativeId::Sc88B,
            DerivativeId::Sc88C,
            DerivativeId::Sc88D,
        ] {
            let outcome = port_env(&env, EnvConfig::new(target, PlatformId::GoldenModel));
            assert_eq!(
                test_files_touched(&outcome.changes),
                0,
                "{target:?}: ADVM must not touch tests"
            );
            assert!(
                abstraction_files_touched(&outcome.changes) >= 1,
                "{target:?}"
            );
        }
    }

    #[test]
    fn ported_env_passes_on_every_derivative() {
        // The paper's Figure 6 claim, end to end: the same test source,
        // re-targeted only through the abstraction layer, passes on the
        // base chip, the moved-field spec revision, the widened-field
        // derivative and the renamed/relocated derivative.
        let env = page_env();
        let before = run_cell(&env, "TEST_PAGE_SELECT").unwrap();
        assert!(before.passed(), "baseline: {before}");
        for target in [
            DerivativeId::Sc88B,
            DerivativeId::Sc88C,
            DerivativeId::Sc88D,
        ] {
            let outcome = port_env(&env, EnvConfig::new(target, PlatformId::GoldenModel));
            let result = run_cell(&outcome.env, "TEST_PAGE_SELECT").unwrap();
            assert!(result.passed(), "{target:?}: {result}");
        }
    }

    #[test]
    fn stale_globals_really_fail_on_new_derivative() {
        // Sanity check that porting is *necessary*: running the SC88-A
        // build against SC88-B hardware (moved page field) must fail —
        // otherwise the port measured nothing.
        let env = page_env();
        let mut stale = env.clone();
        // Rebind the platform model to SC88-B without regenerating the
        // abstraction layer: simulate "forgot to port".
        let image = crate::build::build_cell(&stale, "TEST_PAGE_SELECT").unwrap();
        let derivative = advm_soc::Derivative::sc88b();
        let mut platform = advm_sim::Platform::new(PlatformId::GoldenModel, &derivative);
        platform.load_image(&image);
        let result = platform.run();
        assert!(
            !result.passed(),
            "stale build must fail on SC88-B: {result}"
        );
        // And the properly ported build passes (proved in the test above).
        stale.reconfigure(EnvConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel));
        let result = run_cell(&stale, "TEST_PAGE_SELECT").unwrap();
        assert!(result.passed());
    }

    #[test]
    fn platform_port_also_touches_only_globals() {
        let env = page_env();
        let outcome = port_env(
            &env,
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GateSim),
        );
        assert_eq!(test_files_touched(&outcome.changes), 0);
        // Only Globals.inc changes (platform knobs); the base functions
        // are platform-independent text.
        assert_eq!(
            outcome.changes.files_touched(),
            2,
            "globals + env config record"
        );
    }

    #[test]
    fn es_version_port_with_version_aware_library_touches_only_globals() {
        let env = page_env();
        let outcome = port_env(
            &env,
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
                .with_es_version(EsVersion::V2),
        );
        assert_eq!(test_files_touched(&outcome.changes), 0);
        assert!(outcome
            .changes
            .change("PAGE/Abstraction_Layer/Globals.inc")
            .is_some());
    }

    #[test]
    fn style_refactor_touches_only_base_functions() {
        let mut env = page_env();
        env.reconfigure(
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
                .with_style(BaseFuncsStyle::V1Only),
        );
        let outcome = port_env(&env, env.config().with_style(BaseFuncsStyle::VersionAware));
        assert_eq!(test_files_touched(&outcome.changes), 0);
        assert!(outcome
            .changes
            .change("PAGE/Abstraction_Layer/Base_Functions.asm")
            .is_some());
    }
}
