//! Register-access coverage.
//!
//! §1 of the paper frames directed testing as an attempt "to cover as
//! many functional modes of operation as possible". This module measures
//! the most basic form of that coverage: which of the derivative's
//! memory-mapped registers a regression actually touched. Untouched
//! registers are the holes in the test plan.

use std::collections::BTreeSet;
use std::fmt;

use advm_metrics::Table;
use advm_soc::Derivative;
use serde::{Deserialize, Serialize};

use crate::campaign::CampaignReport;

/// Coverage of one module's registers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleCoverage {
    /// Module name.
    pub module: String,
    /// Registers in the module.
    pub total: usize,
    /// Registers touched by at least one run.
    pub touched: usize,
    /// Names of untouched registers (the test-plan holes).
    pub missing: Vec<String>,
}

impl ModuleCoverage {
    /// Coverage ratio in `0.0..=1.0`.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.touched as f64 / self.total as f64
        }
    }
}

/// Register coverage of a whole derivative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterCoverage {
    modules: Vec<ModuleCoverage>,
}

impl RegisterCoverage {
    /// Computes coverage of `derivative`'s register map from a set of
    /// touched MMIO addresses.
    pub fn compute(derivative: &Derivative, touched: &BTreeSet<u32>) -> Self {
        let map = derivative.regmap();
        let mut modules = Vec::new();
        for module in map.modules() {
            let mut hit = 0;
            let mut missing = Vec::new();
            for reg in module.registers() {
                let addr = module.base() + reg.offset();
                if touched.contains(&addr) {
                    hit += 1;
                } else {
                    missing.push(reg.name().to_owned());
                }
            }
            modules.push(ModuleCoverage {
                module: module.name().to_owned(),
                total: module.registers().len(),
                touched: hit,
                missing,
            });
        }
        Self { modules }
    }

    /// Computes coverage from everything a campaign touched.
    pub fn of_regression(derivative: &Derivative, report: &CampaignReport) -> Self {
        let touched: BTreeSet<u32> = report
            .runs()
            .iter()
            .flat_map(|r| r.result.mmio_touched.iter().copied())
            .collect();
        Self::compute(derivative, &touched)
    }

    /// Per-module coverage entries.
    pub fn modules(&self) -> &[ModuleCoverage] {
        &self.modules
    }

    /// One module's coverage, by name.
    pub fn module(&self, name: &str) -> Option<&ModuleCoverage> {
        self.modules.iter().find(|m| m.module == name)
    }

    /// Overall coverage ratio across all registers.
    pub fn overall_ratio(&self) -> f64 {
        let total: usize = self.modules.iter().map(|m| m.total).sum();
        let touched: usize = self.modules.iter().map(|m| m.touched).sum();
        if total == 0 {
            1.0
        } else {
            touched as f64 / total as f64
        }
    }

    /// Renders the coverage table (module, touched/total, holes).
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Register coverage",
            &["module", "touched", "coverage", "untouched registers"],
        );
        for m in &self.modules {
            table.row(&[
                m.module.clone(),
                format!("{}/{}", m.touched, m.total),
                format!("{:.0}%", 100.0 * m.ratio()),
                if m.missing.is_empty() {
                    "-".to_owned()
                } else {
                    m.missing.join(", ")
                },
            ]);
        }
        table
    }
}

impl fmt::Display for RegisterCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::PlatformId;

    use crate::campaign::Campaign;
    use crate::presets::{default_config, standard_system};

    use super::*;

    #[test]
    fn empty_touched_set_covers_nothing() {
        let coverage = RegisterCoverage::compute(&Derivative::sc88a(), &BTreeSet::new());
        assert_eq!(coverage.overall_ratio(), 0.0);
        let page = coverage.module("PAGE").unwrap();
        assert_eq!(page.touched, 0);
        assert!(page.missing.contains(&"PAGE_CTRL".to_owned()));
    }

    #[test]
    fn touched_addresses_map_to_registers() {
        let mut touched = BTreeSet::new();
        touched.insert(0xE_0100); // PAGE_CTRL
        touched.insert(0xE_0104); // PAGE_STATUS
        let coverage = RegisterCoverage::compute(&Derivative::sc88a(), &touched);
        let page = coverage.module("PAGE").unwrap();
        assert_eq!(page.touched, 2);
        assert!(!page.missing.contains(&"PAGE_CTRL".to_owned()));
        assert!(page.missing.contains(&"PAGE_MAP".to_owned()));
    }

    #[test]
    fn standard_suite_covers_most_of_the_chip() {
        let envs = standard_system(default_config());
        let report = Campaign::new()
            .envs(envs)
            .platform(PlatformId::GoldenModel)
            .run()
            .unwrap();
        let coverage = RegisterCoverage::of_regression(&Derivative::sc88a(), &report);
        assert!(
            coverage.overall_ratio() > 0.7,
            "catalogued suite should cover most registers:\n{coverage}"
        );
        // The modules under explicit test are fully or nearly covered.
        for name in ["PAGE", "UART", "TIMER", "NVMC", "CRC"] {
            let m = coverage.module(name).unwrap();
            assert!(m.ratio() > 0.7, "{name} coverage too low:\n{coverage}");
        }
    }

    #[test]
    fn renamed_register_reported_under_hardware_name() {
        let coverage = RegisterCoverage::compute(&Derivative::sc88d(), &BTreeSet::new());
        let page = coverage.module("PAGE").unwrap();
        assert!(page.missing.contains(&"PAGE_CONF".to_owned()));
    }
}
