//! Catalogued test environments — the workloads of the reproduction.
//!
//! These are the module test environments a verification team would have
//! written for the SC88 family, expressed exactly as the paper
//! prescribes: every test includes `Globals.inc`, references hardware
//! only through defines, and calls global-layer functionality only
//! through base functions. The experiment binaries and the benchmark
//! harness build on these presets.

use advm_soc::{DerivativeId, PlatformId};

use crate::env::{EnvConfig, ModuleTestEnv, TestCell};

/// The standard configuration most presets start from.
pub fn default_config() -> EnvConfig {
    EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
}

const TEST_EPILOGUE: &str = "\
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
";

/// The PAGE environment: `n` page-select/read-back tests in the style of
/// the paper's Figure 6 (test *i* targets `TESTi_TARGET_PAGE`).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn page_env(config: EnvConfig, n: usize) -> ModuleTestEnv {
    assert!(n > 0, "page_env needs at least one test");
    let mut cells: Vec<TestCell> = (1..=n)
        .map(|i| {
            let source = format!(
                "\
;; Code for test {i} (Figure 6 pattern)
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST{i}_TARGET_PAGE
_main:
    CALL Base_Init_Register
    MOVI d14, #0
    INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    OR d14, d14, #PAGE_ENABLE_MASK
    STORE [PAGE_CTRL_ADDR], d14
    LOAD ArgA, #TEST_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
{TEST_EPILOGUE}"
            );
            TestCell::new(
                format!("TEST_PAGE_SELECT_{i:02}"),
                format!("select target page {i} and read it back"),
                source,
            )
        })
        .collect();
    cells.push(TestCell::new(
        "TEST_PAGE_WINDOW",
        "window register reflects the selected page numerically",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #TEST1_TARGET_PAGE
    CALL Base_Select_Page
    LOAD d1, [PAGE_WINDOW_ADDR]
    LOAD d2, #TEST1_TARGET_PAGE << PAGE_WINDOW_SHIFT
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    ));
    ModuleTestEnv::new("PAGE", config, cells)
}

/// A PAGE test that *abuses* the structure (the paper's Figure 2): it
/// calls the embedded software directly and hardwires the control
/// register address and field geometry. It passes on the configuration
/// it was written for and silently breaks on every derivative.
pub fn violating_page_cell(index: usize) -> TestCell {
    // Note the failure mode this models: a test that hardwires *both* the
    // write and the read path is self-consistently wrong (it programs the
    // wrong bits and checks them through the same wrong bits), so the
    // typical real-world abuse mixes a hardwired fast path with proper
    // library calls elsewhere — and that mix is what breaks on the next
    // derivative.
    TestCell::new(
        format!("TEST_PAGE_ABUSE_{index:02}"),
        "figure 2 abuse: direct ES call + hardwired write path",
        "\
;; Figure 2 abuse: bypasses the abstraction layer on the write path
.INCLUDE Globals.inc
_main:
    LOAD CallAddr, ES_INIT_REGISTER   ; direct global-layer call
    CALL CallAddr
    MOVI d14, #0
    INSERT d14, d14, #8, 0, 5         ; hardwired field geometry
    ORI d14, d14, #0x100
    STORE [0xE0100], d14              ; hardwired PAGE_CTRL address
    CALL Base_Read_Active_Page        ; readback via the proper wrapper
    CMP RetVal, #8
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
    )
}

/// The ES environment: tests exercising every wrapped embedded-software
/// function — the Figure 7 workload.
pub fn es_env(config: EnvConfig) -> ModuleTestEnv {
    let init = TestCell::new(
        "TEST_ES_INIT",
        "Base_Init_Register leaves the page module enabled",
        "\
;; Figure 7 pattern: wrapped ES call
.INCLUDE Globals.inc
_main:
    CALL Base_Init_Register
    LOAD d1, [PAGE_CTRL_ADDR]
    AND d1, d1, #PAGE_ENABLE_MASK
    CMP d1, #0
    JEQ t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
    );
    let nvm = TestCell::new(
        "TEST_ES_NVM_WRITE",
        "wrapped NVM write commits and reads back",
        format!(
            "\
.INCLUDE Globals.inc
NVM_OFF .EQU 0x200
_main:
    CALL Base_Nvm_Unlock
    LOAD ArgA, #NVM_OFF
    LOAD ArgB, #0xCAFEBABE
    CALL Base_Nvm_Write
    LOAD d1, [NVM_BASE + NVM_OFF]
    LOAD d2, #0xCAFEBABE
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let memcpy = TestCell::new(
        "TEST_ES_MEMCPY",
        "wrapped memcpy copies four words",
        format!(
            "\
.INCLUDE Globals.inc
SRC .EQU TEST_DATA_BASE
DST .EQU TEST_DATA_BASE + 0x100
_main:
    LOAD a4, #SRC
    LOAD d1, #0x11111111
    STORE [a4], d1
    LOAD d1, #0x22222222
    STORE [a4 + 4], d1
    LOAD d1, #0x33333333
    STORE [a4 + 8], d1
    LOAD d1, #0x44444444
    STORE [a4 + 12], d1
    LOAD a4, #DST
    LOAD a5, #SRC
    LOAD ArgA, #4
    CALL Base_Memcpy
    LOAD d1, [DST + 8]
    LOAD d2, #0x33333333
    CMP d1, d2
    JNE t_fail
    LOAD d1, [DST + 12]
    LOAD d2, #0x44444444
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let checksum = TestCell::new(
        "TEST_ES_CHECKSUM",
        "wrapped checksum sums three words into RetVal",
        format!(
            "\
.INCLUDE Globals.inc
SRC .EQU TEST_DATA_BASE
_main:
    LOAD a4, #SRC
    LOAD d1, #10
    STORE [a4], d1
    LOAD d1, #20
    STORE [a4 + 4], d1
    LOAD d1, #12
    STORE [a4 + 8], d1
    LOAD a4, #SRC
    LOAD ArgA, #3
    CALL Base_Checksum
    CMP RetVal, #42
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let uart = TestCell::new(
        "TEST_ES_UART_ECHO",
        "wrapped UART send echoes through loopback",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Uart_Init_Loopback
    LOAD ArgA, #0x5A
    CALL Base_Uart_Send
    CALL Base_Uart_Recv
    LOAD d1, #0x5A
    CMP RetVal, d1
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    ModuleTestEnv::new("ES_WRAP", config, vec![init, nvm, memcpy, checksum, uart])
}

/// The UART environment.
pub fn uart_env(config: EnvConfig) -> ModuleTestEnv {
    let loopback = TestCell::new(
        "TEST_UART_LOOPBACK",
        "loopback echo of one byte",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Uart_Init_Loopback
    LOAD ArgA, #'A'
    CALL Base_Uart_Send
    CALL Base_Uart_Recv
    LOAD d1, #'A'
    CMP RetVal, d1
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let burst = TestCell::new(
        "TEST_UART_BURST",
        "three-byte loopback burst with per-byte check",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Uart_Init_Loopback
    LOAD d10, #3           ; bytes remaining
    LOAD d11, #0x30        ; '0'
t_loop:
    MOV ArgA, d11
    CALL Base_Uart_Send
    CALL Base_Uart_Recv
    CMP RetVal, d11
    JNE t_fail
    ADD d11, d11, #1
    SUB d10, d10, #1
    CMP d10, #0
    JNE t_loop
{TEST_EPILOGUE}"
        ),
    );
    let overrun = TestCell::new(
        "TEST_UART_OVERRUN",
        "second unread loopback byte raises OVERRUN",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Uart_Init_Loopback
    LOAD ArgA, #0x11
    CALL Base_Uart_Send
    LOAD ArgA, #0x22
    CALL Base_Uart_Send          ; receiver still holds 0x11
    LOAD d1, [UART_STATUS_ADDR]
    AND d1, d1, #UART_OVERRUN_MASK
    CMP d1, #0
    JEQ t_fail
    CALL Base_Uart_Recv          ; drain so the fifo ends clean
    LOAD d1, #0x22
    CMP RetVal, d1
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    ModuleTestEnv::new("UART", config, vec![loopback, burst, overrun])
}

/// The NVM environment.
pub fn nvm_env(config: EnvConfig) -> ModuleTestEnv {
    let unlock = TestCell::new(
        "TEST_NVM_UNLOCK",
        "key sequence unlocks the controller",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Nvm_Unlock
    LOAD d1, [NVMC_STATUS_ADDR]
    AND d1, d1, #2          ; UNLOCKED bit
    CMP d1, #0
    JEQ t_fail
{TEST_EPILOGUE}"
        ),
    );
    let locked = TestCell::new(
        "TEST_NVM_LOCKED_ERROR",
        "write without unlock raises the error flag",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #0x100
    STORE [NVMC_ADDR_ADDR], d1
    LOAD d1, #0xDEAD
    STORE [NVMC_DATA_ADDR], d1
    LOAD d1, #1
    STORE [NVMC_CMD_ADDR], d1
    LOAD d1, [NVMC_STATUS_ADDR]
    AND d1, d1, #4          ; ERROR bit
    CMP d1, #0
    JEQ t_fail
{TEST_EPILOGUE}"
        ),
    );
    let readback = TestCell::new(
        "TEST_NVM_WRITE_READBACK",
        "unlocked write commits after the busy time",
        format!(
            "\
.INCLUDE Globals.inc
NVM_OFF .EQU 0x300
_main:
    CALL Base_Nvm_Unlock
    LOAD ArgA, #NVM_OFF
    LOAD ArgB, #0x12345678
    CALL Base_Nvm_Write
    LOAD d1, [NVM_BASE + NVM_OFF]
    LOAD d2, #0x12345678
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let erase = TestCell::new(
        "TEST_NVM_ERASE",
        "page erase restores the erased state after a write",
        format!(
            "\
.INCLUDE Globals.inc
NVM_OFF .EQU 0x500
_main:
    CALL Base_Nvm_Unlock
    LOAD ArgA, #NVM_OFF
    LOAD ArgB, #0x0BADF00D
    CALL Base_Nvm_Write
    LOAD d1, [NVM_BASE + NVM_OFF]
    LOAD d2, #0x0BADF00D
    CMP d1, d2
    JNE t_fail
    LOAD ArgA, #NVM_OFF
    CALL Base_Nvm_Erase
    LOAD d1, [NVM_BASE + NVM_OFF]
    LOAD d2, #0xFFFFFFFF
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    ModuleTestEnv::new("NVM", config, vec![unlock, locked, readback, erase])
}

/// The TIMER environment: polled expiry plus a hook-installed interrupt.
pub fn timer_env(config: EnvConfig) -> ModuleTestEnv {
    let poll = TestCell::new(
        "TEST_TIMER_POLL",
        "one-shot timer expires within the polling budget",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #50
    LOAD ArgB, #1           ; EN, one-shot, no interrupt
    CALL Base_Timer_Start
    LOAD d12, #POLL_LIMIT
t_wait:
    CMP d12, #0
    JEQ t_fail
    SUB d12, d12, #1
    LOAD d14, [TIMER_STATUS_ADDR]
    AND d14, d14, #TIMER_EXPIRED_MASK
    CMP d14, #0
    JEQ t_wait
{TEST_EPILOGUE}"
        ),
    );
    let irq = TestCell::new(
        "TEST_TIMER_IRQ",
        "timer interrupt reaches a hook-installed handler",
        "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #0
    STORE [TEST_DATA_BASE], d1
    LOAD ArgA, t_isr
    CALL Base_Install_Irq0_Hook
    LOAD ArgA, #1
    CALL Base_Intc_Enable
    LOAD ArgA, #20
    LOAD ArgB, #3           ; EN | IE
    CALL Base_Timer_Start
    EI
    LOAD d12, #POLL_LIMIT
t_wait:
    CMP d12, #0
    JEQ t_timeout
    SUB d12, d12, #1
    LOAD d14, [TEST_DATA_BASE]
    CMP d14, #0
    JEQ t_wait
    DI
    CALL Base_Report_Pass
    RETURN
t_timeout:
    DI
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
t_isr:
    LOAD d13, #1
    STORE [TEST_DATA_BASE], d13
    LOAD d13, #TIMER_EXPIRED_MASK
    STORE [TIMER_STATUS_ADDR], d13
    LOAD d13, #0
    STORE [INTC_ACK_ADDR], d13
    RETURN
",
    );
    let periodic = TestCell::new(
        "TEST_TIMER_PERIODIC",
        "periodic timer expires three times with reload",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #30
    LOAD ArgB, #TIMER_EN_MASK | TIMER_PERIODIC_MASK
    CALL Base_Timer_Start
    LOAD d10, #3            ; expirations to observe
t_outer:
    LOAD d12, #POLL_LIMIT
t_wait:
    CMP d12, #0
    JEQ t_fail
    SUB d12, d12, #1
    LOAD d14, [TIMER_STATUS_ADDR]
    AND d14, d14, #TIMER_EXPIRED_MASK
    CMP d14, #0
    JEQ t_wait
    CALL Base_Timer_Clear_Expired
    SUB d10, d10, #1
    CMP d10, #0
    JNE t_outer
{TEST_EPILOGUE}"
        ),
    );
    let value = TestCell::new(
        "TEST_TIMER_VALUE",
        "running timer's VALUE register counts down",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD ArgA, #10000
    LOAD ArgB, #TIMER_EN_MASK
    CALL Base_Timer_Start
    LOAD d1, [TIMER_VALUE_ADDR]
    LOAD ArgA, #50
    CALL Base_Delay
    LOAD d2, [TIMER_VALUE_ADDR]
    CMP d2, d1
    JGE t_fail              ; must have counted down
{TEST_EPILOGUE}"
        ),
    );
    ModuleTestEnv::new("TIMER", config, vec![poll, irq, periodic, value])
}

/// The WDT environment, including the platform-conditional bite test.
pub fn wdt_env(config: EnvConfig) -> ModuleTestEnv {
    let service = TestCell::new(
        "TEST_WDT_SERVICE",
        "serviced watchdog stays quiet",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Wdt_Init
    LOAD d10, #5
t_loop:
    CALL Base_Wdt_Service
    LOAD ArgA, #10
    CALL Base_Delay
    SUB d10, d10, #1
    CMP d10, #0
    JNE t_loop
    JMP t_pass
t_pass:
{TEST_EPILOGUE}"
        ),
    );
    let bite = TestCell::new(
        "TEST_WDT_BITE",
        "unserviced watchdog reaches the installed hook (skipped where the platform disables the WDT)",
        "\
.INCLUDE Globals.inc
.IF WDT_DISABLE
; This platform runs too slowly for realistic watchdog timing; the
; globals file disables the WDT, and this test degrades to a no-op pass —
; the paper's platform-control mechanism at work.
_main:
    CALL Base_Report_Pass
    RETURN
.ELSE
_main:
    LOAD ArgA, t_hook
    CALL Base_Install_Wdt_Hook
    LOAD d1, #200
    STORE [WDT_PERIOD_ADDR], d1
    LOAD d1, #1
    STORE [WDT_CTRL_ADDR], d1
    LOAD d12, #POLL_LIMIT
t_spin:
    CMP d12, #0
    JEQ t_timeout
    SUB d12, d12, #1
    JMP t_spin
t_timeout:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
t_hook:
    CALL Base_Report_Pass
    RETURN
.ENDIF
",
    );
    ModuleTestEnv::new("WDT", config, vec![service, bite])
}

/// The CRC environment: the hardware unit against an independently
/// computed expectation.
pub fn crc_env(config: EnvConfig) -> ModuleTestEnv {
    let expected = advm_sim::periph::crc::crc32(b"12345678");
    let unit = TestCell::new(
        "TEST_CRC_UNIT",
        "hardware CRC of \"12345678\" matches the software reference",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Crc_Init
    LOAD ArgA, #0x34333231   ; \"1234\" little endian
    CALL Base_Crc_Add
    LOAD ArgA, #0x38373635   ; \"5678\"
    CALL Base_Crc_Add
    CALL Base_Crc_Result
    LOAD d1, #0x{expected:08X}
    CMP RetVal, d1
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let reinit = TestCell::new(
        "TEST_CRC_REINIT",
        "INIT resets the accumulator between messages",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Crc_Init
    LOAD ArgA, #0xFFFFFFFF
    CALL Base_Crc_Add
    CALL Base_Crc_Init
    LOAD ArgA, #0x34333231
    CALL Base_Crc_Add
    LOAD ArgA, #0x38373635
    CALL Base_Crc_Add
    CALL Base_Crc_Result
    LOAD d1, #0x{expected:08X}
    CMP RetVal, d1
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    ModuleTestEnv::new("CRC", config, vec![unit, reinit])
}

/// The REGISTER environment — the "control and status register test"
/// class the paper names: reset-value checks driven entirely by
/// `Globals.inc` defines.
pub fn register_env(config: EnvConfig) -> ModuleTestEnv {
    let uart = TestCell::new(
        "TEST_RESET_UART",
        "UART registers hold their documented reset values",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, [UART_CTRL_ADDR]
    LOAD d2, #UART_CTRL_RESET
    CMP d1, d2
    JNE t_fail
    LOAD d1, [UART_BAUD_ADDR]
    LOAD d2, #UART_BAUD_RESET
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let page = TestCell::new(
        "TEST_RESET_PAGE",
        "page module registers hold their reset values",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, [PAGE_CTRL_ADDR]
    LOAD d2, #PAGE_PAGE_CTRL_RESET
    CMP d1, d2
    JNE t_fail
    LOAD d1, [PAGE_MAP_ADDR]
    LOAD d2, #PAGE_PAGE_MAP_RESET
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let wdt = TestCell::new(
        "TEST_RESET_WDT",
        "watchdog period resets to its documented default",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, [WDT_PERIOD_ADDR]
    LOAD d2, #WDT_PERIOD_RESET
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let nvmc = TestCell::new(
        "TEST_RESET_NVMC",
        "NVM controller registers hold their reset values",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, [NVMC_CTRL_ADDR]
    LOAD d2, #NVMC_CTRL_RESET
    CMP d1, d2
    JNE t_fail
    LOAD d1, [NVMC_ADDR_ADDR]
    LOAD d2, #NVMC_ADDR_RESET
    CMP d1, d2
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let intc = TestCell::new(
        "TEST_INTC_RAISE_ACK",
        "software-raised line latches in PENDING and clears on ACK",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, [INTC_PENDING_ADDR]
    CMP d1, #0
    JNE t_fail              ; nothing pending at reset
    LOAD d1, #5
    STORE [INTC_RAISE_ADDR], d1
    LOAD d1, [INTC_PENDING_ADDR]
    LOAD d2, #1 << 5
    CMP d1, d2
    JNE t_fail              ; line 5 latched (masked from the CPU)
    LOAD d1, #5
    STORE [INTC_ACK_ADDR], d1
    LOAD d1, [INTC_PENDING_ADDR]
    CMP d1, #0
    JNE t_fail
{TEST_EPILOGUE}"
        ),
    );
    let tb = TestCell::new(
        "TEST_TB_IDENTITY",
        "the platform identifies itself and time advances",
        format!(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, [TB_PLATFORM_ADDR]
    LOAD d2, #PLATFORM_ID
    CMP d1, d2
    JNE t_fail              ; the build matches the platform it runs on
    LOAD d3, [TB_TICKS_ADDR]
    LOAD d1, #0x5EED
    STORE [TB_SCRATCH_ADDR], d1
    LOAD d2, [TB_SCRATCH_ADDR]
    CMP d2, d1
    JNE t_fail
    LOAD d4, [TB_TICKS_ADDR]
    CMP d4, d3
    JLE t_fail              ; ticks are monotonic
{TEST_EPILOGUE}"
        ),
    );
    ModuleTestEnv::new("REGISTER", config, vec![uart, page, wdt, nvmc, intc, tb])
}

/// All catalogued environments under one configuration — the system
/// environment of Figure 4/5.
pub fn standard_system(config: EnvConfig) -> Vec<ModuleTestEnv> {
    vec![
        page_env(config, 3),
        es_env(config),
        uart_env(config),
        nvm_env(config),
        timer_env(config),
        wdt_env(config),
        crc_env(config),
        register_env(config),
    ]
}

#[cfg(test)]
mod tests {
    use crate::build::run_cell;
    use crate::campaign::Campaign;
    use crate::system::SystemVerificationEnv;

    use super::*;

    /// Every preset cell must pass on the default configuration.
    #[test]
    fn all_presets_pass_on_golden_model() {
        for env in standard_system(default_config()) {
            for cell in env.cells() {
                let result = run_cell(&env, cell.id())
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", env.name(), cell.id()));
                assert!(result.passed(), "{}/{}: {result}", env.name(), cell.id());
            }
        }
    }

    /// The full preset suite passes on every platform.
    #[test]
    fn standard_system_full_regression_is_green() {
        let envs = standard_system(default_config());
        let report = Campaign::new().envs(envs).run().unwrap();
        assert_eq!(report.failed(), 0, "matrix:\n{}", report.matrix());
        assert!(report.divergences().is_empty());
        // Platform-independent cells dedupe across golden/RTL at least.
        assert!(report.cache_hits() > 0);
    }

    /// The preset system validates against Figure 4/5 rules.
    #[test]
    fn standard_system_validates() {
        let sys = SystemVerificationEnv::new(
            "ADVM_System_Verification_Environment",
            standard_system(default_config()),
        );
        let issues = sys.validate();
        assert!(issues.is_empty(), "{issues:?}");
    }

    /// The violating cell passes where it was written but is flagged.
    #[test]
    fn violating_cell_passes_but_is_flagged() {
        let mut env = page_env(default_config(), 1);
        let cells = vec![env.cells()[0].clone(), violating_page_cell(1)];
        env = ModuleTestEnv::new("PAGE", default_config(), cells);
        let result = run_cell(&env, "TEST_PAGE_ABUSE_01").unwrap();
        assert!(result.passed(), "abuse passes on its home config: {result}");
        let violations = crate::violation::check_env(&env);
        assert!(violations.len() >= 2, "{violations:?}");
    }

    /// Preset tests survive porting to every derivative; the violating
    /// test does not.
    #[test]
    fn presets_port_cleanly_but_violations_break() {
        use crate::porting::port_env;
        let clean = page_env(default_config(), 1);
        let abusive = ModuleTestEnv::new(
            "PAGE",
            default_config(),
            vec![clean.cells()[0].clone(), violating_page_cell(1)],
        );
        let target = EnvConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel);
        let ported = port_env(&abusive, target).env;
        let good = run_cell(&ported, "TEST_PAGE_SELECT_01").unwrap();
        assert!(good.passed(), "clean test survives the port: {good}");
        let bad = run_cell(&ported, "TEST_PAGE_ABUSE_01").unwrap();
        assert!(!bad.passed(), "hardwired test must break on SC88-B: {bad}");
    }
}
