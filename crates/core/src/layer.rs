//! The three-layer model of Figure 1.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::env::{ABSTRACTION_DIR, TESTPLAN_FILE};

/// The layer a file belongs to in the paper's Figure 1 structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Test layer: the test cells themselves.
    Test,
    /// Abstraction layer: `Globals.inc`, `Base_Functions.asm`.
    Abstraction,
    /// Global layer: embedded software, trap handlers, register
    /// definitions — anything the environment owner does not control.
    Global,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::Test => "test layer",
            Layer::Abstraction => "abstraction layer",
            Layer::Global => "global layer",
        })
    }
}

/// Classifies a file path within an environment tree.
///
/// Paths under `<env>/Abstraction_Layer/` (and the test plan, which the
/// abstraction layer owner maintains) are abstraction layer; paths under
/// `<env>/TEST_*/` are test layer; everything else — global libraries,
/// embedded software — is global layer.
pub fn classify_path(path: &str) -> Layer {
    let mut parts = path.split('/');
    let _env = parts.next();
    match parts.next() {
        Some(second) if second == ABSTRACTION_DIR || second == TESTPLAN_FILE => Layer::Abstraction,
        Some(second) if second.starts_with("TEST_") => Layer::Test,
        _ => Layer::Global,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_figure1() {
        assert_eq!(classify_path("PAGE/TEST_X/test.asm"), Layer::Test);
        assert_eq!(
            classify_path("PAGE/Abstraction_Layer/Globals.inc"),
            Layer::Abstraction
        );
        assert_eq!(
            classify_path("PAGE/Abstraction_Layer/Base_Functions.asm"),
            Layer::Abstraction
        );
        assert_eq!(classify_path("PAGE/TESTPLAN.TXT"), Layer::Abstraction);
        assert_eq!(
            classify_path("Global_Libraries/Trap_Handlers.asm"),
            Layer::Global
        );
        assert_eq!(classify_path("Embedded_Software.asm"), Layer::Global);
    }

    #[test]
    fn display_names() {
        assert_eq!(Layer::Test.to_string(), "test layer");
        assert_eq!(Layer::Abstraction.to_string(), "abstraction layer");
        assert_eq!(Layer::Global.to_string(), "global layer");
    }
}
