//! `TESTPLAN.TXT` — the plain-text module test plan.
//!
//! §2 of the paper: *"Every test environment should contain a plain text
//! file that contains the test plan for the module or class of tests. The
//! principle reason for using plain text is that it can be searched
//! (grep'ed) easily from the command line."*

use std::fmt;

use serde::{Deserialize, Serialize};

/// One test-plan entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestplanEntry {
    /// The test-cell identifier (directory name, `TEST_*`).
    pub id: String,
    /// One-line description of what the test verifies.
    pub description: String,
}

/// A module test plan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Testplan {
    module: String,
    entries: Vec<TestplanEntry>,
}

impl Testplan {
    /// Creates an empty plan for a module.
    pub fn new(module: impl Into<String>) -> Self {
        Self {
            module: module.into(),
            entries: Vec::new(),
        }
    }

    /// Adds an entry, builder style.
    pub fn with_entry(mut self, id: impl Into<String>, description: impl Into<String>) -> Self {
        self.entries.push(TestplanEntry {
            id: id.into(),
            description: description.into(),
        });
        self
    }

    /// The module this plan covers.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// All entries.
    pub fn entries(&self) -> &[TestplanEntry] {
        &self.entries
    }

    /// Looks up an entry by test id.
    pub fn entry(&self, id: &str) -> Option<&TestplanEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Renders the grep-able plain text form.
    pub fn render(&self) -> String {
        let mut out = format!("TESTPLAN for {}\n", self.module);
        out.push_str(&"=".repeat(out.len() - 1));
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!("{}: {}\n", e.id, e.description));
        }
        out
    }

    /// Parses the plain-text form back into a plan.
    pub fn parse(text: &str) -> Self {
        let mut module = String::new();
        let mut entries = Vec::new();
        for line in text.lines() {
            if let Some(m) = line.strip_prefix("TESTPLAN for ") {
                module = m.trim().to_owned();
            } else if let Some((id, desc)) = line.split_once(':') {
                if id.starts_with("TEST_") {
                    entries.push(TestplanEntry {
                        id: id.trim().to_owned(),
                        description: desc.trim().to_owned(),
                    });
                }
            }
        }
        Self { module, entries }
    }
}

impl fmt::Display for Testplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let plan = Testplan::new("PAGE")
            .with_entry("TEST_PAGE_SELECT_01", "select page 8 and read it back")
            .with_entry("TEST_PAGE_SELECT_02", "select page 7 and read it back");
        let parsed = Testplan::parse(&plan.render());
        assert_eq!(parsed, plan);
    }

    #[test]
    fn plain_text_is_grepable() {
        let plan = Testplan::new("UART").with_entry("TEST_UART_LOOPBACK", "loopback echo");
        let text = plan.render();
        assert!(text
            .lines()
            .any(|l| l.contains("TEST_UART_LOOPBACK") && l.contains("loopback")));
    }

    #[test]
    fn entry_lookup() {
        let plan = Testplan::new("M").with_entry("TEST_A", "a");
        assert!(plan.entry("TEST_A").is_some());
        assert!(plan.entry("TEST_B").is_none());
    }

    #[test]
    fn parse_ignores_non_entries() {
        let plan = Testplan::parse("TESTPLAN for X\n====\nnotes: blah\nTEST_Y: y test\n");
        assert_eq!(plan.module(), "X");
        assert_eq!(plan.entries().len(), 1);
    }
}
