//! Global-layer runtime libraries: vector table, startup stub, trap and
//! interrupt handlers.
//!
//! The paper's Figure 5 shows "Trap Handlers (Global Library 1)" and
//! "Global Test Functions (Global Library N)" at the top of the system
//! verification environment — code shared by every module test
//! environment but *owned by nobody in the verification team*. This
//! module generates that code. By design it hardwires addresses (it is
//! global-layer code; the abstraction layer re-publishes the values tests
//! need).
//!
//! Default handlers report distinct failure codes through the test-bench
//! mailbox, so any stray trap fails a test loudly and identically on
//! every platform. Interrupt and software-trap handlers dispatch through
//! RAM hook words that tests install at runtime (a classic chip-card ROM
//! pattern), which lets tests take interrupts without owning the vector
//! table.

use advm_soc::memmap::{HOOK_IRQ0, HOOK_IRQ1, HOOK_TRAP8, HOOK_WDT};
use advm_soc::Mailbox;

/// File name of the vector table include.
pub const VECTOR_TABLE_FILE: &str = "Vector_Table.inc";
/// File name of the trap-handler library.
pub const TRAP_HANDLERS_FILE: &str = "Trap_Handlers.asm";

/// Failure detail codes used by the default handlers.
pub mod fail_codes {
    /// Illegal instruction reached the default handler.
    pub const ILLEGAL: u32 = 0xF1;
    /// Misaligned access reached the default handler.
    pub const MISALIGNED: u32 = 0xF2;
    /// Bus error reached the default handler.
    pub const BUS_ERROR: u32 = 0xF3;
    /// Watchdog expired with no hook installed.
    pub const WATCHDOG: u32 = 0xF4;
    /// Software trap 8 with no hook installed.
    pub const TRAP8: u32 = 0xF8;
    /// IRQ line 0 with no hook installed.
    pub const IRQ0: u32 = 0xE0;
    /// IRQ line 1 with no hook installed.
    pub const IRQ1: u32 = 0xE1;
    /// `_main` returned without reporting a result.
    pub const NO_RESULT: u32 = 0xFE;
}

/// Returns a memoised render: the three runtime library sources are
/// pure functions, and campaign planning requests them once per job.
fn memoized(cell: &'static std::sync::OnceLock<String>, render: fn() -> String) -> String {
    cell.get_or_init(render).clone()
}

/// Generates the vector-table include (32 word entries, Figure 5's
/// "Trap Handlers" global library owns the layout).
pub fn vector_table() -> String {
    static CACHE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    memoized(&CACHE, render_vector_table)
}

fn render_vector_table() -> String {
    let mut s = String::new();
    s.push_str(";; Vector_Table.inc — global library: trap/interrupt vector layout\n");
    s.push_str(";; Entry n is the handler address for vector n (0 = unhandled).\n");
    s.push_str(".WORD 0                      ; 0: reset (hardware starts at 0x100)\n");
    s.push_str(".WORD __trap_illegal         ; 1: illegal instruction\n");
    s.push_str(".WORD __trap_misaligned      ; 2: misaligned access\n");
    s.push_str(".WORD __trap_buserr          ; 3: bus error\n");
    s.push_str(".WORD __trap_watchdog        ; 4: watchdog\n");
    s.push_str(".WORD 0, 0, 0                ; 5-7: reserved\n");
    s.push_str(".WORD __trap_soft8           ; 8: software trap (hookable)\n");
    s.push_str(".WORD 0, 0, 0, 0, 0, 0, 0    ; 9-15: reserved\n");
    s.push_str(".WORD __irq0                 ; 16: IRQ line 0 (hookable)\n");
    s.push_str(".WORD __irq1                 ; 17: IRQ line 1 (hookable)\n");
    s.push_str(".WORD 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0 ; 18-31\n");
    s
}

/// Generates the trap-handler library.
pub fn trap_handlers() -> String {
    static CACHE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    memoized(&CACHE, render_trap_handlers)
}

fn render_trap_handlers() -> String {
    let result = Mailbox::new().reg(Mailbox::RESULT);
    let sim_end = Mailbox::new().reg(Mailbox::SIM_END);
    let fail = Mailbox::FAIL_MAGIC;

    let mut s = String::new();
    let mut line = |text: &str| {
        s.push_str(text);
        s.push('\n');
    };
    line(";; Trap_Handlers.asm — global library (shared by every module env)");
    line(";; Hardwired addresses are deliberate: this is global-layer code,");
    line(";; outside any module test environment's control.");
    line("");

    // Plain fatal handlers.
    for (label, code) in [
        ("__trap_illegal", fail_codes::ILLEGAL),
        ("__trap_misaligned", fail_codes::MISALIGNED),
        ("__trap_buserr", fail_codes::BUS_ERROR),
    ] {
        line(&format!("{label}:"));
        line(&format!("    LOAD d15, #0x{:X}", fail | code));
        line(&format!("    STORE [0x{result:05X}], d15"));
        line(&format!("    STORE [0x{sim_end:05X}], d15"));
        line(&format!("    HALT #0x{code:X}"));
        line("");
    }

    // Hookable handlers: dispatch through a RAM hook word, preserving the
    // scratch registers they use; PSW is restored by RETI.
    for (label, hook, code) in [
        ("__trap_watchdog", HOOK_WDT, fail_codes::WATCHDOG),
        ("__trap_soft8", HOOK_TRAP8, fail_codes::TRAP8),
        ("__irq0", HOOK_IRQ0, fail_codes::IRQ0),
        ("__irq1", HOOK_IRQ1, fail_codes::IRQ1),
    ] {
        line(&format!("{label}:"));
        line("    PUSH d15");
        line("    PUSHA a14");
        line(&format!(
            "    LOAD d15, [0x{hook:05X}]   ; runtime hook word"
        ));
        line("    CMPI d15, #0");
        line(&format!("    JEQ {label}_unhooked"));
        line("    MOV a14, d15");
        line("    CALL a14");
        line("    POPA a14");
        line("    POP d15");
        line("    RETI");
        line(&format!("{label}_unhooked:"));
        line(&format!("    LOAD d15, #0x{:X}", fail | code));
        line(&format!("    STORE [0x{result:05X}], d15"));
        line(&format!("    STORE [0x{sim_end:05X}], d15"));
        line(&format!("    HALT #0x{code:X}"));
        line("");
    }
    s
}

/// Generates the startup stub placed at the reset PC: call `_main`, and
/// fail loudly if the test returns without reporting a result.
pub fn startup_stub() -> String {
    static CACHE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    memoized(&CACHE, render_startup_stub)
}

fn render_startup_stub() -> String {
    format!(
        "\
__start:
    CALL _main
    ; _main returned without reporting: fail with a distinct code
    LOAD d15, #RESULT_FAIL | 0x{code:X}
    STORE [TB_RESULT_ADDR], d15
    STORE [TB_SIM_END_ADDR], d15
    HALT #0x{code:X}
",
        code = fail_codes::NO_RESULT
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_table_has_32_entries() {
        let text = vector_table();
        let words: usize = text
            .lines()
            .filter(|l| l.trim_start().starts_with(".WORD"))
            .map(|l| {
                let l = l.split(';').next().unwrap();
                l.split(',').count()
            })
            .sum();
        assert_eq!(words, 32);
    }

    #[test]
    fn vector_table_assembles_with_handlers() {
        let unit = format!(
            ".ORG 0x0\n{}\n.ORG 0x100\n{}",
            vector_table(),
            trap_handlers()
        );
        let program = advm_asm::assemble_str(&unit).unwrap_or_else(|e| panic!("{e}"));
        assert!(program.label("__trap_illegal").is_some());
        assert!(program.label("__irq0").is_some());
        // The table's entry 1 points at the illegal-instruction handler.
        let mut image = advm_asm::Image::new();
        image.load_program(&program).unwrap();
        assert_eq!(image.word(4), program.label("__trap_illegal").unwrap());
        assert_eq!(image.word(16 * 4), program.label("__irq0").unwrap());
    }

    #[test]
    fn startup_stub_references_globals_symbols() {
        let stub = startup_stub();
        assert!(stub.contains("CALL _main"));
        assert!(stub.contains("TB_RESULT_ADDR"));
        assert!(stub.contains("RESULT_FAIL"));
    }

    #[test]
    fn fail_codes_are_distinct() {
        let codes = [
            fail_codes::ILLEGAL,
            fail_codes::MISALIGNED,
            fail_codes::BUS_ERROR,
            fail_codes::WATCHDOG,
            fail_codes::TRAP8,
            fail_codes::IRQ0,
            fail_codes::IRQ1,
            fail_codes::NO_RESULT,
        ];
        let mut sorted = codes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len());
    }
}
