//! Program fuzzing with assertion mining — the `advm-fuzz` crate wired
//! into the campaign pipeline.
//!
//! The seed suite's cells are hand-written; [`Fuzz`] instead drives the
//! differential matrix with *generated* guest programs
//! ([`advm_fuzz::ProgramSource`]) and closes the observability gap the
//! differential verdict leaves open:
//!
//! 1. **Generate** `programs` constrained-random, guaranteed-terminating
//!    guest programs (deterministic per seed, independent of worker
//!    count) and reject the batch if any instruction fails the
//!    encode→decode round-trip.
//! 2. **Mine** (optional): run every program fault-free on every target
//!    platform with the MMIO monitor armed, and mine
//!    [`TraceAssertion`] checkers — readback invariants and bounded
//!    temporal windows — from the captured traces.
//! 3. **Verify**: run the same programs as a [`Campaign`] across the
//!    target platforms with the mined checkers armed. Because the
//!    checking runs replay the mining runs exactly (same images, same
//!    monitor capacity, from reset), a fault-free matrix reports zero
//!    spurious violations *by construction*.
//!
//! Mined checkers then feed [`FaultAudit`](crate::audit::FaultAudit)
//! via [`FaultAudit::checkers`](crate::audit::FaultAudit::checkers) to
//! grade what they kill that the differential verdict misses — see the
//! tests in this module.

use std::fmt;
use std::sync::Arc;

use advm_fuzz::{mine, FuzzProgram, ProgramSource, TraceAssertion};
use advm_sim::{MmioTrace, Platform};
use advm_soc::{Derivative, PlatformId};

use advm_asm::AsmError;

use crate::artifacts::ArtifactStore;
use crate::campaign::{
    default_workers, Campaign, CampaignError, CampaignReport, CheckerViolation, ObserverFactory,
    DEFAULT_MONITOR_CAPACITY,
};
use crate::env::{EnvConfig, ModuleTestEnv, TestCell};
use crate::wire::json_string;

/// Default number of generated programs per fuzz run.
pub const DEFAULT_FUZZ_PROGRAMS: usize = 64;

/// Default master seed of the program source.
pub const DEFAULT_FUZZ_SEED: u64 = 0xF5EED;

/// Base address used for the stand-alone encode→decode round-trip check
/// (the linked image relocates the cell; any word-aligned base within
/// the 20-bit space validates the encoder).
const ENCODE_CHECK_BASE: u32 = 0x0_0400;

/// A structured fuzz-run failure.
#[derive(Debug)]
pub enum FuzzError {
    /// The run was asked for zero programs.
    NoPrograms,
    /// The run has no target platforms.
    NoPlatforms,
    /// A generated instruction failed the encode→decode round-trip —
    /// a generator or encoder bug, never an execution failure.
    Encoding {
        /// The offending program's name.
        program: String,
        /// What failed to round-trip.
        detail: String,
    },
    /// A generated program failed to assemble or link.
    Build(AsmError),
    /// The verify campaign failed.
    Campaign(CampaignError),
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzError::NoPrograms => f.write_str("fuzz run has no programs"),
            FuzzError::NoPlatforms => f.write_str("fuzz run has no target platforms"),
            FuzzError::Encoding { program, detail } => {
                write!(f, "encode round-trip failed in {program}: {detail}")
            }
            FuzzError::Build(e) => write!(f, "fuzz program failed to build: {e}"),
            FuzzError::Campaign(e) => write!(f, "fuzz campaign failed: {e}"),
        }
    }
}

impl std::error::Error for FuzzError {}

impl From<AsmError> for FuzzError {
    fn from(e: AsmError) -> Self {
        FuzzError::Build(e)
    }
}

impl From<CampaignError> for FuzzError {
    fn from(e: CampaignError) -> Self {
        FuzzError::Campaign(e)
    }
}

/// Materialises one generated program as a module test environment: one
/// synthetic env named after the program, holding a single cell whose
/// source is the program's rendered assembly.
pub fn program_env(program: &FuzzProgram) -> ModuleTestEnv {
    ModuleTestEnv::new(
        program.name(),
        EnvConfig::new(advm_soc::DerivativeId::Sc88A, PlatformId::GoldenModel),
        vec![TestCell::new(
            format!("TEST_{}", program.name()),
            "constrained-random fuzz program",
            program.asm(),
        )],
    )
}

/// The sealed result of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    programs: usize,
    seed: u64,
    mined: Vec<TraceAssertion>,
    campaign: CampaignReport,
}

impl FuzzReport {
    /// Number of generated programs.
    pub fn programs(&self) -> usize {
        self.programs
    }

    /// The program source's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The mined checkers armed on the verify campaign (empty when
    /// mining was off).
    pub fn mined(&self) -> &[TraceAssertion] {
        &self.mined
    }

    /// The verify campaign's sealed report.
    pub fn campaign(&self) -> &CampaignReport {
        &self.campaign
    }

    /// Mined-checker violations observed by the verify campaign.
    pub fn violations(&self) -> &[CheckerViolation] {
        self.campaign.checker_violations()
    }

    /// Whether the run is clean: every run passed, platforms agree, and
    /// no mined checker was violated.
    pub fn ok(&self) -> bool {
        self.campaign.failed() == 0
            && self.campaign.divergences().is_empty()
            && self.violations().is_empty()
    }

    /// Renders the report as a JSON document wrapping the campaign's.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"programs\":{},\"seed\":{},\"mined\":[",
            self.programs, self.seed
        ));
        for (i, checker) in self.mined.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_string(&checker.name()));
        }
        s.push_str(&format!("],\"campaign\":{}}}", self.campaign.to_json()));
        s
    }
}

/// Builder for a fuzz run: generate → (optionally) mine → verify.
///
/// Defaults: [`DEFAULT_FUZZ_PROGRAMS`] programs from
/// [`DEFAULT_FUZZ_SEED`], all six platforms, machine-derived worker
/// count, mining off.
#[derive(Clone)]
pub struct Fuzz {
    programs: usize,
    seed: u64,
    mine: bool,
    platforms: Vec<PlatformId>,
    workers: usize,
    fuel: u64,
    monitor_capacity: usize,
    fault: Option<(PlatformId, advm_sim::PlatformFault)>,
    observer_factory: Option<ObserverFactory>,
    artifact_store: Option<Arc<ArtifactStore>>,
}

impl fmt::Debug for Fuzz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fuzz")
            .field("programs", &self.programs)
            .field("seed", &self.seed)
            .field("mine", &self.mine)
            .field("platforms", &self.platforms)
            .field("workers", &self.workers)
            .field("fuel", &self.fuel)
            .field("monitor_capacity", &self.monitor_capacity)
            .field("fault", &self.fault)
            .field("observer_factory", &self.observer_factory.is_some())
            .field("artifact_store", &self.artifact_store.is_some())
            .finish()
    }
}

impl Default for Fuzz {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzz {
    /// A fuzz run with the documented defaults.
    pub fn new() -> Self {
        Self {
            programs: DEFAULT_FUZZ_PROGRAMS,
            seed: DEFAULT_FUZZ_SEED,
            mine: false,
            platforms: PlatformId::ALL.to_vec(),
            workers: default_workers(),
            fuel: advm_sim::DEFAULT_FUEL,
            monitor_capacity: DEFAULT_MONITOR_CAPACITY,
            fault: None,
            observer_factory: None,
            artifact_store: None,
        }
    }

    /// Sets the number of generated programs (minimum 1).
    pub fn programs(mut self, programs: usize) -> Self {
        self.programs = programs;
        self
    }

    /// Sets the program source's master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables assertion mining (default: off). When on,
    /// every program runs fault-free on every target platform first,
    /// checkers are mined from the captured MMIO traces, and the verify
    /// campaign arms them.
    pub fn mine(mut self, enabled: bool) -> Self {
        self.mine = enabled;
        self
    }

    /// Replaces the target platforms (default: all six).
    pub fn platforms(mut self, platforms: impl IntoIterator<Item = PlatformId>) -> Self {
        self.platforms = platforms.into_iter().collect();
        self
    }

    /// Sets the campaign worker count (minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-run instruction budget.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Sets the MMIO monitor ring capacity used for both mining and
    /// checking (they must match; see
    /// [`DEFAULT_MONITOR_CAPACITY`]).
    pub fn monitor_capacity(mut self, capacity: usize) -> Self {
        self.monitor_capacity = capacity.max(1);
        self
    }

    /// Injects a hardware fault into one platform of the verify
    /// campaign (mining always runs fault-free). With mining on, a
    /// differentially invisible fault surfaces as checker violations in
    /// the report instead of passing silently.
    pub fn fault(mut self, platform: PlatformId, fault: advm_sim::PlatformFault) -> Self {
        self.fault = Some((platform, fault));
        self
    }

    /// Attaches a shared artifact store: the verify campaign's builds
    /// land in (and reuse) `store` — the daemon passes its cross-job
    /// store here. Mining runs always build directly; their images must
    /// match the checking runs byte for byte, and bypassing the cache
    /// keeps that equality independent of what other jobs cached.
    pub fn artifact_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.artifact_store = Some(store);
        self
    }

    /// Attaches an observer factory: the verify campaign gets one fresh
    /// observer built by `factory`, so its
    /// [`CampaignEvent`](crate::campaign::CampaignEvent)s stream out
    /// live (the daemon's per-job NDJSON feed).
    pub fn observe_with(mut self, factory: ObserverFactory) -> Self {
        self.observer_factory = Some(factory);
        self
    }

    /// Generates the program batch and validates every instruction's
    /// encode→decode round-trip.
    fn generate(&self) -> Result<Vec<FuzzProgram>, FuzzError> {
        if self.programs == 0 {
            return Err(FuzzError::NoPrograms);
        }
        if self.platforms.is_empty() {
            return Err(FuzzError::NoPlatforms);
        }
        let source = ProgramSource::new(self.seed);
        let programs = source.generate(self.programs);
        for program in &programs {
            program
                .check_encoding(ENCODE_CHECK_BASE)
                .map_err(|detail| FuzzError::Encoding {
                    program: program.name().to_owned(),
                    detail,
                })?;
        }
        Ok(programs)
    }

    /// Runs one program fault-free on one platform with the monitor
    /// armed and returns the captured MMIO trace.
    fn golden_trace(
        &self,
        env: &ModuleTestEnv,
        platform: PlatformId,
    ) -> Result<MmioTrace, FuzzError> {
        let mut ported = env.clone();
        ported.reconfigure(EnvConfig {
            platform,
            ..env.config()
        });
        let cell_id = ported.cells()[0].id().to_owned();
        let image = crate::build::build_cell(&ported, &cell_id)?;
        let derivative = Derivative::from_id(ported.config().derivative);
        let mut machine = Platform::new(platform, &derivative);
        machine.set_fuel(self.fuel);
        machine.enable_mmio_trace(self.monitor_capacity);
        machine.load_image(&image);
        machine.run();
        Ok(machine
            .mmio_trace()
            .expect("monitor was enabled above")
            .clone())
    }

    /// Generates the batch and mines checkers from fault-free runs on
    /// every target platform, without running the verify campaign.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Fuzz::run`] minus campaign execution.
    pub fn mine_checkers(&self) -> Result<Vec<TraceAssertion>, FuzzError> {
        let programs = self.generate()?;
        self.mine_for(&programs)
    }

    fn mine_for(&self, programs: &[FuzzProgram]) -> Result<Vec<TraceAssertion>, FuzzError> {
        let mut traces = Vec::new();
        for program in programs {
            let env = program_env(program);
            for &platform in &self.platforms {
                traces.push(self.golden_trace(&env, platform)?);
            }
        }
        let refs: Vec<&MmioTrace> = traces.iter().collect();
        Ok(mine(&refs))
    }

    /// Generates, mines (when enabled) and verifies.
    ///
    /// # Errors
    ///
    /// [`FuzzError::NoPrograms`] / [`FuzzError::NoPlatforms`] for an
    /// unrunnable plan, [`FuzzError::Encoding`] when a generated
    /// instruction fails its round-trip, build and campaign failures
    /// otherwise.
    pub fn run(&self) -> Result<FuzzReport, FuzzError> {
        let programs = self.generate()?;
        let mined = if self.mine {
            self.mine_for(&programs)?
        } else {
            Vec::new()
        };
        let mut campaign = Campaign::new()
            .platforms(self.platforms.iter().copied())
            .workers(self.workers)
            .fuel(self.fuel);
        for program in &programs {
            campaign = campaign.env_with_meta(program_env(program), program.scenario_meta());
        }
        if !mined.is_empty() {
            campaign = campaign
                .checkers(mined.iter().copied())
                .monitor_capacity(self.monitor_capacity);
        }
        if let Some(store) = &self.artifact_store {
            campaign = campaign.artifact_store(Arc::clone(store));
        }
        if let Some((platform, fault)) = self.fault {
            campaign = campaign.fault(platform, fault);
        }
        if let Some(factory) = &self.observer_factory {
            campaign = campaign.observe(factory());
        }
        let report = campaign.run()?;
        Ok(FuzzReport {
            programs: programs.len(),
            seed: self.seed,
            mined,
            campaign: report,
        })
    }
}

#[cfg(test)]
mod tests {
    use advm_sim::PlatformFault;

    use crate::audit::{CellOutcome, FaultAudit};

    use super::*;

    #[test]
    fn fuzz_run_is_clean_and_carries_provenance() {
        let report = Fuzz::new()
            .programs(4)
            .seed(7)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(2)
            .run()
            .unwrap();
        assert_eq!(report.programs(), 4);
        assert_eq!(report.campaign().total(), 8);
        assert_eq!(
            report.campaign().failed(),
            0,
            "{}",
            report.campaign().matrix()
        );
        assert!(report.campaign().divergences().is_empty());
        assert!(report.ok());
        // Runs carry program-fuzz provenance end to end.
        assert_eq!(report.campaign().scenarios().len(), 4);
        for meta in report.campaign().scenarios() {
            assert_eq!(meta.kind.name(), "program-fuzz");
            assert!(meta.name.starts_with("FUZZ_"), "{meta:?}");
        }
        // No mining requested: the campaign JSON keeps its plain layout.
        assert!(report.mined().is_empty());
        let json = report.to_json();
        assert!(
            json.starts_with("{\"programs\":4,\"seed\":7,\"mined\":[]"),
            "{json}"
        );
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn mining_is_spurious_free_on_the_fault_free_matrix() {
        let report = Fuzz::new()
            .programs(6)
            .seed(11)
            .mine(true)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(2)
            .run()
            .unwrap();
        assert!(
            !report.mined().is_empty(),
            "six programs over two platforms must mine at least one checker"
        );
        // The checking runs replay the mining runs exactly, so a clean
        // matrix cannot violate what was mined from it.
        assert!(report.violations().is_empty(), "{:?}", report.violations());
        assert!(report.ok());
        assert_eq!(report.campaign().checkers_armed(), report.mined().len());
        let json = report.to_json();
        assert!(json.contains("\"mined\":[\""), "{json}");
        assert!(json.contains("\"checkers\":{\"armed\":"), "{json}");
    }

    #[test]
    fn mined_checkers_surface_the_ignored_map_write() {
        // The page fault is differentially invisible to fuzz programs
        // (MAP readbacks land in sink registers), so the verify campaign
        // still passes — but the mined readback checker reports it.
        let report = Fuzz::new()
            .programs(4)
            .seed(11)
            .mine(true)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(2)
            .fault(PlatformId::RtlSim, PlatformFault::PageMapWriteIgnored)
            .run()
            .unwrap();
        assert_eq!(report.campaign().failed(), 0);
        assert!(report.campaign().divergences().is_empty());
        assert!(
            !report.violations().is_empty(),
            "checker must see the fault"
        );
        assert!(!report.ok());
        for v in report.violations() {
            assert_eq!(v.platform, PlatformId::RtlSim, "{v:?}");
        }
    }

    #[test]
    fn mined_checkers_outgrade_the_seed_suite_on_the_fault_audit() {
        // The acceptance claim: graded through the FaultAudit kill-rate
        // machinery, mined checkers kill a catalogued fault the fuzz
        // suite alone misses — and in strictly fewer rounds than the
        // seed suite, which needs the round-2 escape loop for this fault
        // (see audit::tests::escape_round_kills_the_map_write_fault).
        let fuzz = Fuzz::new()
            .programs(4)
            .seed(11)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(2);
        let programs = fuzz.generate().unwrap();
        let envs: Vec<ModuleTestEnv> = programs.iter().map(program_env).collect();
        let mined = fuzz.mine_for(&programs).unwrap();
        assert!(!mined.is_empty());

        let audit = FaultAudit::new()
            .suite(envs)
            .faults([PlatformFault::PageMapWriteIgnored])
            .platforms([PlatformId::RtlSim])
            .escape_rounds(0)
            .workers(2);

        // Blind, the fuzz suite masks the fault (sink readbacks).
        let blind = audit.clone().run().unwrap();
        assert_eq!(blind.escapes().len(), 1);

        // Armed with its own mined checkers, it kills it in round 1.
        let armed = audit.checkers(mined).run().unwrap();
        let cell = armed
            .cell(PlatformFault::PageMapWriteIgnored, PlatformId::RtlSim)
            .unwrap();
        match &cell.outcome {
            CellOutcome::Detected { round, killed_by } => {
                assert_eq!(*round, 1);
                assert!(
                    killed_by.iter().any(|t| t.contains("checker:")),
                    "{killed_by:?}"
                );
            }
            other => panic!("expected round-1 checker detection, got {other:?}"),
        }
        assert!(armed.killed(PlatformFault::PageMapWriteIgnored));
    }

    #[test]
    fn tiny_monitor_capacity_never_yields_spurious_violations() {
        // At capacity 2 the ring truncates on every run; mining anchors
        // only on retained writes and checking replays the same
        // truncation, so the run stays violation-free end to end.
        let report = Fuzz::new()
            .programs(3)
            .seed(11)
            .mine(true)
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .monitor_capacity(2)
            .workers(2)
            .run()
            .unwrap();
        assert!(report.violations().is_empty(), "{:?}", report.violations());
        assert!(report.ok());
    }

    #[test]
    fn empty_plans_are_rejected() {
        assert!(matches!(
            Fuzz::new().programs(0).run(),
            Err(FuzzError::NoPrograms)
        ));
        assert!(matches!(
            Fuzz::new().platforms([]).run(),
            Err(FuzzError::NoPlatforms)
        ));
    }
}
