//! The complete (system) test environment — the paper's Figures 4 and 5.
//!
//! A [`SystemVerificationEnv`] composes multiple module test environments
//! over one shared global layer. The paper's isolation rule is enforced:
//! *"Each test environment is isolated from any other and the only way
//! for code to be shared is via the globals layer."*

use std::collections::BTreeMap;
use std::fmt;

use advm_soc::{Derivative, EsRom};
use serde::{Deserialize, Serialize};

use crate::campaign::{Campaign, CampaignError, CampaignReport};
use crate::env::{validate_layout, LayoutIssue, ModuleTestEnv};
use crate::regression::RegressionConfig;
use crate::release::{ReleaseError, ReleaseStore, SystemRelease};
use crate::runtime::{trap_handlers, vector_table, TRAP_HANDLERS_FILE, VECTOR_TABLE_FILE};

/// Directory holding the global libraries in the Figure 5 tree.
pub const GLOBAL_LIBRARIES_DIR: &str = "Global_Libraries";
/// File name of the embedded-software ROM source in the system tree.
pub const EMBEDDED_SOFTWARE_FILE: &str = "Embedded_Software.asm";

/// A problem found by [`SystemVerificationEnv::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemIssue {
    /// Two environments share a name.
    DuplicateEnvName(String),
    /// Two environments disagree on derivative or ES release (the system
    /// shares one global layer, so these must be uniform).
    InconsistentConfig {
        /// First environment.
        first: String,
        /// The disagreeing environment.
        second: String,
    },
    /// A module environment violates the Figure 3 layout.
    Layout {
        /// Environment name.
        env: String,
        /// The layout problem, rendered.
        issue: String,
    },
    /// A test includes a file belonging to another environment —
    /// forbidden cross-environment sharing.
    CrossEnvInclude {
        /// The offending environment.
        env: String,
        /// The offending test cell.
        test_id: String,
        /// The foreign path included.
        path: String,
    },
}

impl fmt::Display for SystemIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemIssue::DuplicateEnvName(name) => {
                write!(f, "duplicate environment name `{name}`")
            }
            SystemIssue::InconsistentConfig { first, second } => write!(
                f,
                "environments `{first}` and `{second}` disagree on derivative/ES release"
            ),
            SystemIssue::Layout { env, issue } => write!(f, "{env}: {issue}"),
            SystemIssue::CrossEnvInclude { env, test_id, path } => {
                write!(f, "{env}/{test_id} includes foreign file `{path}`")
            }
        }
    }
}

/// The system verification environment (Figure 4 / Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemVerificationEnv {
    name: String,
    envs: Vec<ModuleTestEnv>,
}

impl SystemVerificationEnv {
    /// Creates the system environment.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty.
    pub fn new(name: impl Into<String>, envs: Vec<ModuleTestEnv>) -> Self {
        assert!(
            !envs.is_empty(),
            "a system environment needs at least one module env"
        );
        Self {
            name: name.into(),
            envs,
        }
    }

    /// The system environment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component module environments.
    pub fn envs(&self) -> &[ModuleTestEnv] {
        &self.envs
    }

    /// Looks up a component by name.
    pub fn env(&self, name: &str) -> Option<&ModuleTestEnv> {
        self.envs.iter().find(|e| e.name() == name)
    }

    /// Total test-cell count across all environments.
    pub fn total_tests(&self) -> usize {
        self.envs.iter().map(|e| e.cells().len()).sum()
    }

    /// Renders the Figure 5 system tree: global libraries first, then
    /// every module environment's subtree.
    pub fn tree(&self) -> BTreeMap<String, String> {
        let mut tree = BTreeMap::new();
        tree.insert(
            format!("{}/{GLOBAL_LIBRARIES_DIR}/{VECTOR_TABLE_FILE}", self.name),
            vector_table(),
        );
        tree.insert(
            format!("{}/{GLOBAL_LIBRARIES_DIR}/{TRAP_HANDLERS_FILE}", self.name),
            trap_handlers(),
        );
        // The ES ROM for the (uniform) derivative/ES release.
        let config = self.envs[0].config();
        let derivative = Derivative::from_id(config.derivative);
        let rom = EsRom::generate(&derivative, config.es_version);
        tree.insert(
            format!(
                "{}/{GLOBAL_LIBRARIES_DIR}/{EMBEDDED_SOFTWARE_FILE}",
                self.name
            ),
            rom.source().to_owned(),
        );
        for env in &self.envs {
            for (path, content) in env.tree() {
                tree.insert(format!("{}/{path}", self.name), content);
            }
        }
        tree
    }

    /// Validates the system: unique names, uniform derivative/ES config,
    /// per-environment Figure 3 layout, and cross-environment isolation.
    pub fn validate(&self) -> Vec<SystemIssue> {
        let mut issues = Vec::new();
        // Unique names.
        for (i, a) in self.envs.iter().enumerate() {
            for b in &self.envs[i + 1..] {
                if a.name() == b.name() {
                    issues.push(SystemIssue::DuplicateEnvName(a.name().to_owned()));
                }
            }
        }
        // Uniform derivative + ES release (platform may vary per run).
        let first = &self.envs[0];
        for env in &self.envs[1..] {
            if env.config().derivative != first.config().derivative
                || env.config().es_version != first.config().es_version
            {
                issues.push(SystemIssue::InconsistentConfig {
                    first: first.name().to_owned(),
                    second: env.name().to_owned(),
                });
            }
        }
        // Per-env layout.
        for env in &self.envs {
            let tree = env.tree();
            for issue in validate_layout(env.name(), &tree) {
                // An unplanned test is tolerable at system level only if
                // every other rule holds; report everything uniformly.
                let _: &LayoutIssue = &issue;
                issues.push(SystemIssue::Layout {
                    env: env.name().to_owned(),
                    issue: issue.to_string(),
                });
            }
        }
        // Isolation: no test may include another environment's files.
        for env in &self.envs {
            for cell in env.cells() {
                for line in cell.source().lines() {
                    let trimmed = line.trim();
                    if !trimmed.to_ascii_uppercase().starts_with(".INCLUDE") {
                        continue;
                    }
                    let path = trimmed[".INCLUDE".len()..].trim();
                    let path = path
                        .split(';')
                        .next()
                        .unwrap_or("")
                        .trim()
                        .trim_matches('"');
                    let crosses = self
                        .envs
                        .iter()
                        .filter(|other| other.name() != env.name())
                        .any(|other| path.starts_with(&format!("{}/", other.name())));
                    if crosses {
                        issues.push(SystemIssue::CrossEnvInclude {
                            env: env.name().to_owned(),
                            test_id: cell.id().to_owned(),
                            path: path.to_owned(),
                        });
                    }
                }
            }
        }
        issues
    }

    /// A [`Campaign`] seeded with every component environment; chain
    /// further builder calls to pick platforms, workers or observers.
    pub fn campaign(&self) -> Campaign {
        Campaign::new().envs(self.envs.iter().cloned())
    }

    /// Runs the full system regression through the campaign pipeline.
    ///
    /// # Errors
    ///
    /// Propagates build errors from any component environment.
    pub fn run_regression(
        &self,
        config: &RegressionConfig,
    ) -> Result<CampaignReport, CampaignError> {
        Campaign::from_config(&self.envs, config).run()
    }

    /// Freezes every component under `<label>/<env>` sub-labels and
    /// composes the system release (the paper's "label composed of
    /// sub-labels for each environment").
    ///
    /// # Errors
    ///
    /// Propagates label collisions from the store.
    pub fn compose_release<'a>(
        &self,
        store: &'a mut ReleaseStore,
        label: &str,
    ) -> Result<&'a SystemRelease, ReleaseError> {
        let mut sub_labels = Vec::new();
        for env in &self.envs {
            let sub = format!("{label}/{}", env.name());
            store.freeze(sub.clone(), env)?;
            sub_labels.push(sub);
        }
        let refs: Vec<&str> = sub_labels.iter().map(String::as_str).collect();
        store.compose_system(label, &refs)
    }
}

impl fmt::Display for SystemVerificationEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} envs, {} tests]",
            self.name,
            self.envs.len(),
            self.total_tests()
        )
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use crate::env::{EnvConfig, TestCell};

    use super::*;

    fn cell(id: &str) -> TestCell {
        TestCell::new(
            id,
            "demo",
            ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
        )
    }

    fn module_env(name: &str) -> ModuleTestEnv {
        ModuleTestEnv::new(
            name,
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![cell("TEST_A")],
        )
    }

    fn system() -> SystemVerificationEnv {
        SystemVerificationEnv::new(
            "ADVM_System_Verification_Environment",
            vec![module_env("PAGE"), module_env("UART"), module_env("NVM")],
        )
    }

    #[test]
    fn tree_contains_global_libraries_and_env_subtrees() {
        let tree = system().tree();
        let prefix = "ADVM_System_Verification_Environment";
        assert!(tree.contains_key(&format!("{prefix}/Global_Libraries/Vector_Table.inc")));
        assert!(tree.contains_key(&format!("{prefix}/Global_Libraries/Trap_Handlers.asm")));
        assert!(tree.contains_key(&format!("{prefix}/Global_Libraries/Embedded_Software.asm")));
        assert!(tree.contains_key(&format!("{prefix}/PAGE/TESTPLAN.TXT")));
        assert!(tree.contains_key(&format!("{prefix}/UART/Abstraction_Layer/Globals.inc")));
    }

    #[test]
    fn clean_system_validates() {
        assert!(system().validate().is_empty());
    }

    #[test]
    fn duplicate_names_flagged() {
        let sys = SystemVerificationEnv::new("SYS", vec![module_env("PAGE"), module_env("PAGE")]);
        assert!(sys
            .validate()
            .iter()
            .any(|i| matches!(i, SystemIssue::DuplicateEnvName(_))));
    }

    #[test]
    fn inconsistent_derivatives_flagged() {
        let mut other = module_env("UART");
        other.reconfigure(EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel));
        let sys = SystemVerificationEnv::new("SYS", vec![module_env("PAGE"), other]);
        assert!(sys
            .validate()
            .iter()
            .any(|i| matches!(i, SystemIssue::InconsistentConfig { .. })));
    }

    #[test]
    fn cross_env_include_flagged() {
        let rogue = ModuleTestEnv::new(
            "NVM",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new(
                "TEST_ROGUE",
                "steals another env's base functions",
                "\
.INCLUDE Globals.inc
.INCLUDE PAGE/Abstraction_Layer/Base_Functions.asm
_main:
    RETURN
",
            )],
        );
        let sys = SystemVerificationEnv::new("SYS", vec![module_env("PAGE"), rogue]);
        assert!(sys
            .validate()
            .iter()
            .any(|i| matches!(i, SystemIssue::CrossEnvInclude { .. })));
    }

    #[test]
    fn system_regression_runs_all_envs() {
        let report = system()
            .run_regression(&RegressionConfig::smoke(PlatformId::GoldenModel))
            .unwrap();
        assert_eq!(report.total(), 3);
        assert_eq!(report.passed(), 3);
    }

    #[test]
    fn system_campaign_builder_composes() {
        let report = system()
            .campaign()
            .platforms([PlatformId::GoldenModel, PlatformId::RtlSim])
            .workers(2)
            .run()
            .unwrap();
        assert_eq!(report.total(), 6);
        assert_eq!(report.failed(), 0);
        // The three identical platform-independent cells dedupe down to
        // three builds (golden/RTL share abstraction-layer knobs).
        assert!(report.cache_hits() >= 3, "hits: {}", report.cache_hits());
    }

    #[test]
    fn system_release_composition() {
        let sys = system();
        let mut store = ReleaseStore::new();
        let release = sys.compose_release(&mut store, "SYS-1.0").unwrap();
        assert_eq!(release.components().len(), 3);
        let thawed = store.thaw_system("SYS-1.0").unwrap();
        assert_eq!(thawed.len(), 3);
        assert_eq!(thawed[0], sys.envs()[0]);
    }
}
