//! Cross-campaign artifact retention — the build cache promoted to a
//! shareable, bounded, process-lifetime store.
//!
//! A [`Campaign`](crate::campaign::Campaign) already deduplicates
//! builds *within* one run: jobs with equal content keys share one
//! assembled image and one predecoded program. Everything still dies
//! with the campaign, though — the next run of the identical suite
//! re-assembles, re-links, re-decodes and re-executes every prefix from
//! scratch. An [`ArtifactStore`] hoists all three artifact kinds out of
//! the run into a handle that can outlive it:
//!
//! * **image slots** — the `Prebuilt { image, DecodedProgram }` pairs,
//!   keyed by the campaign's content fingerprints (equal keys imply
//!   equal images, so reuse is sound across jobs and submitters);
//! * **ES ROM slots** — the shared embedded-software ROM assembly,
//!   keyed by its source hash;
//! * **prefix snapshots** — the shared [`PrefixPool`] of fault-free
//!   prefix machine states, evicted alongside their image.
//!
//! The store is a bounded LRU: `advm-serve` keeps one for its whole
//! lifetime, so an unbounded map would grow with every distinct
//! scenario any client ever submitted. Hit/miss/eviction counters are
//! surfaced through [`ArtifactStore::stats`] (the daemon's `status`
//! response) and per-campaign through the
//! [`artifact_hits`](crate::campaign::CampaignPerf::artifact_hits) perf
//! counter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::campaign::{EsSlot, ImageSlot};
use crate::prefix::{PrefixPool, DEFAULT_PREFIX_BUDGET};

/// Default image-slot capacity: comfortably holds the standard system
/// suite across all platforms plus generated-scenario churn, while
/// bounding a long-lived daemon's footprint.
pub const DEFAULT_ARTIFACT_CAPACITY: usize = 256;

/// A point-in-time snapshot of one store's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArtifactStoreStats {
    /// Configured image-slot capacity.
    pub capacity: usize,
    /// Image slots currently resident.
    pub entries: usize,
    /// Lookups served by an already-resident content key.
    pub hits: u64,
    /// Lookups that created a fresh slot.
    pub misses: u64,
    /// Image slots evicted to stay within capacity (their prefix
    /// snapshots go with them).
    pub evictions: u64,
    /// `(content key, platform)` prefix snapshots currently resident.
    pub prefix_entries: usize,
}

impl ArtifactStoreStats {
    /// Renders the stats as one JSON object (embedded in the daemon's
    /// `status` response).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"capacity\":{},\"entries\":{},\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"prefix_entries\":{}}}",
            self.capacity,
            self.entries,
            self.hits,
            self.misses,
            self.evictions,
            self.prefix_entries
        )
    }
}

/// One LRU side of the store: slots stamped with a logical clock, the
/// oldest stamp evicted first.
struct Lru<T> {
    map: HashMap<u64, (T, u64)>,
    clock: u64,
}

impl<T: Clone + Default> Lru<T> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            clock: 0,
        }
    }

    /// Returns the slot for `key` (creating a default one when absent,
    /// true in the second position iff it already existed) and
    /// refreshes its recency.
    fn get_or_insert(&mut self, key: u64) -> (T, bool) {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&key) {
            Some((slot, stamp)) => {
                *stamp = clock;
                (slot.clone(), true)
            }
            None => {
                let slot = T::default();
                self.map.insert(key, (slot.clone(), clock));
                (slot, false)
            }
        }
    }

    /// Evicts the least-recently-used key past `capacity`, returning it.
    fn evict_past(&mut self, capacity: usize) -> Option<u64> {
        if self.map.len() <= capacity {
            return None;
        }
        let key = self
            .map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(&key, _)| key)?;
        self.map.remove(&key);
        Some(key)
    }
}

/// A bounded, thread-safe, campaign-spanning artifact cache. See the
/// [module docs](self).
///
/// Attach one to a campaign with
/// [`Campaign::artifact_store`](crate::campaign::Campaign::artifact_store)
/// (or to a [`FaultAudit`](crate::audit::FaultAudit) /
/// [`Exploration`](crate::stimulus::Exploration), which thread it into
/// every campaign they run); share the `Arc` across submissions to
/// share the artifacts.
pub struct ArtifactStore {
    capacity: usize,
    images: Mutex<Lru<ImageSlot>>,
    es: Mutex<Lru<EsSlot>>,
    prefix: Arc<PrefixPool>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ArtifactStore")
            .field("capacity", &stats.capacity)
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl Default for ArtifactStore {
    fn default() -> Self {
        Self::new(DEFAULT_ARTIFACT_CAPACITY)
    }
}

impl ArtifactStore {
    /// A store holding at most `capacity` image slots (minimum 1), with
    /// a [`DEFAULT_PREFIX_BUDGET`]-instruction prefix pool.
    pub fn new(capacity: usize) -> Self {
        Self::with_prefix_budget(capacity, DEFAULT_PREFIX_BUDGET)
    }

    /// A store whose shared prefix pool snapshots after `prefix_budget`
    /// instructions.
    pub fn with_prefix_budget(capacity: usize, prefix_budget: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            images: Mutex::new(Lru::new()),
            es: Mutex::new(Lru::new()),
            prefix: Arc::new(PrefixPool::new(prefix_budget)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The shared prefix pool, kept alive (and evicted) with the image
    /// slots.
    pub fn prefix_pool(&self) -> &Arc<PrefixPool> {
        &self.prefix
    }

    /// Image slots currently resident.
    pub fn len(&self) -> usize {
        self.images.lock().map.len()
    }

    /// Whether no image slot is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The image slot for one content key: present slots are returned
    /// with `true` (a cross-campaign hit — the artifact, or at least
    /// its in-flight build, is reused), fresh ones with `false`.
    /// Campaigns call this once per distinct content key per run.
    pub(crate) fn image_slot(&self, key: u64) -> (ImageSlot, bool) {
        let mut images = self.images.lock();
        let (slot, existed) = images.get_or_insert(key);
        if existed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            while let Some(evicted) = images.evict_past(self.capacity) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                // The snapshots forked off an image die with it.
                self.prefix.evict_content_key(evicted);
            }
        }
        (slot, existed)
    }

    /// The ES ROM slot for one source hash. Bounded by the same
    /// capacity; distinct ES sources are rare (one per release), so
    /// eviction here is a formality.
    pub(crate) fn es_slot(&self, key: u64) -> EsSlot {
        let mut es = self.es.lock();
        let (slot, _) = es.get_or_insert(key);
        while es.evict_past(self.capacity).is_some() {}
        slot
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> ArtifactStoreStats {
        ArtifactStoreStats {
            capacity: self.capacity,
            entries: self.images.lock().map.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prefix_entries: self.prefix.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest_key_and_its_prefixes() {
        let store = ArtifactStore::new(2);
        let (_, hit) = store.image_slot(1);
        assert!(!hit);
        store
            .prefix_pool()
            .slot(1, advm_soc::PlatformId::GoldenModel);
        assert_eq!(store.prefix_pool().len(), 1);
        store.image_slot(2);
        // Touch key 1 so key 2 is the LRU victim.
        let (_, hit) = store.image_slot(1);
        assert!(hit);
        store.image_slot(3);
        let stats = store.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // Key 2 was evicted; key 1 (and its prefix snapshot) survives.
        assert_eq!(store.prefix_pool().len(), 1);
        let (_, hit) = store.image_slot(2);
        assert!(!hit, "evicted key re-enters as a miss");
        // Re-admitting key 2 evicted key 1, dropping its snapshot too.
        assert_eq!(store.prefix_pool().len(), 0);
    }

    #[test]
    fn counters_and_json_track_lookups() {
        let store = ArtifactStore::new(8);
        store.image_slot(10);
        store.image_slot(10);
        store.image_slot(11);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 0));
        assert_eq!(stats.entries, 2);
        let json = stats.to_json();
        let value = crate::wire::JsonValue::parse(&json).unwrap();
        assert_eq!(value.u64_field("hits").unwrap(), 1);
        assert_eq!(value.u64_field("misses").unwrap(), 2);
        assert_eq!(value.u64_field("capacity").unwrap(), 8);
    }

    #[test]
    fn shared_slots_are_the_same_allocation() {
        let store = ArtifactStore::new(8);
        let (a, _) = store.image_slot(42);
        let (b, _) = store.image_slot(42);
        assert!(Arc::ptr_eq(&a, &b));
        let ea = store.es_slot(7);
        let eb = store.es_slot(7);
        assert!(Arc::ptr_eq(&ea, &eb));
    }
}
