//! Abstraction-layer violation checking — the paper's Figure 2.
//!
//! Figure 2 shows the "abuse" of the structure: test code linking
//! directly into the global layer, bypassing the abstraction layer.
//! *"Often, it is tempting to bypass the abstraction layer, especially
//! when under time pressure. However, by doing so, any protection from
//! change will be lost."* This checker finds such abuse statically in
//! test-cell sources:
//!
//! * includes of anything other than the abstraction layer's files,
//! * direct references to global-layer (`ES_*`) entry points,
//! * hardwired MMIO addresses where a `Globals.inc` define belongs.

use std::fmt;

use advm_asm::{tokenize, Loc, Token};
use advm_soc::memmap::{MMIO_SIZE, MMIO_START};
use serde::{Deserialize, Serialize};

use crate::env::{ModuleTestEnv, BASE_FUNCTIONS_FILE, GLOBALS_FILE};

/// The kind of abstraction-layer violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A test includes a file other than the abstraction layer's.
    DirectGlobalInclude,
    /// A test references an `ES_*` global-layer symbol directly instead
    /// of going through a base function.
    DirectEsReference,
    /// A test hardwires an address in the MMIO range.
    HardwiredMmioAddress,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::DirectGlobalInclude => "direct global-layer include",
            ViolationKind::DirectEsReference => "direct ES function reference",
            ViolationKind::HardwiredMmioAddress => "hardwired MMIO address",
        })
    }
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The offending test cell.
    pub test_id: String,
    /// 1-based line within the cell's `test.asm`.
    pub line: u32,
    /// Classification.
    pub kind: ViolationKind,
    /// The offending text (include path, symbol or literal).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.test_id, self.line, self.kind, self.detail
        )
    }
}

/// Scans every test cell of an environment for violations.
pub fn check_env(env: &ModuleTestEnv) -> Vec<Violation> {
    let mut violations = Vec::new();
    for cell in env.cells() {
        check_source(cell.id(), cell.source(), &mut violations);
    }
    violations
}

/// Scans one test source.
pub fn check_source(test_id: &str, source: &str, out: &mut Vec<Violation>) {
    for (idx, raw) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let trimmed = raw.trim();
        // Include discipline (text-level, like the preprocessor).
        if trimmed.to_ascii_uppercase().starts_with(".INCLUDE") {
            let path = trimmed[".INCLUDE".len()..].trim();
            let path = path
                .split(';')
                .next()
                .unwrap_or("")
                .trim()
                .trim_matches('"');
            if path != GLOBALS_FILE && path != BASE_FUNCTIONS_FILE {
                out.push(Violation {
                    test_id: test_id.to_owned(),
                    line: line_no,
                    kind: ViolationKind::DirectGlobalInclude,
                    detail: path.to_owned(),
                });
            }
            continue;
        }
        let loc = Loc::new(test_id, line_no);
        let Ok(tokens) = tokenize(raw, &loc) else {
            continue; // unlexable lines fail assembly; not our concern here
        };
        for token in &tokens {
            match token {
                Token::Ident(name) if name.starts_with("ES_") => {
                    out.push(Violation {
                        test_id: test_id.to_owned(),
                        line: line_no,
                        kind: ViolationKind::DirectEsReference,
                        detail: name.clone(),
                    });
                }
                Token::Number(n) => {
                    let v = *n;
                    if v >= i64::from(MMIO_START) && v < i64::from(MMIO_START + MMIO_SIZE) {
                        out.push(Violation {
                            test_id: test_id.to_owned(),
                            line: line_no,
                            kind: ViolationKind::HardwiredMmioAddress,
                            detail: format!("{v:#x}"),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use crate::env::{EnvConfig, TestCell};

    use super::*;

    fn env_of(cells: Vec<TestCell>) -> ModuleTestEnv {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            cells,
        )
    }

    #[test]
    fn clean_test_has_no_violations() {
        let env = env_of(vec![TestCell::new(
            "TEST_CLEAN",
            "clean",
            "\
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST1_TARGET_PAGE
_main:
    LOAD ArgA, #TEST_PAGE
    CALL Base_Select_Page
    CALL Base_Report_Pass
    RETURN
",
        )]);
        assert!(check_env(&env).is_empty());
    }

    #[test]
    fn direct_es_call_flagged() {
        let env = env_of(vec![TestCell::new(
            "TEST_ABUSE",
            "figure 2 abuse",
            "\
.INCLUDE Globals.inc
_main:
    LOAD CallAddr, ES_INIT_REGISTER
    CALL CallAddr
    CALL Base_Report_Pass
    RETURN
",
        )]);
        let violations = check_env(&env);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::DirectEsReference);
        assert_eq!(violations[0].detail, "ES_INIT_REGISTER");
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn hardwired_mmio_flagged() {
        let env = env_of(vec![TestCell::new(
            "TEST_HARDWIRED",
            "hardwired address",
            "\
.INCLUDE Globals.inc
_main:
    STORE [0xE0100], d14
    CALL Base_Report_Pass
    RETURN
",
        )]);
        let violations = check_env(&env);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::HardwiredMmioAddress);
        assert_eq!(violations[0].detail, "0xe0100");
    }

    #[test]
    fn non_mmio_literals_are_fine() {
        let env = env_of(vec![TestCell::new(
            "TEST_NUMS",
            "plain numbers",
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #42
    LOAD d2, #0x40000
    CALL Base_Report_Pass
    RETURN
",
        )]);
        assert!(check_env(&env).is_empty());
    }

    #[test]
    fn foreign_include_flagged() {
        let env = env_of(vec![TestCell::new(
            "TEST_INC",
            "includes ES directly",
            "\
.INCLUDE Globals.inc
.INCLUDE Embedded_Software.asm
_main:
    CALL Base_Report_Pass
    RETURN
",
        )]);
        let violations = check_env(&env);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::DirectGlobalInclude);
        assert_eq!(violations[0].detail, "Embedded_Software.asm");
    }

    #[test]
    fn multiple_violations_all_reported() {
        let env = env_of(vec![TestCell::new(
            "TEST_MANY",
            "several sins",
            "\
.INCLUDE Other_Env_Base.asm
_main:
    LOAD CallAddr, ES_MEMCPY
    STORE [0xEFF00], d1
    RETURN
",
        )]);
        let violations = check_env(&env);
        assert_eq!(violations.len(), 3);
    }

    #[test]
    fn display_is_informative() {
        let v = Violation {
            test_id: "TEST_X".into(),
            line: 7,
            kind: ViolationKind::DirectEsReference,
            detail: "ES_DELAY".into(),
        };
        assert_eq!(
            v.to_string(),
            "TEST_X:7: direct ES function reference: ES_DELAY"
        );
    }
}
