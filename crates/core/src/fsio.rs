//! Filesystem round-tripping for environment trees.
//!
//! The methodology engine works on in-memory trees (path → content); the
//! CLI and real-world users need them on disk in exactly the Figure 3 /
//! Figure 5 shape. These helpers convert between the two.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes a tree under `root`, creating directories as needed.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or file writes.
pub fn write_tree(root: &Path, tree: &BTreeMap<String, String>) -> io::Result<()> {
    for (rel, content) in tree {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, content)?;
    }
    Ok(())
}

/// Reads every regular file under `root` into a tree keyed by
/// `/`-separated relative paths (sorted, deterministic).
///
/// # Errors
///
/// Propagates I/O errors; non-UTF-8 file contents are rejected as
/// `InvalidData` (assembler sources are text by definition).
pub fn read_tree(root: &Path) -> io::Result<BTreeMap<String, String>> {
    let mut tree = BTreeMap::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("entry is under root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let bytes = fs::read(&path)?;
                let text = String::from_utf8(bytes).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{} is not UTF-8 text", path.display()),
                    )
                })?;
                tree.insert(rel, text);
            }
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use crate::env::{EnvConfig, ModuleTestEnv, TestCell};

    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("advm-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn tree_roundtrips_through_disk() {
        let dir = temp_dir("roundtrip");
        let env = ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new(
                "TEST_A",
                "demo",
                ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
            )],
        );
        let tree = env.tree();
        write_tree(&dir, &tree).expect("write");
        let back = read_tree(&dir).expect("read");
        assert_eq!(back, tree);

        // And the environment reconstructs from the on-disk copy.
        let rebuilt = ModuleTestEnv::from_tree("PAGE", &back).expect("complete");
        assert_eq!(rebuilt, env);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_tree_of_empty_dir_is_empty() {
        let dir = temp_dir("empty");
        assert!(read_tree(&dir).expect("read").is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
