//! # advm — the Assembler Driven Verification Methodology engine
//!
//! This crate is the paper's primary contribution made executable: a
//! layered assembler test-environment architecture in which **all change
//! is absorbed by an abstraction layer**, so directed tests port to new
//! chip derivatives, new simulation platforms and new embedded-software
//! releases without being edited.
//!
//! | paper artifact | module |
//! |----------------|--------|
//! | Figure 1 — module test environment structure | [`mod@env`], [`layer`] |
//! | Figure 2 — abuse of the structure | [`violation`] |
//! | Figure 3 — module directory structure | [`mod@env`] (tree + layout validator) |
//! | Figure 4 — complete test environment | [`system`] |
//! | Figure 5 — system directory structure | [`system`], [`runtime`] |
//! | Figure 6 — globals-controlled bit-field test | [`presets::page_env`], [`basefuncs`] |
//! | Figure 7 — wrapped ES function | [`basefuncs`], [`presets::es_env`] |
//! | §2/§3 — releases and regressions | [`release`], [`regression`] |
//! | the porting claim | [`porting`] |
//!
//! ```
//! use advm::build::run_cell;
//! use advm::env::EnvConfig;
//! use advm::porting::{port_env, test_files_touched};
//! use advm::presets::{default_config, page_env};
//! use advm_soc::{DerivativeId, PlatformId};
//!
//! # fn main() -> Result<(), advm_asm::AsmError> {
//! // Build the Figure 6 environment and run a test on the golden model.
//! let env = page_env(default_config(), 2);
//! assert!(run_cell(&env, "TEST_PAGE_SELECT_01")?.passed());
//!
//! // Port it to the widened-page derivative: zero test files change.
//! let outcome = port_env(&env, EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel));
//! assert_eq!(test_files_touched(&outcome.changes), 0);
//! assert!(run_cell(&outcome.env, "TEST_PAGE_SELECT_01")?.passed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod audit;
pub mod basefuncs;
pub mod build;
pub mod campaign;
pub mod coverage;
pub mod env;
pub mod fsio;
pub mod fuzz;
pub mod layer;
pub mod porting;
pub mod prefix;
pub mod presets;
pub mod regression;
pub mod release;
pub mod runtime;
pub mod stimulus;
pub mod system;
pub mod testplan;
pub mod violation;
pub mod wire;

pub use artifacts::{ArtifactStore, ArtifactStoreStats, DEFAULT_ARTIFACT_CAPACITY};
pub use audit::{AuditCell, AuditError, CellOutcome, FaultAudit, FaultAuditReport};
pub use basefuncs::{base_functions, BaseFuncsStyle};
pub use build::{build_cell, run_cell, run_cell_with_fault};
pub use campaign::{
    Campaign, CampaignError, CampaignEvent, CampaignObserver, CampaignReport, CheckerViolation,
    EventLog, ObserverFactory, ProgressObserver, TestRun, DEFAULT_MONITOR_CAPACITY,
};
pub use coverage::{ModuleCoverage, RegisterCoverage};
pub use env::{validate_layout, EnvConfig, LayoutIssue, ModuleTestEnv, Stimulus, TestCell};
pub use fuzz::{
    program_env, Fuzz, FuzzError, FuzzReport, DEFAULT_FUZZ_PROGRAMS, DEFAULT_FUZZ_SEED,
};
pub use layer::{classify_path, Layer};
pub use porting::{port_env, PortOutcome};
pub use prefix::{PrefixPool, DEFAULT_PREFIX_BUDGET};
#[allow(deprecated)]
pub use regression::run_regression;
pub use regression::{RegressionConfig, RegressionReport};
pub use release::{Release, ReleaseError, ReleaseStore, SystemRelease};
pub use stimulus::{
    coverage_feedback, directed_source, fault_hunter_cells, scenario_env, Exploration,
    ExplorationError, ExplorationReport, RoundReport,
};
pub use system::{SystemIssue, SystemVerificationEnv};
pub use testplan::{Testplan, TestplanEntry};
pub use violation::{check_env, Violation, ViolationKind};
pub use wire::{JsonValue, WireError};
