//! Building and running test cells.
//!
//! A *unit* is one test cell compiled with its environment's abstraction
//! layer and the global libraries, laid out per the SC88 runtime
//! contract: vector table at 0, startup stub at the reset PC, then trap
//! handlers, base functions and the test. The embedded-software ROM is
//! assembled separately (it is global-layer code delivered by another
//! team) and merged at image level — overlap is a build error.

use advm_asm::{assemble, AsmError, Image, Program, SourceSet};
use advm_sim::{Platform, PlatformFault, RunResult};
use advm_soc::{Derivative, EsRom};

use crate::env::{ModuleTestEnv, BASE_FUNCTIONS_FILE, GLOBALS_FILE, TEST_SOURCE_FILE};
use crate::runtime::{
    startup_stub, trap_handlers, vector_table, TRAP_HANDLERS_FILE, VECTOR_TABLE_FILE,
};

/// Name of the synthesized unit entry file.
pub const UNIT_FILE: &str = "__unit.asm";

/// Builds the flat source set for assembling one cell of an environment.
///
/// The set uses the short file names the paper's listings use
/// (`Globals.inc`, `Base_Functions.asm`), mapped from the environment's
/// tree.
///
/// # Errors
///
/// Returns an error if the cell does not exist.
pub fn unit_sources(env: &ModuleTestEnv, cell_id: &str) -> Result<SourceSet, AsmError> {
    let cell = env.cell(cell_id).ok_or_else(|| {
        AsmError::general(format!(
            "no test cell `{cell_id}` in environment `{}`",
            env.name()
        ))
    })?;
    let unit = format!(
        "\
;; {UNIT_FILE} — generated build wrapper for {env_name}/{cell_id}
.INCLUDE {GLOBALS_FILE}
.ORG 0x0
.INCLUDE {VECTOR_TABLE_FILE}
.ORG 0x100
{stub}
.INCLUDE {TRAP_HANDLERS_FILE}
.INCLUDE {BASE_FUNCTIONS_FILE}
.INCLUDE {TEST_SOURCE_FILE}
",
        env_name = env.name(),
        stub = startup_stub(),
    );
    Ok(SourceSet::new()
        .with(UNIT_FILE, unit)
        .with(GLOBALS_FILE, env.globals_text())
        .with(BASE_FUNCTIONS_FILE, env.base_functions_text())
        .with(VECTOR_TABLE_FILE, vector_table())
        .with(TRAP_HANDLERS_FILE, trap_handlers())
        .with(TEST_SOURCE_FILE, cell.source()))
}

/// Assembles one cell into its unit program.
///
/// # Errors
///
/// Propagates assembly errors, located in the offending source file.
pub fn assemble_cell(env: &ModuleTestEnv, cell_id: &str) -> Result<Program, AsmError> {
    let sources = unit_sources(env, cell_id)?;
    assemble(UNIT_FILE, &sources)
}

/// Generates the source of the embedded-software ROM the environment's
/// configuration expects.
pub fn es_rom_source(env: &ModuleTestEnv) -> String {
    let derivative = Derivative::from_id(env.config().derivative);
    EsRom::generate(&derivative, env.config().es_version)
        .source()
        .to_owned()
}

/// Assembles the embedded-software ROM the environment's configuration
/// expects.
///
/// # Errors
///
/// Propagates assembly errors (a failure here indicates a broken ES
/// generator, but the error is surfaced rather than panicking because the
/// experiments deliberately build historical/mismatched configurations).
pub fn assemble_es_rom(env: &ModuleTestEnv) -> Result<Program, AsmError> {
    advm_asm::assemble_str(&es_rom_source(env))
}

/// Links an assembled unit and ES ROM into one loadable image.
///
/// This is the final stage of the [`crate::campaign::Campaign`] worker
/// hot path; exposing it separately lets the campaign's build cache
/// assemble the (campaign-wide identical) ES ROM once and re-link it
/// against many units.
///
/// # Errors
///
/// Propagates image-overlap link errors.
pub fn link_programs(unit: &Program, es: &Program) -> Result<Image, AsmError> {
    let mut image = Image::new();
    image
        .load_program(unit)
        .map_err(|e| AsmError::general(format!("unit link failed: {e}")))?;
    image
        .load_program(es)
        .map_err(|e| AsmError::general(format!("ES ROM link failed: {e}")))?;
    Ok(image)
}

/// Assembles and links one full image from pre-generated inputs: the
/// cell's unit source set plus the ES ROM source.
///
/// # Errors
///
/// Propagates assembly errors and image-overlap link errors.
pub fn build_from_sources(sources: &SourceSet, es_source: &str) -> Result<Image, AsmError> {
    let unit = assemble(UNIT_FILE, sources)?;
    let es = advm_asm::assemble_str(es_source)?;
    link_programs(&unit, &es)
}

/// Builds the full loadable image for one cell: unit + ES ROM.
///
/// # Errors
///
/// Propagates assembly errors and image-overlap link errors.
pub fn build_cell(env: &ModuleTestEnv, cell_id: &str) -> Result<Image, AsmError> {
    let sources = unit_sources(env, cell_id)?;
    build_from_sources(&sources, &es_rom_source(env))
}

/// Builds and runs one cell on the environment's configured platform.
///
/// # Errors
///
/// Propagates build errors; execution problems are reported inside the
/// [`RunResult`], not as `Err`.
pub fn run_cell(env: &ModuleTestEnv, cell_id: &str) -> Result<RunResult, AsmError> {
    run_cell_with_fault(env, cell_id, PlatformFault::None)
}

/// Like [`run_cell`], with a hardware fault injected into the platform.
///
/// # Errors
///
/// Propagates build errors.
pub fn run_cell_with_fault(
    env: &ModuleTestEnv,
    cell_id: &str,
    fault: PlatformFault,
) -> Result<RunResult, AsmError> {
    let image = build_cell(env, cell_id)?;
    let derivative = Derivative::from_id(env.config().derivative);
    let mut platform = Platform::with_fault(env.config().platform, &derivative, fault);
    platform.load_image(&image);
    Ok(platform.run())
}

#[cfg(test)]
mod tests {
    use advm_soc::{DerivativeId, PlatformId};

    use crate::env::{EnvConfig, TestCell};

    use super::*;

    fn env_with(source: &str) -> ModuleTestEnv {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![TestCell::new("TEST_ONE", "demo", source)],
        )
    }

    #[test]
    fn minimal_passing_cell_builds_and_passes() {
        let env = env_with(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Report_Pass
    RETURN
",
        );
        let result = run_cell(&env, "TEST_ONE").unwrap();
        assert!(result.passed(), "{result}");
    }

    #[test]
    fn paper_figure6_cell_passes_end_to_end() {
        // The Figure 6 test, completed with the check-and-report epilogue:
        // build the page value with INSERT under globals control, write
        // it, and verify the hardware took it.
        let env = env_with(
            "\
;; Code for test 1
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST1_TARGET_PAGE
_main:
    CALL Base_Init_Register
    MOVI d14, #0
    INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    OR d14, d14, #PAGE_ENABLE_MASK
    STORE [PAGE_CTRL_ADDR], d14
    LOAD ArgA, #TEST_PAGE
    CALL Base_Check_Active_Page
    CMP RetVal, #0
    JNE t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #1
    CALL Base_Report_Fail
    RETURN
",
        );
        let result = run_cell(&env, "TEST_ONE").unwrap();
        assert!(result.passed(), "{result}");
    }

    #[test]
    fn figure7_wrapped_es_call_works() {
        let env = env_with(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Init_Register
    LOAD d1, [PAGE_CTRL_ADDR]
    AND d1, d1, #PAGE_ENABLE_MASK
    CMP d1, #0
    JEQ t_fail
    CALL Base_Report_Pass
    RETURN
t_fail:
    LOAD ArgA, #2
    CALL Base_Report_Fail
    RETURN
",
        );
        let result = run_cell(&env, "TEST_ONE").unwrap();
        assert!(result.passed(), "{result}");
    }

    #[test]
    fn missing_cell_reports_error() {
        let env = env_with("_main:\n    RETURN\n");
        assert!(run_cell(&env, "TEST_MISSING").is_err());
    }

    #[test]
    fn returning_without_result_fails_with_no_result_code() {
        let env = env_with(
            "\
.INCLUDE Globals.inc
_main:
    RETURN
",
        );
        let result = run_cell(&env, "TEST_ONE").unwrap();
        assert!(!result.passed());
        assert_eq!(
            result.outcome,
            Some(advm_soc::TestOutcome::Fail {
                detail: crate::runtime::fail_codes::NO_RESULT as u16
            })
        );
    }

    #[test]
    fn stray_trap_fails_via_default_handler() {
        let env = env_with(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, [0x70000]       ; unmapped: bus error trap
    CALL Base_Report_Pass
    RETURN
",
        );
        let result = run_cell(&env, "TEST_ONE").unwrap();
        assert!(!result.passed());
        assert_eq!(
            result.outcome,
            Some(advm_soc::TestOutcome::Fail {
                detail: crate::runtime::fail_codes::BUS_ERROR as u16
            })
        );
    }

    #[test]
    fn check_eq_macro_works() {
        let env = env_with(
            "\
.INCLUDE Globals.inc
_main:
    LOAD d1, #7
    CHECK_EQ d1, #7, 10
    CHECK_EQ d1, #8, 11
    CALL Base_Report_Pass
    RETURN
",
        );
        let result = run_cell(&env, "TEST_ONE").unwrap();
        assert!(!result.passed());
        assert_eq!(
            result.outcome,
            Some(advm_soc::TestOutcome::Fail { detail: 11 })
        );
    }

    #[test]
    fn same_cell_runs_on_every_platform() {
        let base = env_with(
            "\
.INCLUDE Globals.inc
_main:
    CALL Base_Wdt_Init
    CALL Base_Wdt_Service
    CALL Base_Report_Pass
    RETURN
",
        );
        for platform in PlatformId::ALL {
            let mut env = base.clone();
            let config = EnvConfig::new(DerivativeId::Sc88A, platform);
            env.reconfigure(config);
            let result = run_cell(&env, "TEST_ONE").unwrap();
            assert!(result.passed(), "{platform}: {result}");
        }
    }
}
