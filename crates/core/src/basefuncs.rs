//! Generation of `Base_Functions.asm` — the abstraction layer's function
//! library.
//!
//! §2 of the paper: *"The second component included in the abstraction
//! layer is a library of functions, named 'Base Functions'. […] the
//! 'Base Functions' library will wrap each of the global functions so
//! that the tests can never call them directly."* These wrappers give
//! tests a **stable calling convention** (`ArgA`/`ArgB` in, `RetVal`
//! out) regardless of the embedded-software release underneath.
//!
//! Two generation styles exist, which is the heart of the Figure 7
//! experiment:
//!
//! * [`BaseFuncsStyle::V1Only`] — the library as first written, assuming
//!   the v1 ES conventions. It silently breaks when the ES team releases
//!   v2 with swapped input registers.
//! * [`BaseFuncsStyle::VersionAware`] — the refactored library: each
//!   wrapper adapts to `ES_VERSION` (a `Globals.inc` define) with
//!   conditional assembly. This is the paper's "single point to handle
//!   it".

use std::fmt;

use serde::{Deserialize, Serialize};

/// How the base-function library copes with embedded-software revisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaseFuncsStyle {
    /// Original library: assumes ES v1 conventions unconditionally.
    V1Only,
    /// Refactored library: adapts to `ES_VERSION` at assembly time.
    #[default]
    VersionAware,
}

impl fmt::Display for BaseFuncsStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BaseFuncsStyle::V1Only => "v1-only",
            BaseFuncsStyle::VersionAware => "version-aware",
        })
    }
}

impl BaseFuncsStyle {
    /// Parses the style from its `ENV_CONFIG.TXT` representation.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "v1-only" => Some(BaseFuncsStyle::V1Only),
            "version-aware" => Some(BaseFuncsStyle::VersionAware),
            _ => None,
        }
    }
}

/// Generates `Base_Functions.asm`.
///
/// Every function reads its hardware addresses and field geometry from
/// `Globals.inc` defines — never a literal — so regenerating the globals
/// file re-targets the whole library.
pub fn base_functions(style: BaseFuncsStyle) -> String {
    // The render is a pure function of the style, and campaign planning
    // re-derives it for every (environment, platform) pairing; memoise
    // the two possible outputs so re-targeting costs one copy.
    use std::sync::OnceLock;
    static V1: OnceLock<String> = OnceLock::new();
    static VERSION_AWARE: OnceLock<String> = OnceLock::new();
    let cell = match style {
        BaseFuncsStyle::V1Only => &V1,
        BaseFuncsStyle::VersionAware => &VERSION_AWARE,
    };
    cell.get_or_init(|| render_base_functions(style)).clone()
}

fn render_base_functions(style: BaseFuncsStyle) -> String {
    let mut s = String::new();
    let mut line = |text: &str| {
        s.push_str(text);
        s.push('\n');
    };
    let v2 = style == BaseFuncsStyle::VersionAware;

    line(";; Base_Functions.asm — abstraction layer function library");
    line(&format!(";; style: {style}"));
    line(";; Calling convention: ArgA/ArgB in, RetVal out, d14/d15/a14 scratch.");
    line("");

    // ---- result reporting ------------------------------------------------
    line("Base_Report_Pass:");
    line("    LOAD d15, #RESULT_PASS");
    line("    STORE [TB_RESULT_ADDR], d15");
    line(".IF VERBOSE");
    line("    LOAD d15, #'P'");
    line("    STORE [TB_CHAROUT_ADDR], d15");
    line(".ENDIF");
    line("    STORE [TB_SIM_END_ADDR], d15");
    line("    RETURN");
    line("");
    line("Base_Report_Fail:            ; ArgA = failure detail code");
    line("    LOAD d15, #RESULT_FAIL");
    line("    OR d15, d15, ArgA");
    line("    STORE [TB_RESULT_ADDR], d15");
    line(".IF VERBOSE");
    line("    LOAD d15, #'F'");
    line("    STORE [TB_CHAROUT_ADDR], d15");
    line(".ENDIF");
    line("    STORE [TB_SIM_END_ADDR], d15");
    line("    RETURN");
    line("");
    line("Base_Console_Char:           ; ArgA = character (dropped when quiet)");
    line(".IF VERBOSE");
    line("    STORE [TB_CHAROUT_ADDR], ArgA");
    line(".ENDIF");
    line("    RETURN");
    line("");

    // ---- the Figure 7 wrapper ---------------------------------------------
    line("Base_Init_Register:          ; wraps ES_Init_Register (Figure 7)");
    line("    LOAD CallAddr, ES_INIT_REGISTER");
    line("    CALL CallAddr");
    line("    RETURN");
    line("");

    // ---- page module (Figure 6 territory) ---------------------------------
    line("Base_Select_Page:            ; ArgA = page number");
    line("    MOVI d14, #0");
    line("    INSERT d14, d14, ArgA, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE");
    line("    OR d14, d14, #PAGE_ENABLE_MASK");
    line("    STORE [PAGE_CTRL_ADDR], d14");
    line("    RETURN");
    line("");
    line("Base_Read_Active_Page:       ; RetVal = hardware's active page");
    line("    LOAD d14, [PAGE_STATUS_ADDR]");
    line("    EXTRACT RetVal, d14, ACTIVE_PAGE_POSITION, ACTIVE_PAGE_SIZE");
    line("    RETURN");
    line("");
    line("Base_Check_Active_Page:      ; ArgA = expected page; RetVal = 0 ok / 1 bad");
    line("    LOAD d14, [PAGE_STATUS_ADDR]");
    line("    EXTRACT d14, d14, ACTIVE_PAGE_POSITION, ACTIVE_PAGE_SIZE");
    line("    CMP d14, ArgA");
    line("    JNE base_cap_bad");
    line("    LOAD RetVal, #0");
    line("    RETURN");
    line("base_cap_bad:");
    line("    LOAD RetVal, #1");
    line("    RETURN");
    line("");

    // ---- UART ---------------------------------------------------------------
    line("Base_Uart_Init:");
    line("    LOAD d15, #UART_EN_MASK");
    line("    STORE [UART_CTRL_ADDR], d15");
    line("    RETURN");
    line("");
    line("Base_Uart_Init_Loopback:");
    line("    LOAD d15, #UART_EN_MASK | UART_LOOPBACK_MASK");
    line("    STORE [UART_CTRL_ADDR], d15");
    line("    RETURN");
    line("");
    line("Base_Uart_Send:              ; ArgA = byte (wraps ES_Uart_Send_Byte)");
    if v2 {
        line(".IF ES_VERSION == 2");
        line("    MOV d5, ArgA             ; v2 moved the byte to d5");
        line(".ENDIF");
    }
    line("    LOAD CallAddr, ES_UART_SEND_BYTE");
    line("    CALL CallAddr");
    line("    RETURN");
    line("");
    line("Base_Uart_Recv:              ; RetVal = byte, or 0xFFFFFFFF on timeout");
    line("    LOAD d14, #POLL_LIMIT");
    line("base_ur_wait:");
    line("    CMPI d14, #0");
    line("    JEQ base_ur_timeout");
    line("    SUB d14, d14, #1");
    line("    LOAD d15, [UART_STATUS_ADDR]");
    line("    AND d15, d15, #UART_RX_VALID_MASK");
    line("    CMPI d15, #0");
    line("    JEQ base_ur_wait");
    line("    LOAD RetVal, [UART_DATA_ADDR]");
    line("    RETURN");
    line("base_ur_timeout:");
    line("    LOAD RetVal, #0xFFFFFFFF");
    line("    RETURN");
    line("");

    // ---- NVM ------------------------------------------------------------------
    line("Base_Nvm_Unlock:             ; wraps ES_Nvm_Unlock");
    line("    LOAD CallAddr, ES_NVM_UNLOCK");
    line("    CALL CallAddr");
    line("    RETURN");
    line("");
    line("Base_Nvm_Write:              ; ArgA = NVM offset, ArgB = value");
    if v2 {
        line(".IF ES_VERSION == 2");
        line("    MOV d15, ArgA            ; v2 swapped the inputs");
        line("    MOV ArgA, ArgB");
        line("    MOV ArgB, d15");
        line(".ENDIF");
    }
    line("    LOAD CallAddr, ES_NVM_WRITE_WORD");
    line("    CALL CallAddr");
    line("    RETURN");
    line("");
    line("Base_Nvm_Erase:              ; ArgA = NVM offset (page-granular)");
    line("    ; no ES function exists for erase: the abstraction layer");
    line("    ; drives the controller directly, through defines only");
    line("    STORE [NVMC_ADDR_ADDR], ArgA");
    line("    LOAD d15, #2                ; CMD_ERASE");
    line("    STORE [NVMC_CMD_ADDR], d15");
    line("base_ne_wait:");
    line("    LOAD d15, [NVMC_STATUS_ADDR]");
    line("    AND d15, d15, #1            ; BUSY");
    line("    CMPI d15, #0");
    line("    JNE base_ne_wait");
    line("    RETURN");
    line("");

    // ---- memory helpers ----------------------------------------------------------
    line("Base_Memcpy:                 ; a4 = dst, a5 = src, ArgA(d4) = word count");
    if v2 {
        line(".IF ES_VERSION == 2");
        line("    MOV a14, a4              ; v2 swapped src and dst");
        line("    MOV a4, a5");
        line("    MOV a5, a14");
        line(".ENDIF");
    }
    line("    LOAD CallAddr, ES_MEMCPY");
    line("    CALL CallAddr");
    line("    RETURN");
    line("");
    line("Base_Checksum:               ; a4 = base, ArgA(d4) = words; RetVal = sum");
    line("    LOAD CallAddr, ES_CHECKSUM");
    line("    CALL CallAddr");
    if v2 {
        line(".IF ES_VERSION == 2");
        line("    MOV RetVal, d3           ; v2 moved the result to d3");
        line(".ENDIF");
    }
    line("    RETURN");
    line("");
    line("Base_Delay:                  ; ArgA = iterations (wraps ES_Delay)");
    line("    LOAD CallAddr, ES_DELAY");
    line("    CALL CallAddr");
    line("    RETURN");
    line("");

    // ---- watchdog ------------------------------------------------------------------
    line("Base_Wdt_Init:               ; no-op on platforms that disable the WDT");
    line(".IF WDT_DISABLE == 0");
    line("    LOAD d15, #1");
    line("    STORE [WDT_CTRL_ADDR], d15");
    line(".ENDIF");
    line("    RETURN");
    line("");
    line("Base_Wdt_Service:");
    line(".IF WDT_DISABLE == 0");
    line("    LOAD d15, #WDT_SERVICE_KEY");
    line("    STORE [WDT_SERVICE_ADDR], d15");
    line(".ENDIF");
    line("    RETURN");
    line("");

    // ---- interrupts ----------------------------------------------------------------
    line("Base_Install_Irq0_Hook:      ; ArgA = handler address");
    line("    STORE [HOOK_IRQ0_ADDR], ArgA");
    line("    RETURN");
    line("");
    line("Base_Install_Wdt_Hook:       ; ArgA = handler address");
    line("    STORE [HOOK_WDT_ADDR], ArgA");
    line("    RETURN");
    line("");
    line("Base_Intc_Enable:            ; ArgA = line mask");
    line("    STORE [INTC_ENABLE_ADDR], ArgA");
    line("    RETURN");
    line("");
    line("Base_Intc_Ack:               ; ArgA = line number");
    line("    STORE [INTC_ACK_ADDR], ArgA");
    line("    RETURN");
    line("");
    line("Base_Timer_Start:            ; ArgA = period, ArgB = ctrl bits");
    line("    STORE [TIMER_LOAD_ADDR], ArgA");
    line("    STORE [TIMER_CTRL_ADDR], ArgB");
    line("    RETURN");
    line("");
    line("Base_Timer_Clear_Expired:");
    line("    LOAD d15, #TIMER_EXPIRED_MASK");
    line("    STORE [TIMER_STATUS_ADDR], d15");
    line("    RETURN");
    line("");

    // ---- CRC -----------------------------------------------------------------------
    line("Base_Crc_Init:");
    line("    LOAD d15, #3                ; EN | INIT");
    line("    STORE [CRC_CTRL_ADDR], d15");
    line("    RETURN");
    line("");
    line("Base_Crc_Add:                ; ArgA = data word");
    line("    STORE [CRC_DATA_IN_ADDR], ArgA");
    line("    RETURN");
    line("");
    line("Base_Crc_Result:             ; RetVal = CRC-32");
    line("    LOAD RetVal, [CRC_RESULT_ADDR]");
    line("    RETURN");
    line("");

    // ---- checking macro ---------------------------------------------------------------
    line(";; CHECK_EQ actual, expected, code — report failure `code` unless equal.");
    line(".MACRO CHECK_EQ actual, expected, code");
    line("    CMP actual, expected");
    line("    JEQ LOCAL_check_ok");
    line("    LOAD ArgA, #code");
    line("    CALL Base_Report_Fail");
    line("LOCAL_check_ok:");
    line(".ENDM");

    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_differ_only_in_version_adaptation() {
        let v1 = base_functions(BaseFuncsStyle::V1Only);
        let aware = base_functions(BaseFuncsStyle::VersionAware);
        assert!(!v1.contains("ES_VERSION == 2"));
        assert!(aware.contains("ES_VERSION == 2"));
        // Both export the same function labels.
        for label in [
            "Base_Init_Register:",
            "Base_Select_Page:",
            "Base_Uart_Send:",
            "Base_Nvm_Write:",
            "Base_Memcpy:",
            "Base_Checksum:",
        ] {
            assert!(v1.contains(label), "{label} missing from v1-only");
            assert!(aware.contains(label), "{label} missing from version-aware");
        }
    }

    #[test]
    fn no_hardwired_mmio_addresses() {
        // The abstraction layer must reference everything through defines:
        // no literal in the MMIO range may appear.
        for style in [BaseFuncsStyle::V1Only, BaseFuncsStyle::VersionAware] {
            let text = base_functions(style);
            for line in text.lines() {
                let code = line.split(';').next().unwrap();
                assert!(
                    !code.contains("0xE0") && !code.contains("0xe0"),
                    "hardwired MMIO address in: {line}"
                );
            }
        }
    }

    #[test]
    fn style_roundtrips_through_parse() {
        for style in [BaseFuncsStyle::V1Only, BaseFuncsStyle::VersionAware] {
            assert_eq!(BaseFuncsStyle::parse(&style.to_string()), Some(style));
        }
        assert_eq!(BaseFuncsStyle::parse("bogus"), None);
    }

    #[test]
    fn figure7_wrapper_shape() {
        // The Base_Init_Register body matches the paper's listing:
        // LOAD CallAddr, ES_Init_Register; CALL CallAddr; RETURN.
        let text = base_functions(BaseFuncsStyle::VersionAware);
        let body: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.starts_with("Base_Init_Register:"))
            .take(4)
            .collect();
        assert!(body[1].contains("LOAD CallAddr, ES_INIT_REGISTER"));
        assert!(body[2].contains("CALL CallAddr"));
        assert!(body[3].contains("RETURN"));
    }
}
