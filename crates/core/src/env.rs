//! The module test environment — the paper's Figures 1 and 3.
//!
//! A [`ModuleTestEnv`] is the unit of ownership in the methodology: a
//! named environment containing test cells (the test layer), a generated
//! `Globals.inc` plus `Base_Functions.asm` (the abstraction layer), and a
//! plain-text test plan. It renders to the Figure 3 directory structure:
//!
//! ```text
//! MODULE_NAME/
//!   TESTPLAN.TXT
//!   Abstraction_Layer/
//!     Globals.inc
//!     Base_Functions.asm
//!     ENV_CONFIG.TXT
//!   TEST_ID_NAME/
//!     test.asm
//!   ...
//! ```
//!
//! The abstraction layer is **generated** from an [`EnvConfig`]
//! (derivative × platform × ES release × library style); the test cells
//! are immutable source. Re-targeting the environment (see
//! [`crate::porting`]) regenerates the abstraction layer and leaves every
//! test untouched — the paper's core claim, made executable.

use std::collections::BTreeMap;
use std::fmt;

use advm_soc::{Derivative, DerivativeId, EsVersion, GlobalsSpec, PlatformId};
use serde::{Deserialize, Serialize};

use crate::basefuncs::{base_functions, BaseFuncsStyle};
use crate::testplan::Testplan;

/// Configuration binding an environment to a derivative, platform and
/// embedded-software release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Target chip derivative.
    pub derivative: DerivativeId,
    /// Target execution platform.
    pub platform: PlatformId,
    /// Embedded-software release in the global layer.
    pub es_version: EsVersion,
    /// Base-function library style.
    pub style: BaseFuncsStyle,
}

impl EnvConfig {
    /// The default configuration: base chip, golden model, the chip's
    /// shipped ES release, version-aware library.
    pub fn new(derivative: DerivativeId, platform: PlatformId) -> Self {
        Self {
            derivative,
            platform,
            es_version: Derivative::from_id(derivative).es_version(),
            style: BaseFuncsStyle::VersionAware,
        }
    }

    /// Overrides the ES release (the Figure 7 scenario).
    pub fn with_es_version(mut self, version: EsVersion) -> Self {
        self.es_version = version;
        self
    }

    /// Overrides the library style.
    pub fn with_style(mut self, style: BaseFuncsStyle) -> Self {
        self.style = style;
        self
    }

    fn render(&self) -> String {
        format!(
            "DERIVATIVE={}\nPLATFORM={}\nES_VERSION={}\nSTYLE={}\n",
            self.derivative.name(),
            self.platform.name(),
            self.es_version.code(),
            self.style,
        )
    }

    fn parse(text: &str) -> Option<Self> {
        let mut derivative = None;
        let mut platform = None;
        let mut es_version = None;
        let mut style = None;
        for line in text.lines() {
            let (key, value) = line.split_once('=')?;
            match key {
                "DERIVATIVE" => {
                    derivative = DerivativeId::ALL.into_iter().find(|d| d.name() == value);
                }
                "PLATFORM" => {
                    platform = PlatformId::ALL.into_iter().find(|p| p.name() == value);
                }
                "ES_VERSION" => {
                    es_version = match value {
                        "1" => Some(EsVersion::V1),
                        "2" => Some(EsVersion::V2),
                        _ => None,
                    };
                }
                "STYLE" => style = BaseFuncsStyle::parse(value),
                _ => {}
            }
        }
        Some(Self {
            derivative: derivative?,
            platform: platform?,
            es_version: es_version?,
            style: style?,
        })
    }
}

/// A stimulus override for the generated abstraction layer: explicit
/// `TESTn_TARGET_PAGE` values and extra defines that survive
/// re-targeting.
///
/// Without an override, [`ModuleTestEnv::rebuild_abstraction_layer`]
/// derives default test pages from the cell count. A scenario-driven
/// environment (see `crate::stimulus`) instead pins the pages and knobs
/// its scenario drew; porting the environment to another platform or
/// derivative regenerates the abstraction layer *around* the pinned
/// stimulus — the paper's rule, extended to generated stimulus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stimulus {
    /// Explicit test-target pages; entry *i* becomes
    /// `TEST{i+1}_TARGET_PAGE` (wrapped into the derivative's page
    /// space on re-targeting).
    pub test_pages: Vec<u32>,
    /// Extra numeric defines rendered into `Globals.inc`.
    pub extra: Vec<(String, u32)>,
}

/// One test cell: a directory containing a single test source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCell {
    id: String,
    description: String,
    source: String,
}

impl TestCell {
    /// Creates a cell.
    ///
    /// # Panics
    ///
    /// Panics unless `id` starts with `TEST_` (the Figure 3 convention).
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        source: impl Into<String>,
    ) -> Self {
        let id = id.into();
        assert!(
            id.starts_with("TEST_"),
            "test cell id `{id}` must start with TEST_"
        );
        Self {
            id,
            description: description.into(),
            source: source.into(),
        }
    }

    /// The cell identifier (directory name).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The test-plan description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The assembler source of the test.
    pub fn source(&self) -> &str {
        &self.source
    }
}

/// A module test environment (Figure 1 / Figure 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleTestEnv {
    name: String,
    config: EnvConfig,
    globals_text: String,
    base_functions_text: String,
    cells: Vec<TestCell>,
    testplan: Testplan,
    #[serde(default)]
    stimulus: Option<Stimulus>,
}

/// File name of the generated globals file.
pub const GLOBALS_FILE: &str = "Globals.inc";
/// File name of the generated base-function library.
pub const BASE_FUNCTIONS_FILE: &str = "Base_Functions.asm";
/// File name of the environment configuration record.
pub const ENV_CONFIG_FILE: &str = "ENV_CONFIG.TXT";
/// File name of the test plan.
pub const TESTPLAN_FILE: &str = "TESTPLAN.TXT";
/// Directory name of the abstraction layer.
pub const ABSTRACTION_DIR: &str = "Abstraction_Layer";
/// File name of a cell's test source.
pub const TEST_SOURCE_FILE: &str = "test.asm";

impl ModuleTestEnv {
    /// Creates an environment and generates its abstraction layer.
    ///
    /// # Panics
    ///
    /// Panics if `name` contains a derivative-specific string — the
    /// paper forbids derivative-specific environment names — or if two
    /// cells share an id.
    pub fn new(name: impl Into<String>, config: EnvConfig, cells: Vec<TestCell>) -> Self {
        let name = name.into();
        assert!(
            !name_is_derivative_specific(&name),
            "environment name `{name}` is derivative specific"
        );
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert!(a.id != b.id, "duplicate test cell id `{}`", a.id);
            }
        }
        let mut testplan = Testplan::new(&name);
        for cell in &cells {
            testplan = testplan.with_entry(cell.id.clone(), cell.description.clone());
        }
        let mut env = Self {
            name,
            config,
            globals_text: String::new(),
            base_functions_text: String::new(),
            cells,
            testplan,
            stimulus: None,
        };
        env.rebuild_abstraction_layer();
        env
    }

    /// Pins an explicit stimulus (test pages + extra defines) into the
    /// generated abstraction layer. The override survives
    /// [`ModuleTestEnv::reconfigure`]: re-targeting regenerates
    /// addresses, field geometry and platform knobs around the same
    /// stimulus.
    pub fn with_stimulus(mut self, stimulus: Stimulus) -> Self {
        self.stimulus = Some(stimulus);
        self.rebuild_abstraction_layer();
        self
    }

    /// The pinned stimulus override, if any.
    pub fn stimulus(&self) -> Option<&Stimulus> {
        self.stimulus.as_ref()
    }

    /// Regenerates `Globals.inc` and `Base_Functions.asm` from the
    /// current configuration. Test cells are never touched — this is the
    /// "single point of change" of the methodology.
    pub fn rebuild_abstraction_layer(&mut self) {
        let derivative = Derivative::from_id(self.config.derivative);
        let pages = derivative.page_count();
        let mut spec = GlobalsSpec::new(derivative, self.config.platform)
            .with_es_version(self.config.es_version);
        spec = match &self.stimulus {
            Some(stimulus) => {
                // Wrap pinned pages into the (possibly narrower) page
                // space of the derivative we are re-targeting to.
                let mut spec =
                    spec.with_test_pages(stimulus.test_pages.iter().map(|p| p % pages).collect());
                for (name, value) in &stimulus.extra {
                    spec = spec.with_extra(name.clone(), *value);
                }
                spec
            }
            None => spec.with_generated_test_pages(self.cells.len().max(2)),
        };
        self.globals_text = cached_globals_text(&spec);
        self.base_functions_text = base_functions(self.config.style);
    }

    /// The environment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current configuration.
    pub fn config(&self) -> EnvConfig {
        self.config
    }

    /// Reconfigures the environment and regenerates the abstraction
    /// layer. Returns the old configuration.
    pub fn reconfigure(&mut self, config: EnvConfig) -> EnvConfig {
        let old = self.config;
        self.config = config;
        self.rebuild_abstraction_layer();
        old
    }

    /// The generated `Globals.inc` text.
    pub fn globals_text(&self) -> &str {
        &self.globals_text
    }

    /// The generated `Base_Functions.asm` text.
    pub fn base_functions_text(&self) -> &str {
        &self.base_functions_text
    }

    /// The test cells.
    pub fn cells(&self) -> &[TestCell] {
        &self.cells
    }

    /// Looks up a cell by id.
    pub fn cell(&self, id: &str) -> Option<&TestCell> {
        self.cells.iter().find(|c| c.id == id)
    }

    /// The test plan.
    pub fn testplan(&self) -> &Testplan {
        &self.testplan
    }

    /// Renders the Figure 3 directory tree (path → content).
    pub fn tree(&self) -> BTreeMap<String, String> {
        let mut tree = BTreeMap::new();
        let n = &self.name;
        tree.insert(format!("{n}/{TESTPLAN_FILE}"), self.testplan.render());
        tree.insert(
            format!("{n}/{ABSTRACTION_DIR}/{GLOBALS_FILE}"),
            self.globals_text.clone(),
        );
        tree.insert(
            format!("{n}/{ABSTRACTION_DIR}/{BASE_FUNCTIONS_FILE}"),
            self.base_functions_text.clone(),
        );
        tree.insert(
            format!("{n}/{ABSTRACTION_DIR}/{ENV_CONFIG_FILE}"),
            self.config.render(),
        );
        for cell in &self.cells {
            tree.insert(
                format!("{n}/{}/{TEST_SOURCE_FILE}", cell.id),
                cell.source.clone(),
            );
        }
        tree
    }

    /// Reconstructs an environment from a rendered tree (used when
    /// thawing a frozen release).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed piece.
    pub fn from_tree(name: &str, tree: &BTreeMap<String, String>) -> Result<Self, String> {
        let get = |path: String| -> Result<&String, String> {
            tree.get(&path).ok_or(format!("missing `{path}`"))
        };
        let config_text = get(format!("{name}/{ABSTRACTION_DIR}/{ENV_CONFIG_FILE}"))?;
        let config =
            EnvConfig::parse(config_text).ok_or_else(|| format!("malformed {ENV_CONFIG_FILE}"))?;
        let globals_text = get(format!("{name}/{ABSTRACTION_DIR}/{GLOBALS_FILE}"))?.clone();
        let base_functions_text =
            get(format!("{name}/{ABSTRACTION_DIR}/{BASE_FUNCTIONS_FILE}"))?.clone();
        let testplan = Testplan::parse(get(format!("{name}/{TESTPLAN_FILE}"))?);

        let mut cells = Vec::new();
        let prefix = format!("{name}/TEST_");
        for (path, content) in tree {
            if path.starts_with(&prefix) && path.ends_with(TEST_SOURCE_FILE) {
                let cell_id = path
                    .trim_start_matches(&format!("{name}/"))
                    .trim_end_matches(&format!("/{TEST_SOURCE_FILE}"))
                    .to_owned();
                let description = testplan
                    .entry(&cell_id)
                    .map(|e| e.description.clone())
                    .unwrap_or_default();
                cells.push(TestCell::new(cell_id, description, content.clone()));
            }
        }
        if cells.is_empty() {
            return Err(format!("environment `{name}` has no test cells"));
        }
        Ok(Self {
            name: name.to_owned(),
            config,
            globals_text,
            base_functions_text,
            cells,
            testplan,
            stimulus: None,
        })
    }

    /// Total source lines across the environment (effort accounting).
    pub fn total_lines(&self) -> usize {
        self.tree().values().map(|t| t.lines().count()).sum()
    }
}

impl fmt::Display for ModuleTestEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} tests, {} on {}]",
            self.name,
            self.cells.len(),
            self.config.derivative.name(),
            self.config.platform,
        )
    }
}

/// Renders a globals spec through a bounded process-wide cache.
///
/// Campaign planning re-targets environments to every platform, so the
/// same few (derivative, platform, release, test-page, extra-define)
/// combinations render dozens of times per plan while the rendered text
/// is a pure function of exactly those inputs. The cache is cleared
/// wholesale when full, bounding memory under randomized-globals
/// workloads without an eviction policy.
fn cached_globals_text(spec: &GlobalsSpec) -> String {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    type Key = (DerivativeId, PlatformId, u32, Vec<u32>, Vec<(String, u32)>);
    static CACHE: OnceLock<Mutex<HashMap<Key, String>>> = OnceLock::new();
    const CACHE_CAP: usize = 64;

    let key: Key = (
        spec.derivative().id(),
        spec.platform(),
        spec.es_version().code(),
        spec.test_pages().to_vec(),
        spec.extra().map(|(n, v)| (n.to_owned(), v)).collect(),
    );
    let mut cache = CACHE
        .get_or_init(Mutex::default)
        .lock()
        .expect("globals render cache lock");
    if let Some(text) = cache.get(&key) {
        return text.clone();
    }
    let text = spec.render().text();
    if cache.len() >= CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, text.clone());
    text
}

/// Whether an environment name embeds a derivative name (forbidden by the
/// methodology: "Derivative specific names are not permitted").
pub fn name_is_derivative_specific(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    DerivativeId::ALL.into_iter().any(|d| {
        let full = d.name().to_ascii_uppercase(); // e.g. "SC88-A"
        let compact = full.replace('-', ""); // "SC88A"
        upper.contains(&full) || upper.contains(&compact)
    })
}

/// A structural problem found by [`validate_layout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutIssue {
    /// `TESTPLAN.TXT` is missing.
    MissingTestplan,
    /// The abstraction-layer directory or one of its files is missing.
    MissingAbstractionLayer(String),
    /// A test cell directory lacks its `test.asm`.
    MissingTestSource(String),
    /// A test cell id does not follow the `TEST_*` convention.
    BadCellName(String),
    /// The environment name is derivative specific.
    DerivativeSpecificName(String),
    /// A file lies outside the recognised structure.
    StrayFile(String),
    /// A test cell is missing from the test plan.
    UnplannedTest(String),
}

impl fmt::Display for LayoutIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutIssue::MissingTestplan => f.write_str("TESTPLAN.TXT missing"),
            LayoutIssue::MissingAbstractionLayer(file) => {
                write!(f, "abstraction layer file missing: {file}")
            }
            LayoutIssue::MissingTestSource(cell) => {
                write!(f, "test cell `{cell}` lacks {TEST_SOURCE_FILE}")
            }
            LayoutIssue::BadCellName(cell) => {
                write!(
                    f,
                    "test cell `{cell}` does not follow the TEST_* convention"
                )
            }
            LayoutIssue::DerivativeSpecificName(name) => {
                write!(f, "derivative-specific name `{name}`")
            }
            LayoutIssue::StrayFile(path) => write!(f, "stray file `{path}`"),
            LayoutIssue::UnplannedTest(cell) => {
                write!(f, "test cell `{cell}` missing from TESTPLAN.TXT")
            }
        }
    }
}

/// Validates a rendered tree against the Figure 3 structure rules.
pub fn validate_layout(name: &str, tree: &BTreeMap<String, String>) -> Vec<LayoutIssue> {
    let mut issues = Vec::new();
    if name_is_derivative_specific(name) {
        issues.push(LayoutIssue::DerivativeSpecificName(name.to_owned()));
    }
    let testplan_path = format!("{name}/{TESTPLAN_FILE}");
    let testplan = match tree.get(&testplan_path) {
        Some(text) => Testplan::parse(text),
        None => {
            issues.push(LayoutIssue::MissingTestplan);
            Testplan::new(name)
        }
    };
    for file in [GLOBALS_FILE, BASE_FUNCTIONS_FILE, ENV_CONFIG_FILE] {
        let path = format!("{name}/{ABSTRACTION_DIR}/{file}");
        if !tree.contains_key(&path) {
            issues.push(LayoutIssue::MissingAbstractionLayer(file.to_owned()));
        }
    }
    for path in tree.keys() {
        let Some(rel) = path.strip_prefix(&format!("{name}/")) else {
            issues.push(LayoutIssue::StrayFile(path.clone()));
            continue;
        };
        let parts: Vec<&str> = rel.split('/').collect();
        match parts.as_slice() {
            [f] if *f == TESTPLAN_FILE => {}
            [d, _] if *d == ABSTRACTION_DIR => {}
            [cell, f] if *f == TEST_SOURCE_FILE => {
                if !cell.starts_with("TEST_") {
                    issues.push(LayoutIssue::BadCellName((*cell).to_owned()));
                } else {
                    if name_is_derivative_specific(cell) {
                        issues.push(LayoutIssue::DerivativeSpecificName((*cell).to_owned()));
                    }
                    if testplan.entry(cell).is_none() {
                        issues.push(LayoutIssue::UnplannedTest((*cell).to_owned()));
                    }
                }
            }
            _ => issues.push(LayoutIssue::StrayFile(path.clone())),
        }
    }
    // Cells listed in the plan but absent from the tree.
    for entry in testplan.entries() {
        let path = format!("{name}/{}/{TEST_SOURCE_FILE}", entry.id);
        if !tree.contains_key(&path) {
            issues.push(LayoutIssue::MissingTestSource(entry.id.clone()));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_cell(id: &str) -> TestCell {
        TestCell::new(
            id,
            "demo",
            ".INCLUDE Globals.inc\n_main:\n    CALL Base_Report_Pass\n    RETURN\n",
        )
    }

    fn simple_env() -> ModuleTestEnv {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![simple_cell("TEST_ALPHA"), simple_cell("TEST_BETA")],
        )
    }

    #[test]
    fn env_renders_figure3_tree() {
        let env = simple_env();
        let tree = env.tree();
        assert!(tree.contains_key("PAGE/TESTPLAN.TXT"));
        assert!(tree.contains_key("PAGE/Abstraction_Layer/Globals.inc"));
        assert!(tree.contains_key("PAGE/Abstraction_Layer/Base_Functions.asm"));
        assert!(tree.contains_key("PAGE/TEST_ALPHA/test.asm"));
        assert!(tree.contains_key("PAGE/TEST_BETA/test.asm"));
        assert!(validate_layout("PAGE", &tree).is_empty());
    }

    #[test]
    fn tree_roundtrips_through_from_tree() {
        let env = simple_env();
        let rebuilt = ModuleTestEnv::from_tree("PAGE", &env.tree()).unwrap();
        assert_eq!(rebuilt, env);
    }

    #[test]
    fn reconfigure_changes_only_abstraction_layer() {
        let env = simple_env();
        let before = env.tree();
        let mut ported = env.clone();
        ported.reconfigure(EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel));
        let after = ported.tree();
        // Tests and plan identical; abstraction layer files differ.
        assert_eq!(
            before["PAGE/TEST_ALPHA/test.asm"],
            after["PAGE/TEST_ALPHA/test.asm"]
        );
        assert_eq!(before["PAGE/TESTPLAN.TXT"], after["PAGE/TESTPLAN.TXT"]);
        assert_ne!(
            before["PAGE/Abstraction_Layer/Globals.inc"],
            after["PAGE/Abstraction_Layer/Globals.inc"]
        );
    }

    #[test]
    #[should_panic(expected = "derivative specific")]
    fn derivative_specific_name_rejected() {
        ModuleTestEnv::new(
            "UART_SC88A",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![simple_cell("TEST_X")],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate test cell")]
    fn duplicate_cells_rejected() {
        ModuleTestEnv::new(
            "PAGE",
            EnvConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            vec![simple_cell("TEST_X"), simple_cell("TEST_X")],
        );
    }

    #[test]
    fn layout_validator_flags_problems() {
        let env = simple_env();
        let mut tree = env.tree();
        tree.remove("PAGE/TESTPLAN.TXT");
        tree.insert("PAGE/random.txt".into(), "junk".into());
        tree.insert("PAGE/BADCELL/test.asm".into(), "x".into());
        let issues = validate_layout("PAGE", &tree);
        assert!(issues.contains(&LayoutIssue::MissingTestplan));
        assert!(issues
            .iter()
            .any(|i| matches!(i, LayoutIssue::StrayFile(_))));
        assert!(issues
            .iter()
            .any(|i| matches!(i, LayoutIssue::BadCellName(_))));
    }

    #[test]
    fn layout_validator_flags_unplanned_and_missing_tests() {
        let env = simple_env();
        let mut tree = env.tree();
        // Add an unplanned cell and remove a planned one's source.
        tree.insert("PAGE/TEST_ROGUE/test.asm".into(), "x".into());
        tree.remove("PAGE/TEST_BETA/test.asm");
        let issues = validate_layout("PAGE", &tree);
        assert!(issues.contains(&LayoutIssue::UnplannedTest("TEST_ROGUE".into())));
        assert!(issues.contains(&LayoutIssue::MissingTestSource("TEST_BETA".into())));
    }

    #[test]
    fn env_config_roundtrips() {
        let config = EnvConfig::new(DerivativeId::Sc88D, PlatformId::Accelerator)
            .with_es_version(EsVersion::V2)
            .with_style(BaseFuncsStyle::V1Only);
        assert_eq!(EnvConfig::parse(&config.render()), Some(config));
    }

    #[test]
    fn derivative_specific_name_detection() {
        assert!(name_is_derivative_specific("UART_SC88A"));
        assert!(name_is_derivative_specific("sc88-b_tests"));
        assert!(!name_is_derivative_specific("UART"));
        assert!(!name_is_derivative_specific("REGISTER_TESTS"));
    }

    #[test]
    fn stimulus_override_survives_reconfigure() {
        let mut env = simple_env().with_stimulus(Stimulus {
            test_pages: vec![13, 29],
            extra: vec![("MY_KNOB".to_owned(), 77)],
        });
        assert!(env.globals_text().contains("TEST1_TARGET_PAGE .EQU 0xD"));
        assert!(env.globals_text().contains("MY_KNOB .EQU 0x4D"));
        env.reconfigure(EnvConfig::new(DerivativeId::Sc88C, PlatformId::Accelerator));
        // Re-targeting regenerates the layer around the pinned stimulus.
        assert!(env.globals_text().contains("TEST1_TARGET_PAGE .EQU 0xD"));
        assert!(env.globals_text().contains("TEST2_TARGET_PAGE .EQU 0x1D"));
        assert!(env.globals_text().contains("MY_KNOB .EQU 0x4D"));
        assert!(env.stimulus().is_some());
    }

    #[test]
    fn stimulus_pages_wrap_into_narrower_page_spaces() {
        // SC88-A has 32 pages; a pinned page 40 wraps to 8 rather than
        // tripping the GlobalsSpec bound panic.
        let env = simple_env().with_stimulus(Stimulus {
            test_pages: vec![40],
            extra: Vec::new(),
        });
        assert!(env.globals_text().contains("TEST1_TARGET_PAGE .EQU 0x8"));
    }

    #[test]
    fn globals_follow_derivative() {
        let mut env = simple_env();
        assert!(env.globals_text().contains("PAGE_FIELD_SIZE .EQU 0x5"));
        env.reconfigure(EnvConfig::new(DerivativeId::Sc88C, PlatformId::GoldenModel));
        assert!(env.globals_text().contains("PAGE_FIELD_SIZE .EQU 0x6"));
    }
}
