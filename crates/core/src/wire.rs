//! The wire layer — a dependency-free JSON value model for the
//! campaign-as-a-service protocol.
//!
//! Every report in this workspace already *renders* JSON by hand
//! ([`CampaignReport::to_json`](crate::campaign::CampaignReport::to_json)
//! and friends); a verification daemon additionally has to *consume*
//! JSON — client requests arrive as newline-delimited JSON lines, and
//! round-trip tests must prove the streamed
//! [`CampaignEvent`](crate::campaign::CampaignEvent) NDJSON is a stable
//! contract. crates.io is unreachable here, so this module supplies the
//! missing half as a small recursive-descent parser over a [`JsonValue`]
//! tree, plus the escaping helper every renderer shares.
//!
//! The model is deliberately minimal: objects preserve key order (they
//! are association lists, not maps), numbers are `f64` with checked
//! integer accessors, and parsing rejects trailing garbage — a protocol
//! line is one value, not a prefix of one.
//!
//! ```
//! use advm::wire::JsonValue;
//!
//! let value = JsonValue::parse(r#"{"cmd":"submit","job":7,"tags":["a","b"]}"#)?;
//! assert_eq!(value.get("cmd").and_then(JsonValue::as_str), Some("submit"));
//! assert_eq!(value.get("job").and_then(JsonValue::as_u64), Some(7));
//! assert_eq!(value.get("tags").and_then(JsonValue::as_array).map(<[_]>::len), Some(2));
//! // Rendering round-trips structurally.
//! assert_eq!(JsonValue::parse(&value.to_json())?, value);
//! # Ok::<(), advm::wire::WireError>(())
//! ```

use std::fmt;

/// A structured wire-format failure: what went wrong and the byte
/// offset in the input where it was noticed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
    offset: usize,
}

impl WireError {
    /// Builds an error at a byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }

    /// Builds an error about the value's *shape* (a missing field, a
    /// wrong type) rather than its syntax.
    pub fn shape(message: impl Into<String>) -> Self {
        Self::new(message, 0)
    }

    /// Byte offset in the input where the error was noticed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for WireError {}

/// One parsed JSON value.
///
/// Objects are association lists: key order is preserved and duplicate
/// keys are kept as parsed ([`JsonValue::get`] returns the first).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers above 2^53 lose precision; the checked
    /// accessors reject values that did.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Self, WireError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(WireError::new(
                "trailing characters after JSON value",
                parser.pos,
            ));
        }
        Ok(value)
    }

    /// Looks up a key of an object (first occurrence); `None` for
    /// missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer: rejects non-numbers,
    /// negatives, fractions and magnitudes past 2^53 (where `f64`
    /// parsing already lost precision).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        if n.fract() == 0.0 && (0.0..EXACT).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A required string field of an object, with a shape error naming
    /// the key when absent or mistyped.
    pub fn str_field(&self, key: &str) -> Result<&str, WireError> {
        self.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| WireError::shape(format!("missing or non-string field `{key}`")))
    }

    /// A required unsigned-integer field of an object, with a shape
    /// error naming the key when absent or mistyped.
    pub fn u64_field(&self, key: &str) -> Result<u64, WireError> {
        self.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| WireError::shape(format!("missing or non-integer field `{key}`")))
    }

    /// A required boolean field of an object, with a shape error naming
    /// the key when absent or mistyped.
    pub fn bool_field(&self, key: &str) -> Result<bool, WireError> {
        self.get(key)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| WireError::shape(format!("missing or non-boolean field `{key}`")))
    }

    /// Renders the value back to compact JSON. Parsing the result
    /// yields a structurally equal value (numbers render via Rust's
    /// shortest-round-trip `f64` formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::Str(s) => out.push_str(&json_string(s)),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(key));
                    out.push(':');
                    value.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string into a double-quoted JSON literal — the one escaping
/// routine every renderer in the workspace shares.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The recursive-descent parser state: a byte cursor over the input.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), WireError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::new(
                format!("expected `{}`", byte as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(WireError::new(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, WireError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(WireError::new(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(WireError::new("unexpected end of input", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, WireError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(WireError::new("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(WireError::new("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(WireError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| WireError::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(WireError::new(
                                format!("unknown escape `\\{}`", other as char),
                                self.pos - 1,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar, not one byte: the
                    // input is a &str, so boundaries are trustworthy.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| WireError::new("invalid UTF-8 in string", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, WireError> {
        let unit = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by an
        // escaped low surrogate; anything else is malformed.
        if (0xD800..=0xDBFF).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let combined =
                        0x10000 + ((u32::from(unit) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| WireError::new("invalid surrogate pair", self.pos));
                }
            }
            return Err(WireError::new("unpaired surrogate escape", self.pos));
        }
        char::from_u32(u32::from(unit))
            .ok_or_else(|| WireError::new("invalid \\u escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u16, WireError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| WireError::new("truncated \\u escape", self.pos))?;
        let unit = u16::from_str_radix(digits, 16)
            .map_err(|_| WireError::new("non-hex \\u escape", self.pos))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| WireError::new(format!("bad number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(JsonValue::parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::Str("hi".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let v = JsonValue::parse(r#"{"b":[1,{"x":null}],"a":"z"}"#).unwrap();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(v.get("a").and_then(JsonValue::as_str), Some("z"));
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(b[0].as_u64(), Some(1));
        assert_eq!(b[1].get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let raw = "a\"b\\c\nd\te\u{1}f/δ";
        let rendered = json_string(raw);
        let parsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(raw));
        // Surrogate pair decoding.
        let v = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integer_accessor_is_exact() {
        assert_eq!(JsonValue::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(JsonValue::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-7").unwrap().as_u64(), None);
        // 2^53 + 1 is not representable exactly — refuse to pretend.
        assert_eq!(JsonValue::parse("9007199254740993").unwrap().as_u64(), None);
    }

    #[test]
    fn render_round_trips_real_report_shapes() {
        let text = r#"{"total":4,"pass_rate":0.75,"cache":{"hits":2},"tests":[{"env":"PAGE","results":{"golden":"pass"}}]}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
        assert_eq!(v.to_json(), text, "integer-valued numbers render bare");
    }

    #[test]
    fn shape_accessors_name_the_missing_field() {
        let v = JsonValue::parse(r#"{"cmd":"status"}"#).unwrap();
        assert_eq!(v.str_field("cmd").unwrap(), "status");
        let err = v.u64_field("job").unwrap_err();
        assert!(err.to_string().contains("`job`"), "{err}");
    }
}
