//! The Unix-domain-socket front-end of the daemon.
//!
//! One accept loop, one thread per connection, newline-delimited JSON in
//! both directions (see [`crate::protocol`]). The server owns a
//! [`Daemon`] and translates wire requests into calls on it; `watch`
//! turns the connection into an event stream until the watched job
//! seals.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::daemon::Daemon;
use crate::protocol::{error_line, Request};

/// A bound, not-yet-running server.
pub struct Server {
    daemon: Arc<Daemon>,
    listener: UnixListener,
    path: PathBuf,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("path", &self.path)
            .field("daemon", &self.daemon)
            .finish()
    }
}

impl Server {
    /// Binds the socket (replacing a stale socket file, as daemons
    /// conventionally do) and takes ownership of the daemon.
    pub fn bind(daemon: Daemon, path: &Path) -> io::Result<Self> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        Ok(Self {
            daemon: Arc::new(daemon),
            listener,
            path: path.to_path_buf(),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serves until a client sends `shutdown`. Each connection runs on
    /// its own thread; request errors are answered on the wire, not
    /// propagated here.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let daemon = Arc::clone(&self.daemon);
            let stop = Arc::clone(&self.stop);
            let path = self.path.clone();
            std::thread::Builder::new()
                .name("advm-serve-conn".to_owned())
                .spawn(move || {
                    // A dropped connection mid-reply is the client's
                    // problem, not the daemon's.
                    let _ = handle_connection(&daemon, stream, &stop, &path);
                })
                .expect("spawning connection thread");
        }
        drop(self.listener);
        let _ = std::fs::remove_file(&self.path);
        self.daemon.shutdown();
        Ok(())
    }
}

/// Serves one connection: a sequence of request lines, each answered by
/// one reply line (or, for `watch`, a stream of them).
fn handle_connection(
    daemon: &Daemon,
    stream: UnixStream,
    stop: &AtomicBool,
    path: &Path,
) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::from_json(&line) {
            Ok(request) => request,
            Err(error) => {
                reply(&mut writer, &error_line(&error.to_string()))?;
                continue;
            }
        };
        match request {
            Request::Submit(spec) => {
                let id = daemon.submit(spec);
                reply(&mut writer, &format!("{{\"ok\":true,\"job\":{id}}}"))?;
            }
            Request::Status => reply(&mut writer, &daemon.status_line())?,
            Request::List => reply(&mut writer, &daemon.list_line())?,
            Request::Cancel { job } => reply(&mut writer, &daemon.cancel(job))?,
            Request::Watch { job } => match daemon.job(job) {
                None => reply(&mut writer, &error_line(&format!("no such job {job}")))?,
                Some(record) => {
                    // Atomic snapshot + subscription: the backlog and
                    // the live tail never overlap or leave a gap.
                    let (backlog, live) = record.subscribe();
                    for line in &backlog {
                        reply(&mut writer, line)?;
                    }
                    if let Some(live) = live {
                        for line in live {
                            reply(&mut writer, &line)?;
                        }
                    }
                }
            },
            Request::Shutdown => {
                reply(&mut writer, "{\"ok\":true,\"shutdown\":true}")?;
                stop.store(true, Ordering::SeqCst);
                // Self-connect to unblock the accept loop.
                let _ = UnixStream::connect(path);
                break;
            }
        }
    }
    Ok(())
}

/// Writes one reply line, flushed — watchers read events as they
/// happen, not when a buffer fills.
fn reply(writer: &mut UnixStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
