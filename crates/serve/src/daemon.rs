//! The resident verification daemon: a shared job queue, a worker pool
//! executing [`JobSpec`]s, and per-job event streams.
//!
//! The daemon is deliberately transport-free — it is driven either
//! in-process (tests, doctests, embedding) or by the Unix-socket
//! front-end in [`crate::server`]. What makes it more than a thread
//! pool is the shared [`ArtifactStore`]: every campaign of every job is
//! dressed with one store, so builds, predecoded programs and prefix
//! snapshots survive from job to job. A warm resubmission of the same
//! suite skips assembly entirely and reports the reuse in its `perf`
//! JSON (`artifact_hits`).

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use advm::artifacts::{ArtifactStore, DEFAULT_ARTIFACT_CAPACITY};
use advm::audit::FaultAudit;
use advm::campaign::{Campaign, CampaignEvent, CampaignObserver, CampaignPerf, ObserverFactory};
use advm::env::ModuleTestEnv;
use advm::fuzz::Fuzz;
use advm::stimulus::Exploration;
use advm_soc::PlatformId;

use crate::job::{JobSpec, JobState};

/// Daemon construction knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Concurrent jobs (worker threads). Each job additionally runs its
    /// own campaign worker pool, so the default is deliberately small.
    pub workers: usize,
    /// Image-slot capacity of the shared [`ArtifactStore`].
    pub cache_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            cache_capacity: DEFAULT_ARTIFACT_CAPACITY,
        }
    }
}

/// The append-only event stream of one job plus its subscriber list.
struct JobStream {
    /// Every line emitted so far (events, then one final `done` line).
    lines: Vec<String>,
    /// Live watchers; a dropped receiver is pruned on the next push.
    subscribers: Vec<Sender<String>>,
    /// Set once the final line is pushed.
    finished: bool,
}

/// One submitted job: spec, lifecycle state, and its event stream.
pub struct JobRecord {
    id: u64,
    spec: JobSpec,
    state: Mutex<JobState>,
    stream: Mutex<JobStream>,
    /// Signalled on every pushed line and on finish.
    cv: Condvar,
    seq: AtomicU64,
    /// The final `done` line, also present at the end of the stream.
    result: OnceLock<String>,
    /// The finished job's aggregated campaign perf (all internal
    /// campaigns absorbed), for the status/list phase split.
    perf: OnceLock<CampaignPerf>,
}

impl JobRecord {
    fn new(id: u64, spec: JobSpec) -> Self {
        Self {
            id,
            spec,
            state: Mutex::new(JobState::Queued),
            stream: Mutex::new(JobStream {
                lines: Vec::new(),
                subscribers: Vec::new(),
                finished: false,
            }),
            cv: Condvar::new(),
            seq: AtomicU64::new(0),
            result: OnceLock::new(),
            perf: OnceLock::new(),
        }
    }

    /// The job's queue id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The submitted spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// A snapshot of the lifecycle state.
    pub fn state(&self) -> JobState {
        self.state.lock().expect("job state poisoned").clone()
    }

    fn set_state(&self, state: JobState) {
        *self.state.lock().expect("job state poisoned") = state;
    }

    /// Appends one line and fans it out to live subscribers.
    fn push_line(&self, line: String, last: bool) {
        let mut stream = self.stream.lock().expect("job stream poisoned");
        stream
            .subscribers
            .retain(|tx| tx.send(line.clone()).is_ok());
        stream.lines.push(line);
        if last {
            stream.finished = true;
            stream.subscribers.clear();
        }
        drop(stream);
        self.cv.notify_all();
    }

    /// The stream so far, plus a live receiver when the job is still
    /// running (`None` once finished — the backlog is complete). The
    /// snapshot and the subscription are atomic: no line is lost or
    /// duplicated between them.
    pub fn subscribe(&self) -> (Vec<String>, Option<Receiver<String>>) {
        let mut stream = self.stream.lock().expect("job stream poisoned");
        let backlog = stream.lines.clone();
        if stream.finished {
            (backlog, None)
        } else {
            let (tx, rx) = std::sync::mpsc::channel();
            stream.subscribers.push(tx);
            (backlog, Some(rx))
        }
    }

    /// Blocks until the job reaches a terminal state, returning its
    /// final `done` line.
    pub fn wait(&self) -> String {
        let mut stream = self.stream.lock().expect("job stream poisoned");
        while !stream.finished {
            stream = self.cv.wait(stream).expect("job stream poisoned");
        }
        drop(stream);
        self.result
            .get()
            .expect("finished job has a result")
            .clone()
    }

    /// The final `done` line, if the job already finished.
    pub fn result_line(&self) -> Option<String> {
        self.result.get().cloned()
    }

    /// The finished job's aggregated campaign perf, if it completed
    /// successfully (`None` while queued/running and for failures).
    pub fn perf(&self) -> Option<&CampaignPerf> {
        self.perf.get()
    }

    /// Emits one campaign event into the stream.
    fn push_event(&self, event: &CampaignEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push_line(
            format!(
                "{{\"job\":{},\"seq\":{seq},\"event\":{}}}",
                self.id,
                event.to_json()
            ),
            false,
        );
    }

    /// Seals the job with its final line.
    fn finish(&self, state: JobState, line: String) {
        self.set_state(state);
        let _ = self.result.set(line.clone());
        self.push_line(line, true);
    }
}

/// An observer handle forwarding one campaign's events into a job's
/// stream; the audit/exploration drivers build one per internal
/// campaign via [`ObserverFactory`].
struct EventStreamer(Arc<JobRecord>);

impl CampaignObserver for EventStreamer {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.0.push_event(event);
    }
}

/// Queue state behind the daemon's mutex.
struct QueueState {
    queue: VecDeque<u64>,
    jobs: Vec<Arc<JobRecord>>,
    shutdown: bool,
}

struct Shared {
    store: Arc<ArtifactStore>,
    state: Mutex<QueueState>,
    cv: Condvar,
    workers: usize,
}

/// The resident verification service. See the [module docs](self).
pub struct Daemon {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("workers", &self.shared.workers)
            .field("store", &self.shared.store)
            .finish()
    }
}

impl Default for Daemon {
    fn default() -> Self {
        Self::start(DaemonConfig::default())
    }
}

impl Daemon {
    /// Starts the worker pool (threads are named `advm-serve-N`).
    pub fn start(config: DaemonConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            store: Arc::new(ArtifactStore::new(config.cache_capacity)),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                jobs: Vec::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            workers,
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("advm-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning daemon worker")
            })
            .collect();
        Self { shared, threads }
    }

    /// The shared cross-job artifact store.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.shared.store
    }

    /// Enqueues a job, returning its id.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let mut state = self.shared.state.lock().expect("daemon state poisoned");
        let id = state.jobs.len() as u64;
        state.jobs.push(Arc::new(JobRecord::new(id, spec)));
        state.queue.push_back(id);
        drop(state);
        self.shared.cv.notify_one();
        id
    }

    /// Looks up a job record.
    pub fn job(&self, id: u64) -> Option<Arc<JobRecord>> {
        let state = self.shared.state.lock().expect("daemon state poisoned");
        state.jobs.get(id as usize).cloned()
    }

    /// Cancels a queued job. Running jobs are not interrupted — the
    /// reply says whether the cancel took effect.
    pub fn cancel(&self, id: u64) -> String {
        let Some(record) = self.job(id) else {
            return crate::protocol::error_line(&format!("no such job {id}"));
        };
        let mut job_state = record.state.lock().expect("job state poisoned");
        let cancelled = matches!(*job_state, JobState::Queued);
        if cancelled {
            *job_state = JobState::Cancelled;
        }
        drop(job_state);
        if cancelled {
            record.finish(
                JobState::Cancelled,
                format!("{{\"job\":{id},\"done\":true,\"ok\":false,\"cancelled\":true}}"),
            );
        }
        format!("{{\"ok\":true,\"job\":{id},\"cancelled\":{cancelled}}}")
    }

    /// One-line daemon summary: job counts by state, worker count, the
    /// artifact store's hit/miss/eviction counters, and the per-phase
    /// wall split (build/exec/report) summed over every finished job.
    pub fn status_line(&self) -> String {
        let state = self.shared.state.lock().expect("daemon state poisoned");
        let mut counts = [0usize; 5];
        let mut phases = CampaignPerf::default();
        for job in &state.jobs {
            let index = match job.state() {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done { .. } => 2,
                JobState::Failed { .. } => 3,
                JobState::Cancelled => 4,
            };
            counts[index] += 1;
            if let Some(perf) = job.perf() {
                phases.absorb(perf);
            }
        }
        drop(state);
        format!(
            "{{\"ok\":true,\"workers\":{},\"queued\":{},\"running\":{},\
             \"done\":{},\"failed\":{},\"cancelled\":{},\"artifacts\":{},\
             \"phases\":{}}}",
            self.shared.workers,
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            self.shared.store.stats().to_json(),
            phases_json(&phases)
        )
    }

    /// One line listing every known job: id, kind, state, and — once
    /// the job finished — its per-phase wall split.
    pub fn list_line(&self) -> String {
        let state = self.shared.state.lock().expect("daemon state poisoned");
        let jobs: Vec<String> = state
            .jobs
            .iter()
            .map(|job| {
                let mut line = format!(
                    "{{\"job\":{},\"kind\":\"{}\",\"state\":\"{}\"",
                    job.id(),
                    job.spec().kind(),
                    job.state().name()
                );
                if let Some(perf) = job.perf() {
                    line.push_str(&format!(",\"phases\":{}", phases_json(perf)));
                }
                line.push('}');
                line
            })
            .collect();
        format!("{{\"ok\":true,\"jobs\":[{}]}}", jobs.join(","))
    }

    /// Signals shutdown: workers exit after their current job; queued
    /// jobs are abandoned.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().expect("daemon state poisoned");
        state.shutdown = true;
        drop(state);
        self.shared.cv.notify_all();
    }

    /// Shuts down and joins the worker pool.
    pub fn join(mut self) {
        self.shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Renders a perf block's phase split: build (assembly + planning),
/// exec (the run itself) and report (sealing, divergence, bisection)
/// wall, in milliseconds.
fn phases_json(perf: &CampaignPerf) -> String {
    format!(
        "{{\"build_ms\":{:.3},\"exec_ms\":{:.3},\"report_ms\":{:.3}}}",
        perf.build_wall.as_secs_f64() * 1e3,
        perf.exec_wall.as_secs_f64() * 1e3,
        perf.report_wall.as_secs_f64() * 1e3
    )
}

/// One worker: pull, execute, seal, repeat.
fn worker_loop(shared: &Shared) {
    loop {
        let record = {
            let mut state = shared.state.lock().expect("daemon state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    break Arc::clone(&state.jobs[id as usize]);
                }
                state = shared.cv.wait(state).expect("daemon state poisoned");
            }
        };
        // A cancel may have landed between enqueue and pickup.
        if record.state().is_terminal() {
            continue;
        }
        record.set_state(JobState::Running);
        match execute(record.spec(), &shared.store, &record) {
            Ok((ok, report, perf)) => {
                let _ = record.perf.set(perf);
                record.finish(
                    JobState::Done { ok },
                    format!(
                        "{{\"job\":{},\"done\":true,\"ok\":{ok},\"report\":{report}}}",
                        record.id()
                    ),
                );
            }
            Err(error) => record.finish(
                JobState::Failed {
                    error: error.clone(),
                },
                format!(
                    "{{\"job\":{},\"done\":true,\"ok\":false,\"error\":{}}}",
                    record.id(),
                    advm::wire::json_string(&error)
                ),
            ),
        }
    }
}

/// Builds the observer factory handing each internal campaign a fresh
/// stream handle onto `record`.
fn streamer_factory(record: &Arc<JobRecord>) -> ObserverFactory {
    let record = Arc::clone(record);
    Arc::new(move || Box::new(EventStreamer(Arc::clone(&record))) as Box<dyn CampaignObserver>)
}

/// Executes one job spec against the shared store, streaming events to
/// the record. Returns the run-level verdict, the report JSON, and the
/// job's aggregated campaign perf (all internal campaigns absorbed).
fn execute(
    spec: &JobSpec,
    store: &Arc<ArtifactStore>,
    record: &Arc<JobRecord>,
) -> Result<(bool, String, CampaignPerf), String> {
    match spec {
        JobSpec::Regress {
            dir,
            env,
            platforms,
            all_platforms,
            workers,
            fuel,
        } => {
            let tree = advm::fsio::read_tree(Path::new(dir))
                .map_err(|e| format!("reading `{dir}`: {e}"))?;
            let env = ModuleTestEnv::from_tree(env, &tree)
                .map_err(|e| format!("environment `{env}` in `{dir}`: {e}"))?;
            // Mirrors `advm-cli regress`: bisection on, the
            // environment's own platform when none is requested.
            let mut campaign = Campaign::new()
                .env(env.clone())
                .bisect(true)
                .artifact_store(Arc::clone(store))
                .observe(EventStreamer(Arc::clone(record)));
            campaign = if *all_platforms {
                campaign.platforms(PlatformId::ALL)
            } else if platforms.is_empty() {
                campaign.platform(env.config().platform)
            } else {
                campaign.platforms(platforms.iter().copied())
            };
            if let Some(workers) = workers {
                campaign = campaign.workers(*workers as usize);
            }
            if let Some(fuel) = fuel {
                campaign = campaign.fuel(*fuel);
            }
            let report = campaign.run().map_err(|e| e.to_string())?;
            Ok((report.failed() == 0, report.to_json(), *report.perf()))
        }
        JobSpec::Audit {
            platforms,
            all_platforms,
            scenarios,
            seed,
            workers,
            fuel,
        } => {
            let mut audit = FaultAudit::new()
                .artifact_store(Arc::clone(store))
                .observe_with(streamer_factory(record));
            if *all_platforms {
                audit = audit.platforms(PlatformId::ALL);
            } else if !platforms.is_empty() {
                audit = audit.platforms(platforms.iter().copied());
            }
            if let Some(scenarios) = scenarios {
                audit = audit.scenarios(*scenarios as usize);
            }
            if let Some(seed) = seed {
                audit = audit.seed(*seed);
            }
            if let Some(workers) = workers {
                audit = audit.workers(*workers as usize);
            }
            if let Some(fuel) = fuel {
                audit = audit.fuel(*fuel);
            }
            let report = audit.run().map_err(|e| e.to_string())?;
            Ok((report.broken() == 0, report.to_json(), *report.perf()))
        }
        JobSpec::Explore {
            rounds,
            seed,
            batch,
            workers,
            derivative,
            all_platforms,
        } => {
            let mut exploration = Exploration::new()
                .artifact_store(Arc::clone(store))
                .observe_with(streamer_factory(record));
            if let Some(rounds) = rounds {
                exploration = exploration.rounds(*rounds as usize);
            }
            if let Some(seed) = seed {
                exploration = exploration.master_seed(*seed);
            }
            if let Some(batch) = batch {
                exploration = exploration.batch(*batch as usize);
            }
            if let Some(workers) = workers {
                exploration = exploration.workers(*workers as usize);
            }
            if let Some(derivative) = derivative {
                exploration = exploration.derivative(*derivative);
            }
            if *all_platforms {
                exploration = exploration.platforms(PlatformId::ALL);
            }
            let report = exploration.run().map_err(|e| e.to_string())?;
            let mut perf = CampaignPerf::default();
            for round in report.rounds() {
                perf.absorb(round.campaign.perf());
            }
            Ok((report.failed() == 0, report.to_json(), perf))
        }
        JobSpec::Fuzz {
            programs,
            seed,
            mine,
            platforms,
            all_platforms,
            workers,
            fuel,
        } => {
            let mut fuzz = Fuzz::new()
                .mine(*mine)
                .artifact_store(Arc::clone(store))
                .observe_with(streamer_factory(record));
            if let Some(programs) = programs {
                fuzz = fuzz.programs(*programs as usize);
            }
            if let Some(seed) = seed {
                fuzz = fuzz.seed(*seed);
            }
            if *all_platforms {
                fuzz = fuzz.platforms(PlatformId::ALL);
            } else if !platforms.is_empty() {
                fuzz = fuzz.platforms(platforms.iter().copied());
            }
            if let Some(workers) = workers {
                fuzz = fuzz.workers(*workers as usize);
            }
            if let Some(fuel) = fuel {
                fuzz = fuzz.fuel(*fuel);
            }
            let report = fuzz.run().map_err(|e| e.to_string())?;
            let perf = *report.campaign().perf();
            Ok((report.ok(), report.to_json(), perf))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advm::wire::JsonValue;

    fn tiny_env_dir() -> tempdir::TempDir {
        let env = advm::presets::page_env(advm::presets::default_config(), 1);
        let dir = tempdir::TempDir::new("advm-serve-test");
        advm::fsio::write_tree(dir.path(), &env.tree()).expect("writing env tree");
        dir
    }

    /// Minimal self-cleaning temp dir (no external crate available).
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempDir(PathBuf);
        static NEXT: AtomicU64 = AtomicU64::new(0);

        impl TempDir {
            pub fn new(prefix: &str) -> Self {
                let path = std::env::temp_dir().join(format!(
                    "{prefix}-{}-{}",
                    std::process::id(),
                    NEXT.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&path).expect("creating temp dir");
                Self(path)
            }

            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    fn regress_spec(dir: &std::path::Path) -> JobSpec {
        JobSpec::Regress {
            dir: dir.display().to_string(),
            env: "PAGE".into(),
            platforms: vec![
                advm_soc::PlatformId::GoldenModel,
                advm_soc::PlatformId::RtlSim,
            ],
            all_platforms: false,
            workers: Some(2),
            fuel: None,
        }
    }

    #[test]
    fn submitted_job_runs_streams_and_seals() {
        let dir = tiny_env_dir();
        let daemon = Daemon::start(DaemonConfig {
            workers: 1,
            cache_capacity: 32,
        });
        let id = daemon.submit(regress_spec(dir.path()));
        let record = daemon.job(id).expect("job exists");
        let line = record.wait();
        assert!(
            matches!(record.state(), JobState::Done { ok: true }),
            "{line}"
        );
        let value = JsonValue::parse(&line).unwrap();
        assert!(value.bool_field("done").unwrap());
        assert!(value.bool_field("ok").unwrap());
        assert!(value.get("report").is_some(), "{line}");
        // The backlog is a complete, ordered event stream.
        let (backlog, live) = record.subscribe();
        assert!(live.is_none(), "finished job has no live tail");
        let first = JsonValue::parse(&backlog[0]).unwrap();
        assert_eq!(
            first.get("event").unwrap().str_field("type").unwrap(),
            "started"
        );
        assert_eq!(backlog.last().unwrap(), &line);
        daemon.join();
    }

    #[test]
    fn warm_job_reuses_cold_jobs_artifacts() {
        let dir = tiny_env_dir();
        let daemon = Daemon::start(DaemonConfig {
            workers: 1,
            cache_capacity: 32,
        });
        let cold = daemon.job(daemon.submit(regress_spec(dir.path()))).unwrap();
        let cold_line = cold.wait();
        let warm = daemon.job(daemon.submit(regress_spec(dir.path()))).unwrap();
        let warm_line = warm.wait();

        let perf_hits = |line: &str| {
            JsonValue::parse(line)
                .unwrap()
                .get("report")
                .and_then(|r| r.get("perf"))
                .map(|p| p.u64_field("artifact_hits").unwrap())
                .expect("report carries perf")
        };
        assert_eq!(perf_hits(&cold_line), 0, "{cold_line}");
        assert!(perf_hits(&warm_line) > 0, "{warm_line}");
        assert!(daemon.store().stats().hits > 0);
        daemon.join();
    }

    #[test]
    fn cancel_only_reaches_queued_jobs() {
        let daemon = Daemon::start(DaemonConfig {
            workers: 1,
            cache_capacity: 8,
        });
        // No worker will ever run job 1 before job 0 finishes; cancel
        // it while queued.
        let dir = tiny_env_dir();
        let first = daemon.submit(regress_spec(dir.path()));
        let second = daemon.submit(regress_spec(dir.path()));
        let reply = daemon.cancel(second);
        assert!(reply.contains("\"cancelled\":true"), "{reply}");
        let record = daemon.job(second).unwrap();
        assert_eq!(record.wait(), record.result_line().unwrap());
        assert_eq!(record.state(), JobState::Cancelled);
        // The first job still completes.
        assert!(matches!(
            daemon.job(first).unwrap().wait(),
            line if line.contains("\"done\":true")
        ));
        let missing = daemon.cancel(99);
        assert!(missing.contains("no such job"), "{missing}");
        daemon.join();
    }

    #[test]
    fn fuzz_job_mines_checkers_and_streams_events() {
        let daemon = Daemon::start(DaemonConfig {
            workers: 1,
            cache_capacity: 32,
        });
        let id = daemon.submit(JobSpec::Fuzz {
            programs: Some(3),
            seed: Some(11),
            mine: true,
            platforms: vec![
                advm_soc::PlatformId::GoldenModel,
                advm_soc::PlatformId::RtlSim,
            ],
            all_platforms: false,
            workers: Some(2),
            fuel: None,
        });
        let record = daemon.job(id).expect("job exists");
        let line = record.wait();
        assert!(
            matches!(record.state(), JobState::Done { ok: true }),
            "{line}"
        );
        let value = JsonValue::parse(&line).unwrap();
        let report = value.get("report").expect("report present");
        assert_eq!(report.u64_field("programs").unwrap(), 3);
        assert_eq!(report.u64_field("seed").unwrap(), 11);
        assert!(
            !report.get("mined").unwrap().as_array().unwrap().is_empty(),
            "{line}"
        );
        let checkers = report.get("campaign").unwrap().get("checkers").unwrap();
        assert!(checkers.u64_field("armed").unwrap() > 0, "{line}");
        assert!(
            checkers
                .get("violations")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "{line}"
        );
        // The stream carries campaign events, fuzz-run provenance included.
        let (backlog, _) = record.subscribe();
        assert!(
            backlog
                .iter()
                .any(|l| l.contains("\"type\":\"job_started\"") && l.contains("FUZZ_")),
            "stream must carry fuzz runs"
        );
        daemon.join();
    }

    #[test]
    fn status_and_list_lines_are_wellformed() {
        let daemon = Daemon::start(DaemonConfig {
            workers: 1,
            cache_capacity: 8,
        });
        let dir = tiny_env_dir();
        let id = daemon.submit(regress_spec(dir.path()));
        daemon.job(id).unwrap().wait();
        let status = JsonValue::parse(&daemon.status_line()).unwrap();
        assert_eq!(status.u64_field("done").unwrap(), 1);
        assert!(status.get("artifacts").is_some());
        let phases = status.get("phases").unwrap();
        for key in ["build_ms", "exec_ms", "report_ms"] {
            assert!(phases.get(key).is_some(), "status phases lack {key}");
        }
        let list = JsonValue::parse(&daemon.list_line()).unwrap();
        let jobs = list.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].str_field("kind").unwrap(), "regress");
        assert_eq!(jobs[0].str_field("state").unwrap(), "done");
        let phases = jobs[0].get("phases").unwrap();
        for key in ["build_ms", "exec_ms", "report_ms"] {
            assert!(phases.get(key).is_some(), "job phases lack {key}");
        }
        daemon.join();
    }
}
