//! Job specifications — the daemon's unit of work.
//!
//! A [`JobSpec`] abstracts over the four run types the engine exposes
//! ([`Campaign`](advm::campaign::Campaign),
//! [`FaultAudit`](advm::audit::FaultAudit),
//! [`Exploration`](advm::stimulus::Exploration),
//! [`Fuzz`](advm::fuzz::Fuzz)) as one serializable
//! value: what `advm-cli submit` sends over the socket is exactly what
//! a worker thread later executes. Field names mirror the CLI's flag
//! surfaces (`--workers`, `--fuel`, `--all-platforms`, …).

use advm::wire::{json_string, JsonValue, WireError};
use advm_soc::{DerivativeId, PlatformId};

/// Looks up a platform by its wire name (`golden`, `rtl`, …).
fn platform_by_name(name: &str) -> Result<PlatformId, WireError> {
    PlatformId::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| WireError::shape(format!("unknown platform `{name}`")))
}

/// Reads an optional `u64` field.
fn opt_u64(value: &JsonValue, key: &str) -> Result<Option<u64>, WireError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(_) => value.u64_field(key).map(Some),
    }
}

/// Reads an optional platform-name array field.
fn opt_platforms(value: &JsonValue, key: &str) -> Result<Vec<PlatformId>, WireError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(Vec::new()),
        Some(items) => items
            .as_array()
            .ok_or_else(|| WireError::shape(format!("`{key}` must be an array")))?
            .iter()
            .map(|item| {
                item.as_str()
                    .ok_or_else(|| WireError::shape(format!("`{key}` holds a non-string")))
                    .and_then(platform_by_name)
            })
            .collect(),
    }
}

/// Reads an optional boolean field (absent = false).
fn opt_bool(value: &JsonValue, key: &str) -> Result<bool, WireError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(false),
        Some(_) => value.bool_field(key),
    }
}

/// Renders `"key":n,` for a present optional.
fn push_opt_u64(out: &mut String, key: &str, value: Option<u64>) {
    if let Some(value) = value {
        out.push_str(&format!(",\"{key}\":{value}"));
    }
}

/// One executable verification job, as submitted over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// A regression campaign over one on-disk environment — the daemon
    /// side of `advm-cli regress`.
    Regress {
        /// Directory holding the environment tree (daemon-side path).
        dir: String,
        /// Environment name inside the tree.
        env: String,
        /// Explicit target platforms; empty means the environment's
        /// configured platform (or every platform with `all_platforms`).
        platforms: Vec<PlatformId>,
        /// Run the full six-platform matrix.
        all_platforms: bool,
        /// Campaign worker override.
        workers: Option<u64>,
        /// Per-run instruction budget override.
        fuel: Option<u64>,
    },
    /// A suite-strength fault audit — the daemon side of
    /// `advm-cli audit`.
    Audit {
        /// Audited platforms; empty keeps the audit default (rtl).
        platforms: Vec<PlatformId>,
        /// Audit every non-reference platform.
        all_platforms: bool,
        /// Escape-round scenario batch size.
        scenarios: Option<u64>,
        /// Master seed of the escape-driven plan.
        seed: Option<u64>,
        /// Campaign worker override.
        workers: Option<u64>,
        /// Per-run instruction budget override.
        fuel: Option<u64>,
    },
    /// A closed-loop coverage exploration — the daemon side of
    /// `advm-cli explore`.
    Explore {
        /// Closed-loop round count.
        rounds: Option<u64>,
        /// Master seed.
        seed: Option<u64>,
        /// Scenarios per round.
        batch: Option<u64>,
        /// Campaign worker override.
        workers: Option<u64>,
        /// Derivative under exploration.
        derivative: Option<DerivativeId>,
        /// Explore the full six-platform matrix.
        all_platforms: bool,
    },
    /// A program-fuzzing campaign with optional assertion mining — the
    /// daemon side of `advm-cli fuzz`.
    Fuzz {
        /// Generated program count override.
        programs: Option<u64>,
        /// Program source master seed.
        seed: Option<u64>,
        /// Mine trace assertions from fault-free runs and arm them.
        mine: bool,
        /// Explicit target platforms; empty keeps the fuzz default
        /// (all six).
        platforms: Vec<PlatformId>,
        /// Run the full six-platform matrix.
        all_platforms: bool,
        /// Campaign worker override.
        workers: Option<u64>,
        /// Per-run instruction budget override.
        fuel: Option<u64>,
    },
}

impl JobSpec {
    /// The wire tag (`regress` / `audit` / `explore` / `fuzz`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Regress { .. } => "regress",
            JobSpec::Audit { .. } => "audit",
            JobSpec::Explore { .. } => "explore",
            JobSpec::Fuzz { .. } => "fuzz",
        }
    }

    /// Renders the spec as one compact JSON object.
    pub fn to_json(&self) -> String {
        let platform_list = |platforms: &[PlatformId]| {
            let names: Vec<String> = platforms
                .iter()
                .map(|p| format!("\"{}\"", p.name()))
                .collect();
            format!("[{}]", names.join(","))
        };
        match self {
            JobSpec::Regress {
                dir,
                env,
                platforms,
                all_platforms,
                workers,
                fuel,
            } => {
                let mut out = format!(
                    "{{\"kind\":\"regress\",\"dir\":{},\"env\":{},\
                     \"platforms\":{},\"all_platforms\":{all_platforms}",
                    json_string(dir),
                    json_string(env),
                    platform_list(platforms)
                );
                push_opt_u64(&mut out, "workers", *workers);
                push_opt_u64(&mut out, "fuel", *fuel);
                out.push('}');
                out
            }
            JobSpec::Audit {
                platforms,
                all_platforms,
                scenarios,
                seed,
                workers,
                fuel,
            } => {
                let mut out = format!(
                    "{{\"kind\":\"audit\",\"platforms\":{},\
                     \"all_platforms\":{all_platforms}",
                    platform_list(platforms)
                );
                push_opt_u64(&mut out, "scenarios", *scenarios);
                push_opt_u64(&mut out, "seed", *seed);
                push_opt_u64(&mut out, "workers", *workers);
                push_opt_u64(&mut out, "fuel", *fuel);
                out.push('}');
                out
            }
            JobSpec::Explore {
                rounds,
                seed,
                batch,
                workers,
                derivative,
                all_platforms,
            } => {
                let mut out = format!("{{\"kind\":\"explore\",\"all_platforms\":{all_platforms}");
                push_opt_u64(&mut out, "rounds", *rounds);
                push_opt_u64(&mut out, "seed", *seed);
                push_opt_u64(&mut out, "batch", *batch);
                push_opt_u64(&mut out, "workers", *workers);
                if let Some(derivative) = derivative {
                    out.push_str(&format!(
                        ",\"derivative\":{}",
                        json_string(derivative.name())
                    ));
                }
                out.push('}');
                out
            }
            JobSpec::Fuzz {
                programs,
                seed,
                mine,
                platforms,
                all_platforms,
                workers,
                fuel,
            } => {
                let mut out = format!(
                    "{{\"kind\":\"fuzz\",\"mine\":{mine},\"platforms\":{},\
                     \"all_platforms\":{all_platforms}",
                    platform_list(platforms)
                );
                push_opt_u64(&mut out, "programs", *programs);
                push_opt_u64(&mut out, "seed", *seed);
                push_opt_u64(&mut out, "workers", *workers);
                push_opt_u64(&mut out, "fuel", *fuel);
                out.push('}');
                out
            }
        }
    }

    /// Parses a spec from its wire object.
    pub fn from_value(value: &JsonValue) -> Result<Self, WireError> {
        match value.str_field("kind")? {
            "regress" => Ok(JobSpec::Regress {
                dir: value.str_field("dir")?.to_owned(),
                env: value.str_field("env")?.to_owned(),
                platforms: opt_platforms(value, "platforms")?,
                all_platforms: opt_bool(value, "all_platforms")?,
                workers: opt_u64(value, "workers")?,
                fuel: opt_u64(value, "fuel")?,
            }),
            "audit" => Ok(JobSpec::Audit {
                platforms: opt_platforms(value, "platforms")?,
                all_platforms: opt_bool(value, "all_platforms")?,
                scenarios: opt_u64(value, "scenarios")?,
                seed: opt_u64(value, "seed")?,
                workers: opt_u64(value, "workers")?,
                fuel: opt_u64(value, "fuel")?,
            }),
            "explore" => Ok(JobSpec::Explore {
                rounds: opt_u64(value, "rounds")?,
                seed: opt_u64(value, "seed")?,
                batch: opt_u64(value, "batch")?,
                workers: opt_u64(value, "workers")?,
                derivative: match value.get("derivative") {
                    None | Some(JsonValue::Null) => None,
                    Some(_) => {
                        let name = value.str_field("derivative")?;
                        Some(
                            DerivativeId::ALL
                                .into_iter()
                                .find(|d| d.name().eq_ignore_ascii_case(name))
                                .ok_or_else(|| {
                                    WireError::shape(format!("unknown derivative `{name}`"))
                                })?,
                        )
                    }
                },
                all_platforms: opt_bool(value, "all_platforms")?,
            }),
            "fuzz" => Ok(JobSpec::Fuzz {
                programs: opt_u64(value, "programs")?,
                seed: opt_u64(value, "seed")?,
                mine: opt_bool(value, "mine")?,
                platforms: opt_platforms(value, "platforms")?,
                all_platforms: opt_bool(value, "all_platforms")?,
                workers: opt_u64(value, "workers")?,
                fuel: opt_u64(value, "fuel")?,
            }),
            other => Err(WireError::shape(format!("unknown job kind `{other}`"))),
        }
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, WireError> {
        Self::from_value(&JsonValue::parse(text)?)
    }
}

/// The lifecycle of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; `ok` is the run's own verdict (all tests passed / no
    /// broken audit cells / no failing exploration runs).
    Done {
        /// The run-level verdict.
        ok: bool,
    },
    /// The run could not execute (build error, bad directory, …).
    Failed {
        /// Human-readable cause.
        error: String,
    },
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job will never run (again).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Failed { .. } | JobState::Cancelled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec::Regress {
                dir: "/tmp/envs".into(),
                env: "PAGE".into(),
                platforms: vec![PlatformId::GoldenModel, PlatformId::RtlSim],
                all_platforms: false,
                workers: Some(2),
                fuel: None,
            },
            JobSpec::Audit {
                platforms: vec![],
                all_platforms: true,
                scenarios: Some(4),
                seed: Some(7),
                workers: None,
                fuel: Some(2_000),
            },
            JobSpec::Explore {
                rounds: Some(2),
                seed: None,
                batch: Some(3),
                workers: None,
                derivative: Some(DerivativeId::Sc88B),
                all_platforms: false,
            },
            JobSpec::Fuzz {
                programs: Some(8),
                seed: Some(11),
                mine: true,
                platforms: vec![PlatformId::GoldenModel, PlatformId::RtlSim],
                all_platforms: false,
                workers: Some(2),
                fuel: None,
            },
            JobSpec::Fuzz {
                programs: None,
                seed: None,
                mine: false,
                platforms: vec![],
                all_platforms: true,
                workers: None,
                fuel: None,
            },
        ]
    }

    #[test]
    fn every_spec_round_trips() {
        for spec in specs() {
            let json = spec.to_json();
            let back = JobSpec::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "{}",
            r#"{"kind":"frobnicate"}"#,
            r#"{"kind":"regress","dir":"d"}"#,
            r#"{"kind":"regress","dir":"d","env":"E","platforms":["vax"]}"#,
            r#"{"kind":"explore","derivative":"PDP-11"}"#,
            r#"{"kind":"fuzz","platforms":["vax"]}"#,
            r#"{"kind":"fuzz","mine":"yes"}"#,
        ] {
            assert!(JobSpec::from_json(bad).is_err(), "{bad}");
        }
    }
}
