//! `advm-serve` — the resident verification daemon.
//!
//! ```text
//! advm-serve --socket /tmp/advm.sock [--workers N] [--cache N]
//! ```
//!
//! Serves the newline-delimited JSON protocol of `advm_serve::protocol`
//! until a client sends `{"cmd":"shutdown"}`. `advm-cli serve` is an
//! alias for this binary.

use std::process::ExitCode;

const USAGE: &str = "\
usage: advm-serve --socket <path> [--workers <n>] [--cache <n>]

  --socket <path>   Unix-domain socket to listen on (required)
  --workers <n>     concurrent jobs (default 2)
  --cache <n>       artifact store capacity in images (default 256)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("advm-serve: {message}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn run(args: &[String]) -> Result<(), String> {
    use advm_serve::daemon::{Daemon, DaemonConfig};
    use advm_serve::server::Server;

    let mut socket: Option<String> = None;
    let mut config = DaemonConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("flag `{name}` needs a value"))
        };
        match flag.as_str() {
            "--socket" => socket = Some(value("--socket")?.to_owned()),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "flag `--workers` needs an integer".to_owned())?;
            }
            "--cache" => {
                config.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|_| "flag `--cache` needs an integer".to_owned())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let socket = socket.ok_or_else(|| "missing required flag `--socket`".to_owned())?;
    let server = Server::bind(Daemon::start(config), std::path::Path::new(&socket))
        .map_err(|e| format!("binding `{socket}`: {e}"))?;
    eprintln!("advm-serve: listening on {socket}");
    server.run().map_err(|e| format!("serving `{socket}`: {e}"))
}

#[cfg(not(unix))]
fn run(_args: &[String]) -> Result<(), String> {
    Err(
        "the socket server needs Unix-domain sockets; use the in-process advm_serve::Daemon API"
            .to_owned(),
    )
}
