//! Campaign-as-a-service: a resident ADVM verification daemon.
//!
//! The batch tools (`advm-cli regress/audit/explore`) pay the full
//! assemble-and-decode cost on every invocation. This crate keeps one
//! verification engine resident instead: a [`Daemon`] owns a job queue,
//! a worker pool, and — the point of the exercise — one shared
//! [`ArtifactStore`](advm::artifacts::ArtifactStore), so built images,
//! predecoded programs and warm [`PrefixPool`](advm::prefix::PrefixPool)
//! snapshots survive **across jobs**. A warm resubmission of a suite
//! skips its builds entirely; the reuse shows up as `artifact_hits` in
//! the job report's `perf` block and in the daemon's `status` counters,
//! while the verdict-bearing report stays byte-identical to a cold
//! in-process run.
//!
//! Three layers, separable on purpose:
//!
//! - [`job`] / [`protocol`] — the serializable vocabulary: [`JobSpec`],
//!   [`JobState`], [`Request`], all as newline-delimited JSON.
//! - [`daemon`] — the transport-free engine: queue, workers, per-job
//!   event streams ([`JobRecord::subscribe`]).
//! - [`server`] / [`client`] — the Unix-domain-socket skin (Unix only;
//!   the in-process [`Daemon`] API is portable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod job;
pub mod protocol;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod server;

pub use daemon::{Daemon, DaemonConfig, JobRecord};
pub use job::{JobSpec, JobState};
pub use protocol::Request;

#[cfg(unix)]
pub use client::Client;
#[cfg(unix)]
pub use server::Server;
