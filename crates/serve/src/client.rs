//! A blocking client for the daemon's socket protocol.
//!
//! One [`Client`] wraps one connection; requests are serialized on it
//! in order. `advm-cli submit/status/watch` is a thin shell around this
//! type.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use advm::wire::JsonValue;

use crate::job::JobSpec;
use crate::protocol::Request;

/// A connected daemon client.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

/// Maps a reply-shape problem onto `io::ErrorKind::InvalidData`.
fn bad_reply(context: &str, line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{context}: unexpected reply `{line}`"),
    )
}

impl Client {
    /// Connects to a daemon socket.
    pub fn connect(path: &Path) -> io::Result<Self> {
        let writer = UnixStream::connect(path)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Sends one request line.
    fn send(&mut self, request: &Request) -> io::Result<()> {
        self.writer.write_all(request.to_json().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one reply line.
    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// One request, one reply line.
    fn roundtrip(&mut self, request: &Request) -> io::Result<String> {
        self.send(request)?;
        self.read_line()
    }

    /// Submits a job, returning its id.
    pub fn submit(&mut self, spec: JobSpec) -> io::Result<u64> {
        let line = self.roundtrip(&Request::Submit(spec))?;
        let value = JsonValue::parse(&line).map_err(|_| bad_reply("submit", &line))?;
        if value.bool_field("ok").ok() != Some(true) {
            return Err(bad_reply("submit", &line));
        }
        value
            .u64_field("job")
            .map_err(|_| bad_reply("submit", &line))
    }

    /// The daemon's one-line status summary (raw JSON).
    pub fn status(&mut self) -> io::Result<String> {
        self.roundtrip(&Request::Status)
    }

    /// The daemon's one-line job listing (raw JSON).
    pub fn list(&mut self) -> io::Result<String> {
        self.roundtrip(&Request::List)
    }

    /// Cancels a queued job; returns the raw reply line.
    pub fn cancel(&mut self, job: u64) -> io::Result<String> {
        self.roundtrip(&Request::Cancel { job })
    }

    /// Streams a job to completion. Every event line is handed to
    /// `on_line`; the final `done` line is returned (not passed to the
    /// callback).
    pub fn watch(&mut self, job: u64, mut on_line: impl FnMut(&str)) -> io::Result<String> {
        self.send(&Request::Watch { job })?;
        loop {
            let line = self.read_line()?;
            let value = JsonValue::parse(&line).map_err(|_| bad_reply("watch", &line))?;
            if value.bool_field("ok").ok() == Some(false) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    value
                        .str_field("error")
                        .map(str::to_owned)
                        .unwrap_or_else(|_| line.clone()),
                ));
            }
            if value.bool_field("done").ok() == Some(true) {
                return Ok(line);
            }
            on_line(&line);
        }
    }

    /// Asks the daemon to shut down; returns the raw reply line.
    pub fn shutdown(&mut self) -> io::Result<String> {
        self.roundtrip(&Request::Shutdown)
    }
}
