//! The newline-delimited JSON request protocol.
//!
//! Every client line is one JSON object carrying a `cmd` tag; every
//! daemon reply is one JSON object per line. Most commands get exactly
//! one reply line; `watch` streams — the job's event backlog, then live
//! [`CampaignEvent`](advm::campaign::CampaignEvent) lines as they
//! happen, terminated by one `"done":true` line carrying the job's
//! final report:
//!
//! ```text
//! → {"cmd":"submit","job":{"kind":"regress","dir":"envs","env":"PAGE",...}}
//! ← {"ok":true,"job":3}
//! → {"cmd":"watch","job":3}
//! ← {"job":3,"seq":0,"event":{"type":"started","jobs":12,...}}
//! ← {"job":3,"seq":1,"event":{"type":"job_started",...}}
//! ← ...
//! ← {"job":3,"done":true,"ok":true,"report":{...,"perf":{...,"artifact_hits":5}}}
//! ```

use advm::wire::{json_string, JsonValue, WireError};

use crate::job::JobSpec;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a job; replies with its id.
    Submit(JobSpec),
    /// One-line daemon summary: job counts, worker count, artifact
    /// store counters.
    Status,
    /// One line per known job: id, kind, state.
    List,
    /// Stream a job's events (backlog + live) until it finishes.
    Watch {
        /// The job to follow.
        job: u64,
    },
    /// Cancel a queued job (running jobs complete).
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Drain the queue and stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn from_json(text: &str) -> Result<Self, WireError> {
        let value = JsonValue::parse(text)?;
        match value.str_field("cmd")? {
            "submit" => {
                let job = value
                    .get("job")
                    .ok_or_else(|| WireError::shape("submit needs a `job` object"))?;
                Ok(Request::Submit(JobSpec::from_value(job)?))
            }
            "status" => Ok(Request::Status),
            "list" => Ok(Request::List),
            "watch" => Ok(Request::Watch {
                job: value.u64_field("job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: value.u64_field("job")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError::shape(format!("unknown command `{other}`"))),
        }
    }

    /// Renders the request as one wire line (client side).
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit(spec) => format!("{{\"cmd\":\"submit\",\"job\":{}}}", spec.to_json()),
            Request::Status => "{\"cmd\":\"status\"}".to_owned(),
            Request::List => "{\"cmd\":\"list\"}".to_owned(),
            Request::Watch { job } => format!("{{\"cmd\":\"watch\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"cmd\":\"cancel\",\"job\":{job}}}"),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_owned(),
        }
    }
}

/// Renders the one-line error reply for a malformed request.
pub fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json_string(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use advm_soc::PlatformId;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Submit(JobSpec::Regress {
                dir: "envs".into(),
                env: "PAGE".into(),
                platforms: vec![PlatformId::RtlSim],
                all_platforms: false,
                workers: None,
                fuel: Some(500),
            }),
            Request::Status,
            Request::List,
            Request::Watch { job: 7 },
            Request::Cancel { job: 0 },
            Request::Shutdown,
        ];
        for request in requests {
            let json = request.to_json();
            assert_eq!(Request::from_json(&json).unwrap(), request, "{json}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            "not json",
            r#"{"cmd":"frob"}"#,
            r#"{"cmd":"watch"}"#,
            r#"{"cmd":"submit"}"#,
        ] {
            assert!(Request::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn error_lines_are_json() {
        let line = error_line("boom \"quoted\"");
        let value = JsonValue::parse(&line).unwrap();
        assert!(!value.bool_field("ok").unwrap());
        assert_eq!(value.str_field("error").unwrap(), "boom \"quoted\"");
    }
}
