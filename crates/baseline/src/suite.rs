//! Hardwired test-suite generation and porting.

use std::collections::BTreeMap;
use std::fmt;

use advm_metrics::{diff_trees, ChangeSet};
use advm_soc::es::EsFunction;
use advm_soc::{Derivative, DerivativeId, EsVersion, GlobalsSpec, Mailbox, PlatformId};
use serde::{Deserialize, Serialize};

/// The target triple a direct suite is hardwired for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Chip derivative the literals were taken from.
    pub derivative: DerivativeId,
    /// Platform whose knobs are baked in.
    pub platform: PlatformId,
    /// Embedded-software release whose conventions are baked in.
    pub es_version: EsVersion,
}

impl SuiteConfig {
    /// A config for a derivative on a platform, with the chip's shipped
    /// ES release.
    pub fn new(derivative: DerivativeId, platform: PlatformId) -> Self {
        Self {
            derivative,
            platform,
            es_version: Derivative::from_id(derivative).es_version(),
        }
    }

    /// Overrides the ES release.
    pub fn with_es_version(mut self, version: EsVersion) -> Self {
        self.es_version = version;
        self
    }
}

/// A suite of hardwired directed tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectSuite {
    name: String,
    config: SuiteConfig,
    cells: Vec<(String, String)>,
}

impl DirectSuite {
    /// The suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hardwired target.
    pub fn config(&self) -> SuiteConfig {
        self.config
    }

    /// `(test id, source)` pairs.
    pub fn cells(&self) -> &[(String, String)] {
        &self.cells
    }

    /// Looks up a test source by id.
    pub fn cell(&self, id: &str) -> Option<&str> {
        self.cells
            .iter()
            .find(|(i, _)| i == id)
            .map(|(_, s)| s.as_str())
    }

    /// Renders the suite as a flat file tree (one file per test).
    pub fn tree(&self) -> BTreeMap<String, String> {
        self.cells
            .iter()
            .map(|(id, src)| (format!("{}/{id}.asm", self.name), src.clone()))
            .collect()
    }

    /// Total source lines.
    pub fn total_lines(&self) -> usize {
        self.cells.iter().map(|(_, s)| s.lines().count()).sum()
    }
}

impl fmt::Display for DirectSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} hardwired tests for {} on {}]",
            self.name,
            self.cells.len(),
            self.config.derivative.name(),
            self.config.platform
        )
    }
}

/// Values an engineer would copy out of the datasheet when hardwiring a
/// test — the same numbers ADVM's `Globals.inc` would carry.
struct Baked {
    page_ctrl: u32,
    page_status: u32,
    page_pos: u8,
    page_width: u8,
    active_pos: u8,
    active_width: u8,
    enable_mask: u32,
    uart_ctrl: u32,
    uart_status: u32,
    uart_data: u32,
    nvm_base: u32,
    nvmc_status: u32,
    es_init: u32,
    es_memcpy: u32,
    es_checksum: u32,
    es_nvm_unlock: u32,
    es_nvm_write: u32,
    es_uart_send: u32,
    tb_result: u32,
    tb_sim_end: u32,
    tb_charout: u32,
    page_count: u32,
    ready_mask: u32,
    poll_limit: u32,
    verbose: bool,
}

fn bake(config: SuiteConfig) -> Baked {
    let derivative = Derivative::from_id(config.derivative);
    // Reuse the globals generator as the "datasheet": both approaches see
    // the same numbers; only where they *store* them differs.
    let globals = GlobalsSpec::new(derivative.clone(), config.platform)
        .with_es_version(config.es_version)
        .render();
    let value = |name: &str| {
        globals
            .value(name)
            .unwrap_or_else(|| panic!("datasheet value {name} missing"))
    };
    Baked {
        page_ctrl: value("PAGE_CTRL_ADDR"),
        page_status: value("PAGE_STATUS_ADDR"),
        page_pos: value("PAGE_FIELD_START_POSITION") as u8,
        page_width: value("PAGE_FIELD_SIZE") as u8,
        active_pos: value("ACTIVE_PAGE_POSITION") as u8,
        active_width: value("ACTIVE_PAGE_SIZE") as u8,
        enable_mask: value("PAGE_ENABLE_MASK"),
        uart_ctrl: value("UART_CTRL_ADDR"),
        uart_status: value("UART_STATUS_ADDR"),
        uart_data: value("UART_DATA_ADDR"),
        nvm_base: value("NVM_BASE"),
        nvmc_status: value("NVMC_STATUS_ADDR"),
        es_init: EsFunction::InitRegister.entry_addr(),
        es_memcpy: EsFunction::Memcpy.entry_addr(),
        es_checksum: EsFunction::Checksum.entry_addr(),
        es_nvm_unlock: EsFunction::NvmUnlock.entry_addr(),
        es_nvm_write: EsFunction::NvmWriteWord.entry_addr(),
        es_uart_send: EsFunction::UartSendByte.entry_addr(),
        tb_result: Mailbox::new().reg(Mailbox::RESULT),
        tb_sim_end: Mailbox::new().reg(Mailbox::SIM_END),
        tb_charout: Mailbox::new().reg(Mailbox::CHAROUT),
        page_count: value("PAGE_COUNT"),
        ready_mask: value("PAGE_READY_MASK"),
        poll_limit: value("POLL_LIMIT"),
        verbose: value("VERBOSE") != 0,
    }
}

fn epilogue(b: &Baked) -> String {
    // A hardwired test bakes the platform's verbosity knob too: quiet
    // platforms (accelerator, gate sim, silicon) get no console bytes.
    let pass_char = if b.verbose {
        format!(
            "    LOAD d3, #'P'\n    STORE [0x{:05X}], d3\n",
            b.tb_charout
        )
    } else {
        String::new()
    };
    let fail_char = if b.verbose {
        format!(
            "    LOAD d3, #'F'\n    STORE [0x{:05X}], d3\n",
            b.tb_charout
        )
    } else {
        String::new()
    };
    format!(
        "\
{pass_char}    LOAD d2, #0x{pass:08X}
    STORE [0x{result:05X}], d2
    STORE [0x{sim_end:05X}], d2
    RETURN
t_fail:
{fail_char}    LOAD d2, #0x{fail:08X}
    STORE [0x{result:05X}], d2
    STORE [0x{sim_end:05X}], d2
    RETURN
",
        pass = Mailbox::PASS_MAGIC,
        fail = Mailbox::FAIL_MAGIC | 1,
        result = b.tb_result,
        sim_end = b.tb_sim_end,
    )
}

/// Generates the hardwired page suite: `n` tests in the Figure 6 shape,
/// every value a literal.
pub fn direct_page_suite(config: SuiteConfig, n: usize) -> DirectSuite {
    let b = bake(config);
    let cells = (1..=n)
        .map(|i| {
            let page = (i as u32 * 7 + 1) % b.page_count;
            let source = format!(
                "\
;; direct test {i} — hardwired for {derivative} / {platform}
_main:
    LOAD a12, #0x{es_init:05X}      ; ES_Init_Register entry (hardwired)
    CALL a12
    MOVI d14, #0
    INSERT d14, d14, #{page}, {pos}, {width}
    ORI d14, d14, #0x{enable:X}
    STORE [0x{ctrl:05X}], d14
    LOAD d3, #{poll_limit}          ; platform polling budget (hardwired)
t_ready:
    CMP d3, #0
    JEQ t_fail
    SUB d3, d3, #1
    LOAD d1, [0x{status:05X}]
    ANDI d1, d1, #0x{ready:X}
    CMPI d1, #0
    JEQ t_ready
    LOAD d1, [0x{status:05X}]
    EXTRACT d1, d1, {apos}, {awidth}
    CMP d1, #{page}
    JNE t_fail
{epilogue}",
                poll_limit = b.poll_limit,
                ready = b.ready_mask,
                derivative = config.derivative.name(),
                platform = config.platform,
                es_init = b.es_init,
                pos = b.page_pos,
                width = b.page_width,
                enable = b.enable_mask,
                ctrl = b.page_ctrl,
                status = b.page_status,
                apos = b.active_pos,
                awidth = b.active_width,
                epilogue = epilogue(&b),
            );
            (format!("TEST_DIRECT_PAGE_{i:02}"), source)
        })
        .collect();
    DirectSuite {
        name: "DIRECT_PAGE".to_owned(),
        config,
        cells,
    }
}

/// Generates the hardwired embedded-software suite (the Figure 7
/// workload without wrappers): calling conventions are baked per the ES
/// release the suite targets.
pub fn direct_es_suite(config: SuiteConfig) -> DirectSuite {
    let b = bake(config);
    let v2 = config.es_version == EsVersion::V2;

    // Conventions the engineer read from the current ES release notes.
    let memcpy_setup = if v2 {
        // v2: a4 = src, a5 = dst.
        "    LOAD a5, #0x41100          ; dst (v2 convention)\n    LOAD a4, #0x41000          ; src\n"
    } else {
        "    LOAD a4, #0x41100          ; dst (v1 convention)\n    LOAD a5, #0x41000          ; src\n"
    };
    let checksum_result = if v2 { "d3" } else { "d2" };
    let uart_byte_reg = if v2 { "d5" } else { "d4" };
    let (nvm_addr_reg, nvm_val_reg) = if v2 { ("d5", "d4") } else { ("d4", "d5") };

    let init = (
        "TEST_DIRECT_ES_INIT".to_owned(),
        format!(
            "\
;; direct ES init — hardwired
_main:
    LOAD a12, #0x{es_init:05X}
    CALL a12
    LOAD d1, [0x{ctrl:05X}]
    ANDI d1, d1, #0x{enable:X}
    CMPI d1, #0
    JEQ t_fail
{epilogue}",
            es_init = b.es_init,
            ctrl = b.page_ctrl,
            enable = b.enable_mask,
            epilogue = epilogue(&b),
        ),
    );
    let memcpy = (
        "TEST_DIRECT_MEMCPY".to_owned(),
        format!(
            "\
;; direct memcpy — hardwired ES convention
_main:
    LOAD a4, #0x41000
    LOAD d1, #0xABCD0001
    STORE [a4], d1
    LOAD d1, #0xABCD0002
    STORE [a4 + 4], d1
{memcpy_setup}    LOAD d4, #2
    LOAD a12, #0x{es_memcpy:05X}
    CALL a12
    LOAD d1, [0x41104]
    LOAD d2, #0xABCD0002
    CMP d1, d2
    JNE t_fail
{epilogue}",
            es_memcpy = b.es_memcpy,
            epilogue = epilogue(&b),
        ),
    );
    let checksum = (
        "TEST_DIRECT_CHECKSUM".to_owned(),
        format!(
            "\
;; direct checksum — hardwired result register ({checksum_result})
_main:
    LOAD a4, #0x41000
    LOAD d1, #30
    STORE [a4], d1
    LOAD d1, #12
    STORE [a4 + 4], d1
    LOAD a4, #0x41000
    LOAD d4, #2
    LOAD a12, #0x{es_checksum:05X}
    CALL a12
    CMPI {checksum_result}, #42
    JNE t_fail
{epilogue}",
            es_checksum = b.es_checksum,
            epilogue = epilogue(&b),
        ),
    );
    let nvm = (
        "TEST_DIRECT_NVM".to_owned(),
        format!(
            "\
;; direct NVM write — hardwired ES convention
_main:
    LOAD a12, #0x{es_unlock:05X}
    CALL a12
    LOAD {nvm_addr_reg}, #0x400
    LOAD {nvm_val_reg}, #0xFEEDF00D
    LOAD a12, #0x{es_write:05X}
    CALL a12
    LOAD d1, [0x{nvm_readback:05X}]
    LOAD d2, #0xFEEDF00D
    CMP d1, d2
    JNE t_fail
{epilogue}",
            es_unlock = b.es_nvm_unlock,
            es_write = b.es_nvm_write,
            nvm_readback = b.nvm_base + 0x400,
            epilogue = epilogue(&b),
        ),
    );
    let uart = (
        "TEST_DIRECT_UART".to_owned(),
        format!(
            "\
;; direct UART loopback — hardwired addresses and byte register
_main:
    LOAD d1, #0x11               ; EN | LOOPBACK
    STORE [0x{uart_ctrl:05X}], d1
    LOAD {uart_byte_reg}, #0x42
    LOAD a12, #0x{es_send:05X}
    CALL a12
t_rx:
    LOAD d1, [0x{uart_status:05X}]
    ANDI d1, d1, #2              ; RX_VALID
    CMPI d1, #0
    JEQ t_rx
    LOAD d1, [0x{uart_data:05X}]
    CMPI d1, #0x42
    JNE t_fail
{epilogue}",
            uart_ctrl = b.uart_ctrl,
            uart_status = b.uart_status,
            uart_data = b.uart_data,
            es_send = b.es_uart_send,
            epilogue = epilogue(&b),
        ),
    );
    let locked = (
        "TEST_DIRECT_NVM_LOCKED".to_owned(),
        format!(
            "\
;; direct NVM locked-error check — hardwired controller registers
_main:
    LOAD d1, [0x{status:05X}]
    ANDI d1, d1, #2              ; UNLOCKED must be clear at reset
    CMPI d1, #0
    JNE t_fail
{epilogue}",
            status = b.nvmc_status,
            epilogue = epilogue(&b),
        ),
    );

    DirectSuite {
        name: "DIRECT_ES".to_owned(),
        config,
        cells: vec![init, memcpy, checksum, nvm, uart, locked],
    }
}

/// Re-targets a suite by regenerating it for a new configuration —
/// exactly what an engineer would do, test file by test file — and
/// returns the change-set.
pub fn port_suite(
    suite: &DirectSuite,
    config: SuiteConfig,
    regenerate: impl Fn(SuiteConfig) -> DirectSuite,
) -> (DirectSuite, ChangeSet) {
    let before = suite.tree();
    let ported = regenerate(config);
    let after = ported.tree();
    (ported, diff_trees(&before, &after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_suite_bakes_derivative_values() {
        let a = direct_page_suite(
            SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            2,
        );
        let b = direct_page_suite(
            SuiteConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel),
            2,
        );
        let src_a = a.cell("TEST_DIRECT_PAGE_01").unwrap();
        let src_b = b.cell("TEST_DIRECT_PAGE_01").unwrap();
        assert!(src_a.contains("INSERT d14, d14, #8, 0, 5"));
        assert!(src_b.contains("INSERT d14, d14, #8, 1, 5"), "{src_b}");
    }

    #[test]
    fn porting_page_suite_touches_every_test() {
        let config_a = SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
        let suite = direct_page_suite(config_a, 10);
        let config_b = SuiteConfig::new(DerivativeId::Sc88B, PlatformId::GoldenModel);
        let (_, changes) = port_suite(&suite, config_b, |c| direct_page_suite(c, 10));
        assert_eq!(
            changes.files_touched(),
            10,
            "every hardwired test refactored"
        );
    }

    #[test]
    fn es_suite_conventions_follow_release() {
        let v1 = direct_es_suite(SuiteConfig::new(
            DerivativeId::Sc88A,
            PlatformId::GoldenModel,
        ));
        let v2 = direct_es_suite(
            SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel)
                .with_es_version(EsVersion::V2),
        );
        assert!(v1
            .cell("TEST_DIRECT_CHECKSUM")
            .unwrap()
            .contains("CMPI d2, #42"));
        assert!(v2
            .cell("TEST_DIRECT_CHECKSUM")
            .unwrap()
            .contains("CMPI d3, #42"));
        assert!(v1
            .cell("TEST_DIRECT_UART")
            .unwrap()
            .contains("LOAD d4, #0x42"));
        assert!(v2
            .cell("TEST_DIRECT_UART")
            .unwrap()
            .contains("LOAD d5, #0x42"));
    }

    #[test]
    fn es_release_port_touches_convention_dependent_tests() {
        let config = SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel);
        let suite = direct_es_suite(config);
        let (_, changes) = port_suite(
            &suite,
            config.with_es_version(EsVersion::V2),
            direct_es_suite,
        );
        // memcpy, checksum, nvm and uart bake conventions; init and the
        // locked check do not.
        assert_eq!(changes.files_touched(), 4, "{changes}");
    }

    #[test]
    fn tree_paths_are_per_test_files() {
        let suite = direct_page_suite(
            SuiteConfig::new(DerivativeId::Sc88A, PlatformId::GoldenModel),
            3,
        );
        let tree = suite.tree();
        assert_eq!(tree.len(), 3);
        assert!(tree.contains_key("DIRECT_PAGE/TEST_DIRECT_PAGE_02.asm"));
    }
}
