//! # advm-baseline — the hardwired directed-test comparator
//!
//! §1 of the paper motivates ADVM against plain directed testing: *"over
//! time a large collection of directed test code will be developed and
//! will require re-factoring with each change in the specification or
//! when migrating the test code to new derivatives."* To measure the
//! methodology against that baseline, this crate implements it honestly:
//!
//! * a [`DirectSuite`] is a set of standalone assembler tests with every
//!   address, field position, calling convention and platform knob
//!   **hardwired** for one (derivative, platform, ES release) triple;
//! * [`port_suite`] re-targets the suite the way an engineer would — by
//!   rewriting every affected test — and returns the resulting
//!   [`ChangeSet`](advm_metrics::ChangeSet), which the experiments compare against the ADVM
//!   port's.
//!
//! The generated tests are *correct* for their target (they pass); the
//! baseline's cost is not wrongness but the O(#tests) refactor every
//! change triggers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod suite;

pub use runner::{build_direct_test, run_direct_test};
pub use suite::{direct_es_suite, direct_page_suite, port_suite, DirectSuite, SuiteConfig};
